"""E7 — update interleaved with addLink/deleteLink (Theorem 2)."""

from repro.experiments.dynamic_changes import run_dynamic_changes


def test_bench_dynamic_changes_tree(benchmark):
    """A tree update racing with a change of added and deleted rules."""
    def run():
        return run_dynamic_changes(depth=3, records_per_node=15, deletions=2)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        change_length=result.change_length,
        total_messages=result.total_messages,
        sound=result.sound,
        complete=result.complete,
        terminated=result.terminated,
    )
    assert result.theorem2_holds


def test_bench_dynamic_changes_more_churn(benchmark):
    """The same experiment with a longer change and tighter interleaving."""
    def run():
        return run_dynamic_changes(
            depth=2, records_per_node=15, deletions=4, steps_between=3
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        change_length=result.change_length, total_messages=result.total_messages
    )
    assert result.theorem2_holds
