"""Closed-loop serving benchmark: 100 concurrent clients, two warm tenants.

The serving acceptance bar (ISSUE 10): the front-end must sustain at least
100 concurrent closed-loop clients split across two warm tenants with zero
5xx responses — admission control may answer 429/503 with Retry-After (the
closed loop honours it and retries), but nothing may error or hang — while
every insert-only update rides the warm pools' incremental path.

Each client alternates an insert-only update with a full-relation query;
updates serialize through the tenant's bounded queue while queries run
concurrently, so the storm exercises exactly the admission-control contract
of ``docs/serving.md``.  Headline quantities (p50/p95 op latency,
throughput, incremental-vs-naive counts) land in ``benchmark.extra_info``;
the measured wall is the whole storm, gated against ``baseline.json`` by
``check_regression.py``.
"""

import json
import threading
import time

from repro.experiments.serving import feeding_site, query_for, sweep_specs
from repro.serve import ServeClient, ServeError, ServerConfig, ServerHandle

#: The acceptance bar: concurrent closed-loop clients across both tenants.
CLIENTS = 100
#: Update+query pairs per client (kept small; updates serialize per tenant).
OPERATIONS = 2


def _client_loop(handle, tenant, site, client_id, latencies, counts, lock):
    node, relation, arity = site
    query_text = query_for(relation, arity)
    client = ServeClient(handle.host, handle.port)
    try:
        for op in range(OPERATIONS):
            row = [f"{tenant}-c{client_id}-o{op}-{i}" for i in range(arity)]
            calls = (
                ("update", lambda: client.update(
                    tenant, inserts={node: {relation: [row]}}
                )),
                ("query", lambda: client.query(tenant, node, query_text)),
            )
            for kind, call in calls:
                started = time.perf_counter()
                while True:
                    try:
                        outcome = call()
                    except ServeError as error:
                        if error.status in (429, 503):
                            with lock:
                                counts["rejected"] += 1
                            time.sleep(error.retry_after or 0.05)
                            continue
                        with lock:
                            counts["errors"] += 1
                        break
                    with lock:
                        latencies.append(time.perf_counter() - started)
                        counts[kind] += 1
                        if kind == "update":
                            mode = outcome.get("mode")
                            counts[
                                "incremental" if mode == "incremental" else "naive"
                            ] += 1
                    break
    finally:
        client.close()


def test_bench_serve_closed_loop(benchmark):
    """100 closed-loop clients, two warm tenants, zero 5xx, warm deltas."""
    specs = sweep_specs(records_per_node=2, seed=0)
    sites = {name: feeding_site(spec) for name, spec in specs.items()}
    config = ServerConfig(port=0, queue_depth=256, max_workers=4)
    with ServerHandle(config) as handle:
        setup = ServeClient(handle.host, handle.port)
        for name, spec in specs.items():
            setup.create_tenant(name, json.loads(spec.dump_json()))

        latencies: list[float] = []
        counts = {
            "update": 0,
            "query": 0,
            "incremental": 0,
            "naive": 0,
            "rejected": 0,
            "errors": 0,
        }
        lock = threading.Lock()
        storms = [0]

        def storm():
            storms[0] += 1
            tenant_names = sorted(specs)
            threads = [
                threading.Thread(
                    target=_client_loop,
                    args=(
                        handle,
                        tenant_names[client_id % len(tenant_names)],
                        sites[tenant_names[client_id % len(tenant_names)]],
                        client_id + storms[0] * CLIENTS,
                        latencies,
                        counts,
                        lock,
                    ),
                )
                for client_id in range(CLIENTS)
            ]
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            return time.perf_counter() - started

        wall = benchmark.pedantic(storm, rounds=1, iterations=1)

        expected_pairs = storms[0] * CLIENTS * OPERATIONS
        ordered = sorted(latencies)
        benchmark.extra_info.update(
            clients=CLIENTS,
            tenants=len(specs),
            operations_per_client=OPERATIONS * 2,
            completed_ops=counts["update"] + counts["query"],
            updates=counts["update"],
            queries=counts["query"],
            incremental=counts["incremental"],
            naive=counts["naive"],
            rejected_then_retried=counts["rejected"],
            errors=counts["errors"],
            p50_ms=round(ordered[len(ordered) // 2] * 1000, 2),
            p95_ms=round(ordered[int(len(ordered) * 0.95)] * 1000, 2),
            throughput_ops_per_s=round(
                (counts["update"] + counts["query"]) / wall, 1
            ),
        )
        # The serving contract: every op eventually answered, zero 5xx.
        assert counts["errors"] == 0
        assert counts["update"] + counts["query"] == expected_pairs * 2
        # Warm insert-only updates all took the delta-driven path.
        assert counts["naive"] == 0
        assert counts["incremental"] == counts["update"]
        setup.close()
