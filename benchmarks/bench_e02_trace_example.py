"""E2 — the Figure 1 execution trace on the example system."""

from repro.experiments.trace_example import run_trace_example


def test_bench_discovery_and_update_trace(benchmark):
    """Traced discovery + update on the example under per-path propagation."""
    result = benchmark.pedantic(run_trace_example, rounds=3, iterations=1)
    benchmark.extra_info["counts_by_type"] = dict(result.counts_by_type)
    benchmark.extra_info["discovery_time"] = result.discovery_time
    benchmark.extra_info["update_time"] = result.update_time
    # The trace must show both phases, in order, as in Figure 1.
    assert result.counts_by_type["request_nodes"] > 0
    assert result.counts_by_type["query"] > 0
    assert result.counts_by_type["answer"] >= result.counts_by_type["query"] / 2


def test_bench_trace_once_policy(benchmark):
    """The same trace under the optimised (once) propagation policy."""
    result = benchmark.pedantic(
        lambda: run_trace_example(propagation="once"), rounds=3, iterations=1
    )
    benchmark.extra_info["counts_by_type"] = dict(result.counts_by_type)
    assert result.counts_by_type["query"] > 0
