"""Benchmark-suite configuration.

The benchmarks regenerate the paper's experiments (see DESIGN.md's experiment
index and EXPERIMENTS.md for the measured numbers).  Each benchmark stores the
experiment's headline quantities in ``benchmark.extra_info`` so that the
pytest-benchmark JSON output doubles as the experiment record.

Workload sizes default to values that keep a full ``pytest benchmarks/
--benchmark-only`` run in the order of a few minutes on a laptop; the
experiment modules accept larger parameters (e.g. the paper's 1000 records per
node) when invoked directly.
"""

from __future__ import annotations

from pathlib import Path

import pytest

_BENCH_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(config, items):
    """Benchmarks are skipped unless --benchmark-only / --benchmark-enable is given.

    Only items under ``benchmarks/`` are touched: this conftest is loaded by
    repo-root runs too, and the regular test-suite must keep running there
    (an earlier version skipped *every* collected item, which made the
    tier-1 gate pass vacuously).
    """
    if config.getoption("--benchmark-only") or config.getoption("--benchmark-enable"):
        return
    skip = pytest.mark.skip(reason="benchmarks run with --benchmark-only")
    for item in items:
        if _BENCH_DIR in Path(str(item.fspath)).resolve().parents:
            item.add_marker(skip)
