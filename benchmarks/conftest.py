"""Benchmark-suite configuration.

The benchmarks regenerate the paper's experiments (see DESIGN.md's experiment
index and EXPERIMENTS.md for the measured numbers).  Each benchmark stores the
experiment's headline quantities in ``benchmark.extra_info`` so that the
pytest-benchmark JSON output doubles as the experiment record.

Workload sizes default to values that keep a full ``pytest benchmarks/
--benchmark-only`` run in the order of a few minutes on a laptop; the
experiment modules accept larger parameters (e.g. the paper's 1000 records per
node) when invoked directly.
"""

from __future__ import annotations

import pytest


def pytest_collection_modifyitems(config, items):
    """Benchmarks are skipped unless --benchmark-only / --benchmark-enable is given."""
    if config.getoption("--benchmark-only") or config.getoption("--benchmark-enable"):
        return
    skip = pytest.mark.skip(reason="benchmarks run with --benchmark-only")
    for item in items:
        item.add_marker(skip)
