"""E3 — scalability with network size for trees, layered DAGs and cliques.

The paper ran up to 31 peers with ~1000 records each; the benchmark keeps the
31-node tree but reduces the per-node record count so a full run stays fast.
The shape that must hold: messages and time grow with the node count, every
run reaches the fix-point, and trees stay far cheaper than cliques of similar
size.

The sharded extension goes past the paper's 31 nodes: the same update on
~127- and ~511-node topologies under the partitioned engines — the
in-process sharded one and the one-OS-process-per-shard multiproc one —
with per-shard and cross-shard message counts as the record.
"""

import pytest

from repro.experiments.runner import run_dblp_update
from repro.experiments.scalability import run_shard_scalability
from repro.workloads.topologies import clique_topology, layered_topology, tree_topology

RECORDS = 25


@pytest.mark.parametrize("depth,expected_nodes", [(1, 3), (2, 7), (3, 15), (4, 31)])
def test_bench_tree_scalability(benchmark, depth, expected_nodes):
    """Global update on complete binary trees of 3, 7, 15 and 31 nodes."""
    def run():
        return run_dblp_update(
            tree_topology(depth, 2), records_per_node=RECORDS,
            label=f"tree/{expected_nodes}",
        )[1]

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        nodes=result.node_count,
        update_messages=result.update_messages,
        update_time=result.update_time,
        tuples_inserted=result.tuples_inserted,
    )
    assert result.node_count == expected_nodes
    assert result.all_closed


@pytest.mark.parametrize("depth", [1, 2, 3, 4])
def test_bench_layered_scalability(benchmark, depth):
    """Global update on layered acyclic graphs of growing depth (width 3)."""
    def run():
        return run_dblp_update(
            layered_topology(depth, width=3, seed=0),
            records_per_node=RECORDS,
            label=f"layered/{depth}",
        )[1]

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        nodes=result.node_count,
        update_messages=result.update_messages,
        update_time=result.update_time,
    )
    assert result.all_closed


@pytest.mark.parametrize(
    "size",
    [
        pytest.param(127, marks=pytest.mark.slow),
        pytest.param(511, marks=pytest.mark.slow),
    ],
)
def test_bench_engine_scalability(benchmark, size):
    """Sync vs sharded vs multiproc update on topologies far past 31 nodes.

    The extended E3 sweep, one run per size covering all three engines: the
    same global update on a ~``size``-node tree and layered DAG under the
    single-queue sync engine, the in-process sharded engine, and the
    one-OS-process-per-shard multiproc engine, with wall-clocks and shard
    traffic (per-shard and cross-shard deliveries) as the headline numbers.
    The cross-shard counters of the two partitioned engines must tell a
    consistent story about the same planner cut: real traffic crosses it
    (>0) but most deliveries stay local in both views.
    """
    def run():
        return run_shard_scalability(
            sizes=(size,),
            shards=4,
            records_per_node=3,
            check_parity=True,
            include_multiproc=True,
        )

    comparisons = benchmark.pedantic(run, rounds=1, iterations=1)
    tree = comparisons[0]
    benchmark.extra_info.update(
        nodes=tree.node_count,
        shards=tree.shards,
        sync_wall=round(tree.sync_wall, 3),
        sharded_wall=round(tree.sharded_wall, 3),
        multiproc_wall=round(tree.multiproc_wall, 3),
        sync_messages=tree.sync_messages,
        sharded_messages=tree.sharded_messages,
        messages_by_shard=tree.messages_by_shard,
        cross_shard_messages=tree.cross_shard_messages,
        cut_ratio=round(tree.cut_ratio, 4),
        multiproc_cross=tree.multiproc_cross_shard,
        multiproc_cut_ratio=round(tree.multiproc_cut_ratio, 4),
    )
    for comparison in comparisons:
        assert comparison.parity
        assert comparison.multiproc_parity
        assert comparison.cross_shard_messages > 0
        assert comparison.multiproc_cross_shard > 0
        assert comparison.cut_ratio < 0.5  # the planner keeps most traffic local
        assert comparison.multiproc_cut_ratio < 0.5


def test_bench_pooled_warm_update(benchmark):
    """Warm worker-pool repeat updates on a 63-node tree (2 shards).

    The first pooled run pays the same spawn + world-shipping price as a
    cold multiproc run (~a second); the benchmark measures the *warm*
    repeat runs, which ship only deltas over the persistent workers.  The
    recorded mean therefore tracks the per-run cost that remains after the
    fixed overhead is amortised — if someone reintroduces per-run spawning
    or world shipping, this number jumps by an order of magnitude and the
    regression gate catches it.
    """
    import time

    from repro.api.session import Session
    from repro.api.spec import ScenarioSpec

    spec = ScenarioSpec.from_topology(
        tree_topology(5, 2), records_per_node=3, seed=0
    ).with_(transport="pooled", shards=2)
    session = Session.from_spec(spec, capture_deltas=False)
    try:
        started = time.perf_counter()
        first = session.run("update")  # cold: spawns the pool
        cold_wall = time.perf_counter() - started
        assert first.engine == "pooled"

        warm_walls = []

        def warm_run():
            started = time.perf_counter()
            result = session.run("update")
            warm_walls.append(time.perf_counter() - started)
            return result

        result = benchmark.pedantic(warm_run, rounds=3, iterations=1)
        warm_mean = sum(warm_walls) / len(warm_walls)
        benchmark.extra_info.update(
            nodes=63,
            shards=2,
            cold_first_wall=round(cold_wall, 3),
            warm_mean_wall=round(warm_mean, 3),
        )
        assert result.engine == "pooled"
        # The amortisation claim itself: a warm run must be well under the
        # cold spawn+ship run (in practice ~10x; 2x keeps CI noise safe).
        assert warm_mean < cold_wall / 2
    finally:
        session.close()


@pytest.mark.slow
def test_bench_pooled_amortization_127(benchmark):
    """Repeat-run E3 sweep at ~127 nodes: warm pooled vs cold multiproc.

    Three update runs per engine on each 127-node topology.  Every cold
    multiproc run pays the spawn/ship overhead again; the pool pays it once,
    so its second-and-later runs must be measurably faster than the cold
    repeat mean — the acceptance bar of the persistent-pool subsystem.
    """
    def run():
        return run_shard_scalability(
            sizes=(127,),
            shards=4,
            records_per_node=3,
            check_parity=True,
            include_pooled=True,
            repeats=3,
        )

    comparisons = benchmark.pedantic(run, rounds=1, iterations=1)
    tree = comparisons[0]
    benchmark.extra_info.update(
        nodes=tree.node_count,
        shards=tree.shards,
        multiproc_repeat_wall=round(tree.multiproc_repeat_wall, 3),
        pooled_first_wall=round(tree.pooled_first_wall, 3),
        pooled_warm_wall=round(tree.pooled_warm_wall, 3),
    )
    for comparison in comparisons:
        assert comparison.parity
        assert comparison.multiproc_parity
        assert comparison.pooled_parity
        # Warm runs amortise the ~1-2 s fixed overhead away.
        assert comparison.pooled_warm_wall < comparison.multiproc_repeat_wall / 2


def test_bench_socket_warm_update(benchmark):
    """Warm socket-pool repeat updates on a 63-node tree (2 localhost hosts).

    The cross-machine twin of the pooled benchmark: the first run spawns two
    localhost ``repro.shardhost`` processes, connects, and ships the worlds;
    the measured warm repeats drive the same update over the live TCP
    connections, shipping only deltas.  The recorded mean is the per-run
    socket overhead (framing, coordinator routing, the ping barrier over
    TCP) on top of the protocol work — a re-ship or reconnect sneaking into
    the warm path jumps this number past the regression gate.
    """
    import time

    from repro.api.session import Session
    from repro.api.spec import ScenarioSpec

    spec = ScenarioSpec.from_topology(
        tree_topology(5, 2), records_per_node=3, seed=0
    ).with_(transport="socket", shards=2, pool=True)
    session = Session.from_spec(spec, capture_deltas=False)
    try:
        started = time.perf_counter()
        first = session.run("update")  # cold: spawns hosts, ships worlds
        cold_wall = time.perf_counter() - started
        assert first.engine == "socket-pooled"

        warm_walls = []

        def warm_run():
            started = time.perf_counter()
            result = session.run("update")
            warm_walls.append(time.perf_counter() - started)
            return result

        result = benchmark.pedantic(warm_run, rounds=3, iterations=1)
        warm_mean = sum(warm_walls) / len(warm_walls)
        benchmark.extra_info.update(
            nodes=63,
            shards=2,
            hosts=2,
            cold_first_wall=round(cold_wall, 3),
            warm_mean_wall=round(warm_mean, 3),
        )
        assert result.engine == "socket-pooled"
        # Warm runs must amortise the host spawn/connect/ship overhead away.
        assert warm_mean < cold_wall / 2
    finally:
        session.close()


@pytest.mark.parametrize("size", [3, 5, 7, 9])
def test_bench_clique_scalability(benchmark, size):
    """Global update on cliques of 3-9 nodes (the densest topology)."""
    def run():
        return run_dblp_update(
            clique_topology(size), records_per_node=max(5, RECORDS // size),
            label=f"clique/{size}",
        )[1]

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        nodes=result.node_count,
        update_messages=result.update_messages,
        update_time=result.update_time,
    )
    assert result.all_closed
