"""E3 — scalability with network size for trees, layered DAGs and cliques.

The paper ran up to 31 peers with ~1000 records each; the benchmark keeps the
31-node tree but reduces the per-node record count so a full run stays fast.
The shape that must hold: messages and time grow with the node count, every
run reaches the fix-point, and trees stay far cheaper than cliques of similar
size.

The sharded extension goes past the paper's 31 nodes: the same update on
~127- and ~511-node topologies under the partitioned engine, with per-shard
and cross-shard message counts as the record.
"""

import pytest

from repro.experiments.runner import run_dblp_update
from repro.experiments.scalability import run_shard_scalability
from repro.workloads.topologies import clique_topology, layered_topology, tree_topology

RECORDS = 25


@pytest.mark.parametrize("depth,expected_nodes", [(1, 3), (2, 7), (3, 15), (4, 31)])
def test_bench_tree_scalability(benchmark, depth, expected_nodes):
    """Global update on complete binary trees of 3, 7, 15 and 31 nodes."""
    def run():
        return run_dblp_update(
            tree_topology(depth, 2), records_per_node=RECORDS,
            label=f"tree/{expected_nodes}",
        )[1]

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        nodes=result.node_count,
        update_messages=result.update_messages,
        update_time=result.update_time,
        tuples_inserted=result.tuples_inserted,
    )
    assert result.node_count == expected_nodes
    assert result.all_closed


@pytest.mark.parametrize("depth", [1, 2, 3, 4])
def test_bench_layered_scalability(benchmark, depth):
    """Global update on layered acyclic graphs of growing depth (width 3)."""
    def run():
        return run_dblp_update(
            layered_topology(depth, width=3, seed=0),
            records_per_node=RECORDS,
            label=f"layered/{depth}",
        )[1]

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        nodes=result.node_count,
        update_messages=result.update_messages,
        update_time=result.update_time,
    )
    assert result.all_closed


@pytest.mark.parametrize("size", [127, 511])
def test_bench_sharded_scalability(benchmark, size):
    """Sync vs sharded update on trees/DAGs far past the paper's 31 nodes.

    The extended E3 sweep: the same global update on a ~``size``-node tree
    and layered DAG under both engines, with the shard traffic (per-shard and
    cross-shard deliveries) recorded as the experiment's headline numbers.
    """
    def run():
        return run_shard_scalability(
            sizes=(size,), shards=4, records_per_node=3, check_parity=True
        )

    comparisons = benchmark.pedantic(run, rounds=1, iterations=1)
    tree = comparisons[0]
    benchmark.extra_info.update(
        nodes=tree.node_count,
        shards=tree.shards,
        sync_messages=tree.sync_messages,
        sharded_messages=tree.sharded_messages,
        messages_by_shard=tree.messages_by_shard,
        cross_shard_messages=tree.cross_shard_messages,
        cut_ratio=round(tree.cut_ratio, 4),
    )
    for comparison in comparisons:
        assert comparison.parity
        assert comparison.cross_shard_messages > 0
        assert comparison.cut_ratio < 0.5  # the planner keeps most traffic local


@pytest.mark.parametrize("size", [3, 5, 7, 9])
def test_bench_clique_scalability(benchmark, size):
    """Global update on cliques of 3-9 nodes (the densest topology)."""
    def run():
        return run_dblp_update(
            clique_topology(size), records_per_node=max(5, RECORDS // size),
            label=f"clique/{size}",
        )[1]

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        nodes=result.node_count,
        update_messages=result.update_messages,
        update_time=result.update_time,
    )
    assert result.all_closed
