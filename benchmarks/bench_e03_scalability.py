"""E3 — scalability with network size for trees, layered DAGs and cliques.

The paper ran up to 31 peers with ~1000 records each; the benchmark keeps the
31-node tree but reduces the per-node record count so a full run stays fast.
The shape that must hold: messages and time grow with the node count, every
run reaches the fix-point, and trees stay far cheaper than cliques of similar
size.
"""

import pytest

from repro.experiments.runner import run_dblp_update
from repro.workloads.topologies import clique_topology, layered_topology, tree_topology

RECORDS = 25


@pytest.mark.parametrize("depth,expected_nodes", [(1, 3), (2, 7), (3, 15), (4, 31)])
def test_bench_tree_scalability(benchmark, depth, expected_nodes):
    """Global update on complete binary trees of 3, 7, 15 and 31 nodes."""
    def run():
        return run_dblp_update(
            tree_topology(depth, 2), records_per_node=RECORDS,
            label=f"tree/{expected_nodes}",
        )[1]

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        nodes=result.node_count,
        update_messages=result.update_messages,
        update_time=result.update_time,
        tuples_inserted=result.tuples_inserted,
    )
    assert result.node_count == expected_nodes
    assert result.all_closed


@pytest.mark.parametrize("depth", [1, 2, 3, 4])
def test_bench_layered_scalability(benchmark, depth):
    """Global update on layered acyclic graphs of growing depth (width 3)."""
    def run():
        return run_dblp_update(
            layered_topology(depth, width=3, seed=0),
            records_per_node=RECORDS,
            label=f"layered/{depth}",
        )[1]

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        nodes=result.node_count,
        update_messages=result.update_messages,
        update_time=result.update_time,
    )
    assert result.all_closed


@pytest.mark.parametrize("size", [3, 5, 7, 9])
def test_bench_clique_scalability(benchmark, size):
    """Global update on cliques of 3-9 nodes (the densest topology)."""
    def run():
        return run_dblp_update(
            clique_topology(size), records_per_node=max(5, RECORDS // size),
            label=f"clique/{size}",
        )[1]

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        nodes=result.node_count,
        update_messages=result.update_messages,
        update_time=result.update_time,
    )
    assert result.all_closed
