"""E3 — scalability with network size for trees, layered DAGs and cliques.

The paper ran up to 31 peers with ~1000 records each; the benchmark keeps the
31-node tree but reduces the per-node record count so a full run stays fast.
The shape that must hold: messages and time grow with the node count, every
run reaches the fix-point, and trees stay far cheaper than cliques of similar
size.

The sharded extension goes past the paper's 31 nodes: the same update on
~127- and ~511-node topologies under the partitioned engines — the
in-process sharded one and the one-OS-process-per-shard multiproc one —
with per-shard and cross-shard message counts as the record.
"""

import pytest

from repro.experiments.runner import run_dblp_update
from repro.experiments.scalability import run_shard_scalability
from repro.workloads.topologies import clique_topology, layered_topology, tree_topology

RECORDS = 25


@pytest.mark.parametrize("depth,expected_nodes", [(1, 3), (2, 7), (3, 15), (4, 31)])
def test_bench_tree_scalability(benchmark, depth, expected_nodes):
    """Global update on complete binary trees of 3, 7, 15 and 31 nodes."""
    def run():
        return run_dblp_update(
            tree_topology(depth, 2), records_per_node=RECORDS,
            label=f"tree/{expected_nodes}",
        )[1]

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        nodes=result.node_count,
        update_messages=result.update_messages,
        update_time=result.update_time,
        tuples_inserted=result.tuples_inserted,
    )
    assert result.node_count == expected_nodes
    assert result.all_closed


@pytest.mark.parametrize("depth", [1, 2, 3, 4])
def test_bench_layered_scalability(benchmark, depth):
    """Global update on layered acyclic graphs of growing depth (width 3)."""
    def run():
        return run_dblp_update(
            layered_topology(depth, width=3, seed=0),
            records_per_node=RECORDS,
            label=f"layered/{depth}",
        )[1]

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        nodes=result.node_count,
        update_messages=result.update_messages,
        update_time=result.update_time,
    )
    assert result.all_closed


@pytest.mark.parametrize(
    "size",
    [
        pytest.param(127, marks=pytest.mark.slow),
        pytest.param(511, marks=pytest.mark.slow),
    ],
)
def test_bench_engine_scalability(benchmark, size):
    """Sync vs sharded vs multiproc update on topologies far past 31 nodes.

    The extended E3 sweep, one run per size covering all three engines: the
    same global update on a ~``size``-node tree and layered DAG under the
    single-queue sync engine, the in-process sharded engine, and the
    one-OS-process-per-shard multiproc engine, with wall-clocks and shard
    traffic (per-shard and cross-shard deliveries) as the headline numbers.
    The cross-shard counters of the two partitioned engines must tell a
    consistent story about the same planner cut: real traffic crosses it
    (>0) but most deliveries stay local in both views.
    """
    def run():
        return run_shard_scalability(
            sizes=(size,),
            shards=4,
            records_per_node=3,
            check_parity=True,
            include_multiproc=True,
        )

    comparisons = benchmark.pedantic(run, rounds=1, iterations=1)
    tree = comparisons[0]
    benchmark.extra_info.update(
        nodes=tree.node_count,
        shards=tree.shards,
        sync_wall=round(tree.sync_wall, 3),
        sharded_wall=round(tree.sharded_wall, 3),
        multiproc_wall=round(tree.multiproc_wall, 3),
        sync_messages=tree.sync_messages,
        sharded_messages=tree.sharded_messages,
        messages_by_shard=tree.messages_by_shard,
        cross_shard_messages=tree.cross_shard_messages,
        cut_ratio=round(tree.cut_ratio, 4),
        multiproc_cross=tree.multiproc_cross_shard,
        multiproc_cut_ratio=round(tree.multiproc_cut_ratio, 4),
    )
    for comparison in comparisons:
        assert comparison.parity
        assert comparison.multiproc_parity
        assert comparison.cross_shard_messages > 0
        assert comparison.multiproc_cross_shard > 0
        assert comparison.cut_ratio < 0.5  # the planner keeps most traffic local
        assert comparison.multiproc_cut_ratio < 0.5


@pytest.mark.parametrize("size", [3, 5, 7, 9])
def test_bench_clique_scalability(benchmark, size):
    """Global update on cliques of 3-9 nodes (the densest topology)."""
    def run():
        return run_dblp_update(
            clique_topology(size), records_per_node=max(5, RECORDS // size),
            label=f"clique/{size}",
        )[1]

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        nodes=result.node_count,
        update_messages=result.update_messages,
        update_time=result.update_time,
    )
    assert result.all_closed
