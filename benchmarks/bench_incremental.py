"""Incremental (delta-driven) warm repeats vs cold naive runs.

The claim under measurement (model in ``docs/incremental.md``): once a
pooled network has converged, a repeat update whose only change is a
single inserted base row costs O(delta), not O(db).  The warm workers
receive the insert delta, seed the semi-naive chase with it, and push
only its consequences — no re-pull rounds, no full re-evaluation.

The gate is the ISSUE acceptance bar: on the 127-node layered workload
(a complete binary tree is the layered-acyclic family's canonical
instance at that size) the warm one-row repeat must be at least 5x
faster than the cold run.  The 511-node variant carries the ``slow``
marker and stays out of the CI smoke sweep.
"""

import time

import pytest

from repro.api.session import Session
from repro.api.spec import ScenarioSpec
from repro.workloads.topologies import tree_topology


def _insert_feeding_row(system, tag: str):
    """Insert one fresh row that is guaranteed to cascade downstream.

    Targets the exporter of the first single-atom-body coordination rule
    (a plain copy rule — every DBLP topology has them), so the delta path
    has real consequences to derive rather than a no-op seed.
    """
    rule = next(
        rule
        for rule in sorted(system.registry, key=lambda rule: rule.rule_id)
        if len(rule.body) == 1
    )
    exporter, atom = rule.body[0]
    row = tuple(f"{tag}-{i}" for i in range(len(atom.terms)))
    system.node(exporter).database.relation(atom.relation).insert(row)


def _run_warm_insert_bench(benchmark, *, depth: int, nodes: int, min_speedup: float):
    spec = ScenarioSpec.from_topology(
        tree_topology(depth, 2), records_per_node=3, seed=0
    ).with_(transport="pooled", shards=2)
    session = Session.from_spec(spec, capture_deltas=False)
    try:
        started = time.perf_counter()
        first = session.run("update")  # cold: spawn, ship, full naive chase
        cold_wall = time.perf_counter() - started
        assert first.engine == "pooled"

        warm_walls = []
        rounds = 0

        def warm_insert_run():
            nonlocal rounds
            rounds += 1
            _insert_feeding_row(session.system, f"delta{rounds}")
            started = time.perf_counter()
            result = session.run("update")
            warm_walls.append(time.perf_counter() - started)
            return result

        result = benchmark.pedantic(warm_insert_run, rounds=3, iterations=1)
        assert result.engine == "pooled"
        warm_mean = sum(warm_walls) / len(warm_walls)
        totals = session.system.stats.incremental_totals()
        benchmark.extra_info.update(
            nodes=nodes,
            shards=2,
            cold_wall=round(cold_wall, 3),
            warm_mean_wall=round(warm_mean, 4),
            speedup=round(cold_wall / warm_mean, 1),
            incremental_seed_rows=totals["repro_incremental_seed_rows_total"],
            incremental_rows_derived=totals[
                "repro_incremental_rows_derived_total"
            ],
        )
        # Every warm repeat took the delta path: one seed row per round.
        assert totals["repro_incremental_seed_rows_total"] == rounds
        assert totals["repro_incremental_rows_derived_total"] >= rounds
        # The acceptance bar: warm one-row repeat >= min_speedup x faster.
        assert warm_mean * min_speedup <= cold_wall
    finally:
        session.close()


def test_bench_incremental_warm_insert_127(benchmark):
    """Warm 1-row-insert repeat vs cold run, 127-node tree (2 shards)."""
    _run_warm_insert_bench(benchmark, depth=6, nodes=127, min_speedup=5.0)


@pytest.mark.slow
def test_bench_incremental_warm_insert_511(benchmark):
    """The 511-node variant — same shape, slow-marked, out of CI smoke."""
    _run_warm_insert_bench(benchmark, depth=8, nodes=511, min_speedup=5.0)
