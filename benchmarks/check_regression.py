"""Gate a pytest-benchmark JSON run against the checked-in baseline.

Usage (what the CI ``bench-smoke`` job runs)::

    python benchmarks/check_regression.py results.json benchmarks/baseline.json

Exit code 1 when any benchmark's mean runtime exceeds ``threshold`` times its
baseline mean (default 2.0 — generous on purpose: CI runners are noisy and
the gate is for order-of-magnitude regressions, not micro-variance).
Benchmarks new since the baseline are reported but never fail the gate;
refresh the baseline with::

    python benchmarks/check_regression.py results.json benchmarks/baseline.json --update

The baseline file stores only what the gate needs (name -> mean seconds),
so its diffs stay reviewable.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_means(results_path: Path) -> dict[str, float]:
    """``fullname -> stats.mean`` from a pytest-benchmark ``--benchmark-json`` file."""
    document = json.loads(results_path.read_text(encoding="utf-8"))
    means = {}
    for bench in document.get("benchmarks", []):
        name = bench.get("fullname") or bench.get("name")
        mean = bench.get("stats", {}).get("mean")
        if name and mean is not None:
            means[name] = mean
    return means


def load_baseline(baseline_path: Path) -> dict[str, float]:
    """The checked-in ``{"benchmarks": {name: mean_seconds}}`` baseline."""
    document = json.loads(baseline_path.read_text(encoding="utf-8"))
    return {name: float(mean) for name, mean in document.get("benchmarks", {}).items()}


def write_baseline(baseline_path: Path, means: dict[str, float]) -> None:
    document = {
        "format": "repro-bench-baseline/1",
        "threshold_note": "CI fails when mean > threshold * baseline mean",
        "benchmarks": {name: round(mean, 6) for name, mean in sorted(means.items())},
    }
    baseline_path.write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8"
    )


def compare(
    means: dict[str, float], baseline: dict[str, float], threshold: float
) -> int:
    """Print the comparison table; return the number of failures.

    Benchmarks new since the baseline never fail (they just are not gated
    yet), but baseline entries missing from the run do: a renamed or
    no-longer-collected benchmark must not silently lose its regression
    gate — refresh the baseline with ``--update`` when the removal is
    intentional.
    """
    failures = 0
    width = max((len(name) for name in means), default=10)
    for name, mean in sorted(means.items()):
        reference = baseline.get(name)
        if reference is None:
            print(f"NEW      {name:<{width}} {mean * 1000:9.2f} ms (no baseline)")
            continue
        ratio = mean / reference if reference > 0 else float("inf")
        status = "OK"
        if ratio > threshold:
            status = "REGRESSED"
            failures += 1
        print(
            f"{status:<8} {name:<{width}} {mean * 1000:9.2f} ms "
            f"vs {reference * 1000:9.2f} ms ({ratio:5.2f}x)"
        )
    for name in sorted(set(baseline) - set(means)):
        print(f"MISSING  {name} (in baseline, not in this run)")
        failures += 1
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", type=Path, help="pytest-benchmark JSON output")
    parser.add_argument("baseline", type=Path, help="checked-in baseline JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="fail when mean > threshold * baseline mean (default 2.0)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from this run instead of gating",
    )
    args = parser.parse_args(argv)

    means = load_means(args.results)
    if not means:
        print(f"error: no benchmarks found in {args.results}", file=sys.stderr)
        return 2
    if args.update:
        write_baseline(args.baseline, means)
        print(f"baseline updated: {args.baseline} ({len(means)} benchmarks)")
        return 0
    if not args.baseline.exists():
        print(f"error: baseline {args.baseline} not found", file=sys.stderr)
        return 2
    baseline = load_baseline(args.baseline)
    if not set(means) & set(baseline):
        # A gate that compares nothing is no gate: renamed benchmarks or a
        # stale baseline must fail loudly, not pass vacuously.
        print(
            "error: no benchmark in this run matches the baseline; "
            "refresh it with --update",
            file=sys.stderr,
        )
        return 2
    failures = compare(means, baseline, args.threshold)
    if failures:
        print(
            f"\n{failures} benchmark(s) regressed beyond {args.threshold}x "
            "the baseline (or went missing from the run)"
        )
        return 1
    print(f"\nall benchmarks within {args.threshold}x of the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
