"""E4 — "execution time is linear with respect to the depth of the structure".

The headline observation of the paper's evaluation.  The benchmark sweeps the
depth for binary trees and layered acyclic graphs, fits a straight line and
records the fit in extra_info; the assertion requires R² ≥ 0.9 and a positive
slope — i.e. the reproduction shows the same linear shape the paper reports.
"""

from repro.experiments.depth_linearity import run_depth_linearity


def test_bench_depth_linearity_trees_and_layered(benchmark):
    """Depth sweep 1-5 for both families, with the linear fit."""
    def run():
        return run_depth_linearity(depths=(1, 2, 3, 4, 5), records_per_node=15)

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    for family, data in series.items():
        benchmark.extra_info[f"{family}_times"] = list(data.update_times)
        benchmark.extra_info[f"{family}_slope"] = round(data.fit["slope"], 3)
        benchmark.extra_info[f"{family}_r_squared"] = round(data.fit["r_squared"], 4)
        assert data.fit["slope"] > 0, family
        assert data.fit["r_squared"] >= 0.9, family


def test_bench_depth_linearity_message_growth(benchmark):
    """Messages grow with depth as well, but with the tree's node count, not linearly."""
    def run():
        return run_depth_linearity(depths=(1, 2, 3, 4), records_per_node=10)

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    tree = series["tree"]
    benchmark.extra_info["tree_messages"] = list(tree.update_messages)
    assert list(tree.update_messages) == sorted(tree.update_messages)
