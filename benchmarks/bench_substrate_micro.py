"""Micro-benchmarks of the substrate: query evaluation, chase step, transport.

Not tied to a specific paper experiment; they track the cost of the three hot
paths every experiment goes through (local conjunctive-query evaluation, the
A6 chase step, and message delivery on the discrete-event transport), so
regressions in the substrate are visible independently of protocol changes.
"""

from repro.database.database import LocalDatabase
from repro.database.parser import parse_atom, parse_query
from repro.database.query import Variable
from repro.database.schema import DatabaseSchema, RelationSchema
from repro.network.message import Message, MessageType
from repro.network.transport import SyncTransport
from repro.workloads.dblp import DblpGenerator, rows_for_variant, schema_for_variant


def _norm_database(records):
    db = LocalDatabase(schema_for_variant("norm"))
    for relation, rows in rows_for_variant(records, "norm").items():
        db.insert_many(relation, rows)
    return db


def test_bench_three_way_join(benchmark):
    """Reassembling the publication tuple from the normalised variant (3-way join)."""
    records = DblpGenerator(seed=1).generate(500)
    db = _norm_database(records)
    query = parse_query(
        "q(K, TI, AU, YR, VE) :- work(K, TI), venue_of(K, VE, YR), author_of(K, AU)"
    )
    answers = benchmark(lambda: db.query(query))
    benchmark.extra_info["rows"] = len(answers)
    assert len(answers) == len(records)


def test_bench_selective_join_with_builtin(benchmark):
    """Join plus a comparison built-in (recent publications only)."""
    records = DblpGenerator(seed=2).generate(500)
    db = _norm_database(records)
    query = parse_query("q(K, TI) :- work(K, TI), venue_of(K, VE, YR), YR >= 2000")
    answers = benchmark(lambda: db.query(query))
    benchmark.extra_info["rows"] = len(answers)
    assert 0 < len(answers) < len(records)


def test_bench_chase_step(benchmark):
    """The A6 chase step applying 500 answers with one existential column."""
    records = DblpGenerator(seed=3).generate(500)
    answers = {(record.key, record.title) for record in records}
    head = parse_atom("work_ext(K, T, Source)")

    def chase():
        db = LocalDatabase(
            DatabaseSchema([RelationSchema("work_ext", ["key", "title", "source"])])
        )
        return db.apply_view_tuples(
            "r", head, (Variable("K"), Variable("T")), answers
        )

    inserted = benchmark(chase)
    assert len(inserted) == len(answers)


def test_bench_transport_throughput(benchmark):
    """Delivering 2000 messages through the discrete-event transport."""
    def deliver():
        transport = SyncTransport()
        transport.register("a", lambda m: None)
        transport.register("b", lambda m: None)
        for _ in range(2000):
            transport.send(Message("a", "b", MessageType.QUERY, {"k": 1}))
        return transport.run()

    completion = benchmark(deliver)
    assert completion >= 1.0
