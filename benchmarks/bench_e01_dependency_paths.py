"""E1 — dependency-path computation on the paper's example (Section 2 table)."""

from repro.coordination.depgraph import DependencyGraph
from repro.experiments.paper_example import run_paper_example
from repro.workloads.scenarios import paper_example_rules


def test_bench_maximal_paths_static(benchmark):
    """Static maximal-dependency-path computation for every node of the example."""
    rules = paper_example_rules()

    def compute():
        graph = DependencyGraph.from_rules(rules)
        return {
            node: graph.maximal_dependency_paths(node) for node in graph.nodes
        }

    paths = benchmark(compute)
    benchmark.extra_info["paths_for_A"] = ["".join(p) for p in paths["A"]]
    assert {"".join(p) for p in paths["A"]} == {"ABE", "ABCA", "ABCB", "ABCDA"}


def test_bench_paths_via_distributed_discovery(benchmark):
    """Full E1 run: discovery from every node reproduces the static paths."""
    result = benchmark.pedantic(run_paper_example, rounds=3, iterations=1)
    benchmark.extra_info["discovery_messages"] = result.discovery_messages
    benchmark.extra_info["paths_match"] = result.paths_match
    assert result.paths_match
