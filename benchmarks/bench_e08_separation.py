"""E8 — a separated component terminates while the rest of the network churns (Theorem 3)."""

from repro.experiments.separation import run_separation


def test_bench_separation_under_churn(benchmark):
    """Tree component updates to its fix-point while a clique component churns."""
    def run():
        return run_separation(
            tree_depth=2, clique_size=4, records_per_node=12, churn_rounds=6
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        churn_operations=result.churn_operations,
        messages_within_a=result.messages_within_a,
        total_messages=result.total_messages,
    )
    assert result.theorem3_holds


def test_bench_separation_messages_independent_of_churn(benchmark):
    """More churn in B must not change the work done inside the separated A."""
    def run():
        light = run_separation(records_per_node=10, churn_rounds=2)
        heavy = run_separation(records_per_node=10, churn_rounds=10)
        return light, heavy

    light, heavy = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        light_messages_in_a=light.messages_within_a,
        heavy_messages_in_a=heavy.messages_within_a,
    )
    assert light.messages_within_a == heavy.messages_within_a
