"""E5 — the two data distributions (disjoint vs 50% overlap between neighbours)."""

import pytest

from repro.experiments.data_distribution import run_data_distribution
from repro.workloads.topologies import clique_topology, layered_topology, tree_topology

SPECS = {
    "tree": tree_topology(3, 2),
    "layered": layered_topology(3, 3),
    "clique": clique_topology(6),
}


@pytest.mark.parametrize("name", sorted(SPECS))
def test_bench_distribution_comparison(benchmark, name):
    """Disjoint vs overlapping initial data on one topology family."""
    spec = SPECS[name]

    def run():
        return run_data_distribution(
            specs=[spec], records_per_node=30, overlap_probability=0.5
        )[0]

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        topology=name,
        disjoint_inserted=comparison.disjoint.tuples_inserted,
        overlap_inserted=comparison.overlapping.tuples_inserted,
        disjoint_messages=comparison.disjoint.update_messages,
        overlap_messages=comparison.overlapping.update_messages,
        insertion_ratio=round(comparison.insertion_ratio, 3),
    )
    # Overlapping initial data never requires inserting *more* tuples.
    assert comparison.overlapping.tuples_inserted <= comparison.disjoint.tuples_inserted
