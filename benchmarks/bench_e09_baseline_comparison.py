"""E9 — materialised update vs query-time answering vs the centralized/acyclic baselines."""

import pytest

from repro.experiments.baseline_comparison import run_baseline_comparison
from repro.workloads.topologies import clique_topology, tree_topology

SPECS = {"tree": tree_topology(3, 2), "clique": clique_topology(5)}


@pytest.mark.parametrize("name", sorted(SPECS))
def test_bench_baseline_comparison(benchmark, name):
    """One topology compared across the three strategies."""
    spec = SPECS[name]

    def run():
        return run_baseline_comparison(spec, records_per_node=20, queries_in_batch=10)

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        topology=name,
        update_messages=comparison.update_messages,
        querytime_messages_per_query=comparison.querytime_messages_per_query,
        breakeven_queries=round(comparison.breakeven_queries, 2),
        acyclic_applicable=comparison.acyclic_applicable,
        acyclic_matches=comparison.acyclic_matches,
    )
    # All strategies must agree on the answers; the acyclic baseline is only
    # applicable on the tree (who-wins shape from the paper's positioning).
    assert comparison.answers_agree
    assert comparison.acyclic_applicable == (name == "tree")
    # Materialisation pays once; query-time pays per query, so a modest batch
    # of queries amortises the update cost.
    assert comparison.breakeven_queries < 20
