"""Tracing overhead gate: a traced run must cost within 5% of an untraced one.

The observability layer's contract is that tracing off is free (engines go
through the shared no-op ``NULL_TRACER``) and tracing *on* stays cheap —
spans wrap whole run phases, not per-message work.  This benchmark measures
both arms on the same workload (a fresh sync-engine session running the
update protocol on a 7-node tree) and fails when the traced minimum exceeds
the untraced minimum by more than 5%.  Minima, not means: the gate compares
the best case of each arm so scheduler noise on a shared CI runner cannot
fail it spuriously.
"""

import time

from repro.api.session import Session
from repro.api.spec import ScenarioSpec
from repro.workloads.topologies import tree_topology

#: Allowed traced/untraced slowdown (the ISSUE's <5% acceptance bar).
OVERHEAD_LIMIT = 1.05

_SPEC = ScenarioSpec.from_topology(tree_topology(2, 2), records_per_node=3, seed=7)


def _run_update(trace: bool) -> None:
    session = Session.from_spec(
        _SPEC, capture_deltas=False, check=False, trace=trace
    )
    session.run("update")


def test_bench_trace_overhead(benchmark):
    """Traced update run, gated against an untraced minimum measured in-test."""
    _run_update(trace=False)  # warm caches (imports, parser tables) once
    untraced_min = min(
        _timed(lambda: _run_update(trace=False)) for _ in range(5)
    )

    benchmark(lambda: _run_update(trace=True))
    traced_min = benchmark.stats.stats.min

    benchmark.extra_info["untraced_min_s"] = round(untraced_min, 6)
    benchmark.extra_info["traced_min_s"] = round(traced_min, 6)
    benchmark.extra_info["overhead_ratio"] = round(traced_min / untraced_min, 4)
    assert traced_min <= untraced_min * OVERHEAD_LIMIT, (
        f"tracing overhead {traced_min / untraced_min:.3f}x exceeds the "
        f"{OVERHEAD_LIMIT}x gate (traced {traced_min:.4f}s vs untraced "
        f"{untraced_min:.4f}s)"
    )


def _timed(call) -> float:
    started = time.perf_counter()
    call()
    return time.perf_counter() - started
