"""E10 — worst-case growth with clique size and with change length (Lemmas 1(3) and 4)."""

from repro.experiments.complexity_growth import run_change_growth, run_clique_growth


def test_bench_clique_growth_per_policy(benchmark):
    """Messages vs clique size under faithful per-path and optimised once policies."""
    def run():
        return run_clique_growth(sizes=(2, 3, 4, 5), records_per_node=5)

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    per_path = {p.size: p.update_messages for p in points if p.policy == "per_path"}
    once = {p.size: p.update_messages for p in points if p.policy == "once"}
    benchmark.extra_info["per_path_messages"] = per_path
    benchmark.extra_info["once_messages"] = once
    # The faithful policy's growth rate dominates the optimised one — the
    # observable face of the exponential worst case.
    assert per_path[5] / per_path[2] > once[5] / once[2]
    assert all(per_path[s] >= once[s] for s in per_path)


def test_bench_change_size_growth(benchmark):
    """Messages to re-reach the fix-point vs the length of the change (Lemma 4)."""
    def run():
        return run_change_growth(lengths=(1, 2, 4, 8), records_per_node=10)

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    extra = {p.change_length: p.extra_messages for p in points}
    benchmark.extra_info["extra_messages_by_change_length"] = extra
    lengths = sorted(extra)
    assert all(extra[a] <= extra[b] for a, b in zip(lengths, lengths[1:]))
