"""E6 — per-node statistics and duplicate-query accounting on a clique."""

from repro.experiments.message_accounting import run_message_accounting


def test_bench_message_accounting_clique(benchmark):
    """per_path vs once propagation on a 5-clique: duplicate queries due to loops."""
    def run():
        return run_message_accounting(clique_size=5, records_per_node=15)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        per_path_messages=result.per_path.total_messages,
        once_messages=result.once.total_messages,
        per_path_duplicates=result.per_path.duplicate_queries,
        once_duplicates=result.once.duplicate_queries,
        per_path_bytes=result.per_path.total_bytes,
        once_bytes=result.once.total_bytes,
    )
    # The faithful per-path policy must show the loop-induced duplicates the
    # paper's statistics module was built to count.
    assert result.per_path.duplicate_queries > result.once.duplicate_queries
    assert result.per_path.total_messages > result.once.total_messages
