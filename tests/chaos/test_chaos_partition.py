"""Partitions on the socket engine: heal under backoff, or raise — never hang.

A partition is simulated at the coordinator's send gate: the TCP link to the
victim host stays intact, but every send to it raises
:class:`~repro.errors.PartitionError` until the plan's ``heal_after``
deadline passes.  With a retry budget on the transport, sends back off and
succeed once the partition heals, and the run converges bit-identical to
the fault-free fix-point.  Without a heal, the typed error must surface
through the engine within the retry budget — bounded time, no hang, no
silent divergence.
"""

import pytest

from repro.api import Session
from repro.errors import PartitionError, ReproError
from repro.faults import FaultPlan, FaultSpec


class TestPartitionHeal:
    def test_heals_under_retry_backoff_and_converges(
        self, scenario, sync_baseline, faulted_run, chaos_seed
    ):
        plan = FaultPlan(
            seed=chaos_seed,
            send_retries=6,
            backoff=0.1,
            faults=[
                FaultSpec(
                    kind="partition",
                    phase="quiescence",
                    run_index=1,
                    heal_after=0.3,
                )
            ],
        )
        spec = scenario.with_(transport="socket", shards=2, faults=plan)
        databases, registry = faulted_run(spec)
        assert databases == sync_baseline
        assert registry.total("repro_fault_partitions_total") >= 1
        assert registry.total("repro_fault_partition_heals_total") >= 1
        assert registry.total("repro_fault_retries_total") >= 1

    def test_chase_phase_partition_also_heals(
        self, scenario, sync_baseline, faulted_run, chaos_seed
    ):
        plan = FaultPlan(
            seed=chaos_seed,
            send_retries=6,
            backoff=0.1,
            faults=[
                FaultSpec(
                    kind="partition",
                    phase="chase",
                    run_index=1,
                    heal_after=0.2,
                )
            ],
        )
        spec = scenario.with_(transport="socket", shards=2, faults=plan)
        databases, registry = faulted_run(spec)
        assert databases == sync_baseline
        assert registry.total("repro_fault_partition_heals_total") >= 1


class TestPermanentPartition:
    def test_raises_partition_error_within_the_retry_budget(
        self, scenario, chaos_seed
    ):
        plan = FaultPlan(
            seed=chaos_seed,
            send_retries=2,
            backoff=0.02,
            faults=[
                FaultSpec(
                    kind="partition",
                    phase="quiescence",
                    run_index=1,
                    heal_after=None,
                )
            ],
        )
        spec = scenario.with_(transport="socket", shards=2, faults=plan)
        with Session.from_spec(spec) as session:
            with pytest.raises(PartitionError, match="partitioned"):
                session.run("discovery")
                session.update()
            registry = session.system.stats.registry
            assert registry.total("repro_fault_partitions_total") >= 1
            assert registry.total("repro_fault_partition_heals_total") == 0
            # The retry budget was spent before the error surfaced.
            assert registry.total("repro_fault_retries_total") >= 1

    def test_partition_kind_demands_the_socket_transport(
        self, scenario, chaos_seed
    ):
        plan = FaultPlan(
            seed=chaos_seed,
            faults=[FaultSpec(kind="partition", run_index=1, phase="quiescence")],
        )
        with pytest.raises(ReproError, match="socket"):
            Session.from_spec(
                scenario.with_(transport="multiproc", shards=2, faults=plan)
            )
