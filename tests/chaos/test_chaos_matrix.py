"""The chaos matrix: fault kind × phase × engine, converge or raise — never hang.

Worker kills are injected into every coordinator-side phase of every
process-backed engine, with and without a recovery budget; cross-shard
frames are dropped and delayed inside the workers of every engine.  Each
cell asserts the one contract the fault subsystem promises:

* with recovery enabled, the run converges **bit-identical** to the
  fault-free synchronous fix-point (a detected kill degrades the run to a
  cold re-run; a dropped frame is retransmitted with its latency charged);
* with recovery declined, a fault that fires surfaces as a typed
  :class:`~repro.errors.NetworkError` — not a hang, not a wrong answer;
* the ``repro_fault_*`` counters account for what was injected and what the
  coordinator detected.

The ``sync`` phase structurally exists only on warm repeat runs, so it is
covered at the matrix tail on the pooled engine's second update instead of
in the per-run grid.
"""

import pytest

from repro.api import Session
from repro.errors import NetworkError
from repro.faults import FaultPlan, FaultSpec

# Every process-backed engine (they share MultiprocEngine's retry loop, so
# each must honour the same converge-or-raise contract).
ENGINES = ("multiproc", "pooled", "socket")

# Phases every engine passes through on its very first run (run_index 0):
# worlds are shipped, the chase is driven, the quiescence barrier settles.
FIRST_RUN_PHASES = ("ship", "chase", "quiescence")


class TestKillMatrix:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("phase", FIRST_RUN_PHASES)
    def test_kill_with_budget_converges_bit_identical(
        self, scenario, sync_baseline, faulted_run, chaos_seed, engine, phase
    ):
        plan = FaultPlan(
            seed=chaos_seed,
            max_cold_reruns=2,
            faults=[FaultSpec(kind="kill_worker", phase=phase, run_index=0)],
        )
        spec = scenario.with_(transport=engine, shards=2, faults=plan)
        databases, registry = faulted_run(spec)
        assert databases == sync_baseline
        assert registry.total("repro_fault_injected_total") >= 1
        # A kill the coordinator noticed must have been paid for by a cold
        # re-run; a kill landing after the phase's results were already
        # collected legitimately goes undetected — but never diverges.
        detected = registry.total("repro_fault_detected_total")
        if detected:
            assert registry.total("repro_fault_cold_reruns_total") >= 1

    @pytest.mark.parametrize("engine", ENGINES)
    def test_kill_without_budget_raises_typed_error(
        self, scenario, chaos_seed, engine
    ):
        # A chase-phase kill always lands mid-run, so with the recovery
        # budget at its zero default the run must surface a typed error.
        plan = FaultPlan(
            seed=chaos_seed,
            faults=[FaultSpec(kind="kill_worker", phase="chase", run_index=0)],
        )
        spec = scenario.with_(transport=engine, shards=2, faults=plan)
        with Session.from_spec(spec) as session:
            with pytest.raises(NetworkError):
                session.run("discovery")
                session.update()
            registry = session.system.stats.registry
            assert registry.total("repro_fault_injected_total") >= 1
            assert registry.total("repro_fault_detected_total") >= 1
            assert registry.total("repro_fault_cold_reruns_total") == 0


class TestFrameFaults:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_dropped_and_delayed_frames_keep_the_fixpoint(
        self, scenario, sync_baseline, faulted_run, chaos_seed, engine
    ):
        # Frame faults arm inside the workers during the update's chase
        # (run_index 1: discovery is the session's run 0).  A drop is
        # modelled as drop-plus-retransmit, so the quiescence barrier stays
        # balanced and the fix-point must come out bit-identical.
        plan = FaultPlan(
            seed=chaos_seed,
            faults=[
                FaultSpec(kind="drop_frame", phase="chase", run_index=1, count=1),
                FaultSpec(
                    kind="delay_frame",
                    phase="chase",
                    run_index=1,
                    count=1,
                    delay=0.02,
                ),
            ],
        )
        spec = scenario.with_(transport=engine, shards=2, faults=plan)
        databases, registry = faulted_run(spec)
        assert databases == sync_baseline
        assert registry.total("repro_fault_frames_dropped_total") >= 1
        assert registry.total("repro_fault_frames_delayed_total") >= 1


class TestSyncPhase:
    def test_sync_phase_kill_on_a_warm_pool_recovers(self, scenario, chaos_seed):
        # The sync phase only exists on a warm pool's repeat runs: run 0 is
        # discovery, run 1 spawns the pool and ships worlds, run 2 ships the
        # structural delta — and the kill lands there.
        plan = FaultPlan(
            seed=chaos_seed,
            max_cold_reruns=1,
            faults=[FaultSpec(kind="kill_worker", phase="sync", run_index=2)],
        )

        def drive(spec):
            with Session.from_spec(spec) as session:
                session.run("discovery")
                session.update()
                node = sorted(session.system.nodes)[0]
                relation = sorted(session.system.node(node).database.facts())[0]
                arity = len(
                    next(
                        schema
                        for schema in session.system.node(node).database.schema
                        if schema.name == relation
                    ).attributes
                )
                session.system.node(node).database.insert(
                    relation, tuple(f"warm-{k}" for k in range(arity))
                )
                session.update()
                return (
                    session.system.databases(),
                    session.system.stats.registry,
                )

        reference, _ = drive(scenario)
        databases, registry = drive(
            scenario.with_(transport="pooled", shards=2, faults=plan)
        )
        assert databases == reference
        assert registry.total("repro_fault_injected_total") >= 1
        assert registry.total("repro_fault_cold_reruns_total") >= 1
