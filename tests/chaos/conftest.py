"""Shared scenario and baseline plumbing for the chaos suite.

Every chaos test follows the same shape: build one small scenario, compute
its fault-free synchronous fix-point once, then re-run the same scenario on
a real engine under a seeded :class:`~repro.faults.FaultPlan` and assert the
headline guarantee — the faulted run either converges *bit-identical* to the
baseline or raises a typed :class:`~repro.errors.ReproError` subclass.  It
never hangs (the repo-root stall guard turns a hang into a loud failure) and
never silently diverges.

The scenario is deliberately small (the 7-node binary tree on 2 shards) so
the whole matrix stays in CI budget; the seed comes from ``--chaos-seed`` so
a failing CI shard reproduces locally with the printed seed.
"""

import pytest

from repro.api import ScenarioSpec, Session
from repro.workloads.topologies import tree_topology

@pytest.fixture
def scenario(chaos_seed):
    """The 7-node tree scenario, seeded from --chaos-seed."""
    return ScenarioSpec.from_topology(
        tree_topology(2, 2), records_per_node=3, seed=chaos_seed
    )


@pytest.fixture
def sync_baseline(scenario):
    """The fault-free synchronous fix-point the faulted runs must match."""
    with Session.from_spec(scenario) as session:
        session.run("discovery")
        session.update()
        return session.system.databases()


@pytest.fixture
def faulted_run():
    """Run discovery + update on a spec; return (databases, metrics registry)."""

    def run(spec):
        with Session.from_spec(spec) as session:
            session.run("discovery")
            session.update()
            return session.system.databases(), session.system.stats.registry

    return run
