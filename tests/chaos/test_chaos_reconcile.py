"""Partition-then-heal reconciliation across every topology family.

The end of a partition's life: two replicas of one network diverged while
the link was down — each accepted base inserts the other never saw and
chased them to its own fix-point.  :func:`repro.faults.reconcile` computes
each side's :class:`~repro.coordination.changeset.ChangeSet` against the
common pre-partition baseline, merges the logs (order-insensitively — see
``tests/property/test_property_reconcile.py``), replays the merged base
facts into both sides and re-runs the update protocol.  Afterwards the two
sides must be *equal* — the fix-point the network would have reached had the
partition never happened — on every topology family the workload generator
produces, with the merge accounted in ``repro_fault_reconciled_rows_total``.
"""

import pytest

from repro.api import ScenarioSpec, Session
from repro.coordination.changeset import digest_system
from repro.faults import reconcile
from repro.workloads.topologies import TOPOLOGY_FAMILIES, topology_family


def _divergent_insert(session, node, tag):
    """Insert one well-typed row only this side's replica has seen."""
    database = session.system.node(node).database
    relation = sorted(database.facts())[0]
    arity = len(
        next(
            schema for schema in database.schema if schema.name == relation
        ).attributes
    )
    row = tuple(f"{tag}-{k}" for k in range(arity))
    database.insert(relation, row)
    return relation, row


@pytest.mark.parametrize("family", TOPOLOGY_FAMILIES)
def test_diverged_replicas_reconcile_to_one_fixpoint(family, chaos_seed):
    spec = ScenarioSpec.from_topology(
        topology_family(family, 6, seed=chaos_seed),
        records_per_node=2,
        seed=chaos_seed,
    )
    sides = []
    for _ in range(2):
        session = Session.from_spec(spec)
        session.run("discovery")
        session.update()
        sides.append(session)
    baseline = sides[0].system.databases()
    assert sides[1].system.databases() == baseline

    # The simulated partition: each side accepts an insert on a different
    # node (the victims differ whenever the family has more than one node).
    nodes = sorted(sides[0].system.nodes)
    _divergent_insert(sides[0], nodes[0], "left")
    _divergent_insert(sides[1], nodes[-1], "right")

    merged = reconcile(sides, baseline)

    assert merged.inserted_rows >= 2
    assert not merged.removals
    assert digest_system(sides[0].system) == digest_system(sides[1].system)
    assert sides[0].system.databases() == sides[1].system.databases()
    for session in sides:
        registry = session.system.stats.registry
        assert registry.total("repro_fault_reconciled_rows_total") >= 1


def test_reconcile_is_a_no_op_on_sides_that_never_diverged(chaos_seed):
    spec = ScenarioSpec.from_topology(
        topology_family("tree", 6, seed=chaos_seed),
        records_per_node=2,
        seed=chaos_seed,
    )
    sides = []
    for _ in range(2):
        session = Session.from_spec(spec)
        session.run("discovery")
        session.update()
        sides.append(session)
    baseline = sides[0].system.databases()

    merged = reconcile(sides, baseline)

    assert merged.empty
    for session in sides:
        assert session.system.databases() == baseline
        registry = session.system.stats.registry
        assert registry.total("repro_fault_reconciled_rows_total") == 0
