"""Property-based tests for dependency graphs and paths."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coordination.depgraph import DependencyGraph, is_separated

node_names = st.sampled_from(["n0", "n1", "n2", "n3", "n4", "n5"])
edges_strategy = st.sets(
    st.tuples(node_names, node_names).filter(lambda e: e[0] != e[1]), max_size=14
)


class TestDependencyPathProperties:
    @given(edges=edges_strategy)
    @settings(max_examples=60, deadline=None)
    def test_every_path_follows_edges_and_starts_at_origin(self, edges):
        graph = DependencyGraph(edges=edges)
        for start in graph.nodes:
            for path in graph.maximal_dependency_paths(start, limit=200):
                assert path[0] == start
                for a, b in zip(path, path[1:]):
                    assert (a, b) in edges

    @given(edges=edges_strategy)
    @settings(max_examples=60, deadline=None)
    def test_path_prefixes_are_simple(self, edges):
        graph = DependencyGraph(edges=edges)
        for start in graph.nodes:
            for path in graph.maximal_dependency_paths(start, limit=200):
                prefix = path[:-1]
                assert len(prefix) == len(set(prefix))

    @given(edges=edges_strategy)
    @settings(max_examples=60, deadline=None)
    def test_maximal_paths_cannot_be_extended(self, edges):
        graph = DependencyGraph(edges=edges)
        for start in graph.nodes:
            paths = graph.maximal_dependency_paths(start)
            for path in paths:
                if len(set(path)) != len(path):
                    continue  # closes a loop: extending would break simplicity
                assert not graph.successors(path[-1])

    @given(edges=edges_strategy)
    @settings(max_examples=60, deadline=None)
    def test_reachability_matches_paths(self, edges):
        graph = DependencyGraph(edges=edges)
        for start in graph.nodes:
            reachable = graph.reachable_from(start)
            on_paths = {
                node
                for path in graph.maximal_dependency_paths(start, limit=500)
                for node in path
            } or {start}
            # Every node on a dependency path is reachable.
            assert on_paths <= reachable

    @given(edges=edges_strategy)
    @settings(max_examples=60, deadline=None)
    def test_acyclicity_agrees_with_path_shapes(self, edges):
        graph = DependencyGraph(edges=edges)
        has_loop_path = any(
            len(set(path)) != len(path)
            for start in graph.nodes
            for path in graph.maximal_dependency_paths(start, limit=500)
        )
        assert has_loop_path == (not graph.is_acyclic())

    @given(
        edges=edges_strategy,
        group_a=st.sets(node_names),
        group_b=st.sets(node_names),
    )
    @settings(max_examples=60, deadline=None)
    def test_separation_equals_no_reachability(self, edges, group_a, group_b):
        graph = DependencyGraph(edges=edges)
        for node in group_a | group_b:
            graph.add_node(node)
        separated = is_separated(graph, group_a, group_b)
        reachable = set()
        for node in group_a:
            reachable |= graph.reachable_from(node)
        assert separated == (not (reachable & set(group_b)))
