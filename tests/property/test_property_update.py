"""Property-based tests: the distributed update matches the centralized fix-point.

This is the library's core invariant (Lemma 1 — soundness and completeness):
for randomly generated topologies, rule sets and initial data, running the
distributed protocol must produce exactly the data the centralized chase
produces, every node must reach the ``closed`` state, and the result must be
closed under every coordination rule.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.centralized import centralized_update
from repro.coordination.rule import CoordinationRule
from repro.core.fixpoint import all_nodes_closed, ground_part, satisfies_all_rules
from repro.core.system import P2PSystem
from repro.database.parser import parse_atom
from repro.database.schema import DatabaseSchema, RelationSchema

NODE_NAMES = ["p0", "p1", "p2", "p3", "p4"]

values = st.integers(min_value=0, max_value=6)
rows = st.sets(st.tuples(values, values), max_size=8)

edges_strategy = st.sets(
    st.tuples(st.sampled_from(NODE_NAMES), st.sampled_from(NODE_NAMES)).filter(
        lambda e: e[0] != e[1]
    ),
    max_size=8,
)

data_strategy = st.fixed_dictionaries({name: rows for name in NODE_NAMES})


def build_setup(edges, data):
    """Single-relation copy rules along the generated import edges."""
    schemas = {
        name: DatabaseSchema([RelationSchema("item", ["x", "y"])])
        for name in NODE_NAMES
    }
    atom = parse_atom("item(X, Y)")
    rules = [
        CoordinationRule(f"{importer}<-{exporter}", importer, atom, [(exporter, atom)])
        for importer, exporter in sorted(edges)
    ]
    initial = {name: {"item": sorted(node_rows)} for name, node_rows in data.items()}
    return schemas, rules, initial


class TestDistributedMatchesCentralized:
    @given(edges=edges_strategy, data=data_strategy)
    @settings(max_examples=30, deadline=None)
    def test_copy_networks_reach_the_centralized_fixpoint(self, edges, data):
        schemas, rules, initial = build_setup(edges, data)
        system = P2PSystem.build(schemas, rules, initial)
        system.run_global_update()

        reference = centralized_update(schemas, rules, initial).snapshot()
        assert ground_part(system.databases()) == ground_part(reference)
        assert all_nodes_closed(system)
        assert satisfies_all_rules(system)

    @given(edges=edges_strategy, data=data_strategy)
    @settings(max_examples=15, deadline=None)
    def test_per_path_policy_reaches_the_same_fixpoint(self, edges, data):
        schemas, rules, initial = build_setup(edges, data)
        system = P2PSystem.build(schemas, rules, initial, propagation="per_path")
        system.run_global_update()
        reference = centralized_update(schemas, rules, initial).snapshot()
        assert ground_part(system.databases()) == ground_part(reference)

    @given(edges=edges_strategy, data=data_strategy)
    @settings(max_examples=15, deadline=None)
    def test_update_is_idempotent(self, edges, data):
        schemas, rules, initial = build_setup(edges, data)
        system = P2PSystem.build(schemas, rules, initial)
        system.run_global_update()
        snapshot_after_first = system.databases()
        for node in system.nodes.values():
            node.state.reset_update()
        system.run_global_update()
        assert system.databases() == snapshot_after_first

    @given(edges=edges_strategy, data=data_strategy)
    @settings(max_examples=15, deadline=None)
    def test_every_node_keeps_its_initial_data(self, edges, data):
        schemas, rules, initial = build_setup(edges, data)
        system = P2PSystem.build(schemas, rules, initial)
        system.run_global_update()
        for name, node_rows in data.items():
            assert set(node_rows) <= system.node(name).database.relation("item").rows()


class TestTransformingRules:
    @given(edges=edges_strategy, data=data_strategy)
    @settings(max_examples=20, deadline=None)
    def test_swap_rules_match_centralized(self, edges, data):
        # Rules that swap the two columns while copying — still ground-only,
        # but no longer idempotent per hop, which exercises re-pull rounds.
        schemas = {
            name: DatabaseSchema([RelationSchema("item", ["x", "y"])])
            for name in NODE_NAMES
        }
        head = parse_atom("item(Y, X)")
        body_atom = parse_atom("item(X, Y)")
        rules = [
            CoordinationRule(
                f"{importer}<-{exporter}", importer, head, [(exporter, body_atom)]
            )
            for importer, exporter in sorted(edges)
        ]
        initial = {
            name: {"item": sorted(node_rows)} for name, node_rows in data.items()
        }
        system = P2PSystem.build(schemas, rules, initial)
        system.run_global_update()
        reference = centralized_update(schemas, rules, initial).snapshot()
        assert ground_part(system.databases()) == ground_part(reference)
        assert all_nodes_closed(system)
