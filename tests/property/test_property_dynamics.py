"""Property-based tests for the dynamic-network semantics (Definition 9, Theorem 2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coordination.rule import CoordinationRule
from repro.core.dynamics import (
    NetworkChange,
    apply_change_interleaved,
    complete_envelope,
    is_complete_answer,
    is_sound_answer,
    sound_envelope,
)
from repro.core.system import P2PSystem
from repro.database.parser import parse_atom
from repro.database.schema import DatabaseSchema, RelationSchema

NODE_NAMES = ["p0", "p1", "p2", "p3"]

values = st.integers(min_value=0, max_value=5)
rows = st.sets(st.tuples(values, values), max_size=5)
data_strategy = st.fixed_dictionaries({name: rows for name in NODE_NAMES})

edge_strategy = st.tuples(
    st.sampled_from(NODE_NAMES), st.sampled_from(NODE_NAMES)
).filter(lambda e: e[0] != e[1])
edges_strategy = st.sets(edge_strategy, min_size=1, max_size=6)


def copy_rule(rule_id, importer, exporter):
    atom = parse_atom("item(X, Y)")
    return CoordinationRule(rule_id, importer, atom, [(exporter, atom)])


def build_system(edges, data):
    schemas = {
        name: DatabaseSchema([RelationSchema("item", ["x", "y"])])
        for name in NODE_NAMES
    }
    rules = [
        copy_rule(f"r{i}", importer, exporter)
        for i, (importer, exporter) in enumerate(sorted(edges))
    ]
    initial = {name: {"item": sorted(node_rows)} for name, node_rows in data.items()}
    return schemas, rules, initial


class TestTheorem2Properties:
    @given(
        edges=edges_strategy,
        data=data_strategy,
        added=st.lists(edge_strategy, max_size=3),
        delete_count=st.integers(min_value=0, max_value=2),
        steps=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_interleaved_changes_stay_within_the_envelopes(
        self, edges, data, added, delete_count, steps
    ):
        schemas, rules, initial = build_system(edges, data)
        system = P2PSystem.build(schemas, rules, initial)

        change = NetworkChange()
        for index, (importer, exporter) in enumerate(added):
            change.add_link(copy_rule(f"add{index}", importer, exporter))
        for rule in rules[:delete_count]:
            change.delete_link(rule.target, rule.sources[0], rule.rule_id)

        for node_id in sorted(system.nodes):
            system.node(node_id).update.start()
        apply_change_interleaved(system, change, steps_between=steps)

        measured = system.databases()
        upper = sound_envelope(schemas, rules, change, initial)
        lower = complete_envelope(schemas, rules, change, initial)
        assert is_sound_answer(measured, upper)
        assert is_complete_answer(measured, lower)
        # Termination: the transport is quiescent after the finite change.
        assert system.transport.pending == 0

    @given(edges=edges_strategy, data=data_strategy)
    @settings(max_examples=20, deadline=None)
    def test_empty_change_envelopes_coincide_with_fixpoint(self, edges, data):
        schemas, rules, initial = build_system(edges, data)
        system = P2PSystem.build(schemas, rules, initial)
        system.run_global_update()
        change = NetworkChange()
        measured = system.databases()
        upper = sound_envelope(schemas, rules, change, initial)
        lower = complete_envelope(schemas, rules, change, initial)
        assert is_sound_answer(measured, upper)
        assert is_complete_answer(measured, lower)

    @given(edges=edges_strategy, data=data_strategy, prefix=st.integers(0, 4))
    @settings(max_examples=20, deadline=None)
    def test_subchange_preserves_order_and_relevance(self, edges, data, prefix):
        _schemas, rules, _initial = build_system(edges, data)
        change = NetworkChange()
        for rule in rules:
            change.delete_link(rule.target, rule.sources[0], rule.rule_id)
        prefix = min(prefix, len(change))
        sub = change.initial_subchange(prefix)
        assert len(sub) == prefix
        for node in NODE_NAMES:
            relevant = change.subchange_for([node])
            ids = [op.rule_id for op in relevant]
            all_ids = [op.rule_id for op in change if node in op.involved_nodes]
            assert ids == all_ids
