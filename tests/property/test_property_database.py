"""Property-based tests for the relational engine (relations, evaluation, chase)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.database.database import LocalDatabase
from repro.database.evaluate import evaluate_query
from repro.database.parser import parse_atom, parse_query
from repro.database.query import Variable
from repro.database.relation import Relation
from repro.database.schema import DatabaseSchema, RelationSchema

values = st.one_of(st.integers(min_value=0, max_value=20), st.sampled_from("abcdef"))
pairs = st.tuples(values, values)
pair_sets = st.sets(pairs, max_size=30)


class TestRelationProperties:
    @given(rows=pair_sets)
    def test_insert_is_idempotent_and_set_semantics(self, rows):
        relation = Relation(RelationSchema("r", ["x", "y"]))
        for row in rows:
            relation.insert(row)
        for row in rows:
            assert relation.insert(row) is False
        assert relation.rows() == frozenset(rows)

    @given(rows=pair_sets, probe=values)
    def test_lookup_agrees_with_scan(self, rows, probe):
        relation = Relation(RelationSchema("r", ["x", "y"]), rows)
        via_index = set(relation.lookup(0, probe))
        via_scan = {row for row in relation if row[0] == probe}
        assert via_index == via_scan

    @given(rows=pair_sets)
    def test_delete_inverts_insert(self, rows):
        relation = Relation(RelationSchema("r", ["x", "y"]), rows)
        for row in list(rows):
            assert relation.delete(row) is True
        assert len(relation) == 0

    @given(rows=pair_sets)
    def test_projection_is_subset_of_values(self, rows):
        relation = Relation(RelationSchema("r", ["x", "y"]), rows)
        projected = relation.project([0])
        assert projected == {(row[0],) for row in rows}


def graph_database(edges):
    db = LocalDatabase(DatabaseSchema([RelationSchema("edge", ["src", "dst"])]))
    db.insert_many("edge", edges)
    return db


class TestEvaluationProperties:
    @given(edges=pair_sets)
    def test_identity_query_returns_all_rows(self, edges):
        db = graph_database(edges)
        answers = evaluate_query(db, parse_query("q(X, Y) :- edge(X, Y)"))
        assert answers == set(edges)

    @given(edges=pair_sets)
    def test_join_answers_are_actual_two_step_paths(self, edges):
        db = graph_database(edges)
        answers = evaluate_query(db, parse_query("q(X, Z) :- edge(X, Y), edge(Y, Z)"))
        expected = {
            (x, z2) for (x, y) in edges for (y2, z2) in edges if y == y2
        }
        assert answers == expected

    @given(edges=pair_sets)
    def test_selection_with_builtin_is_a_subset(self, edges):
        db = graph_database(edges)
        unrestricted = evaluate_query(db, parse_query("q(X, Y) :- edge(X, Y)"))
        restricted = evaluate_query(db, parse_query("q(X, Y) :- edge(X, Y), X != Y"))
        assert restricted <= unrestricted
        assert restricted == {(x, y) for (x, y) in unrestricted if x != y}

    @given(edges=pair_sets)
    def test_evaluation_does_not_modify_database(self, edges):
        db = graph_database(edges)
        before = db.facts()
        evaluate_query(db, parse_query("q(X, Z) :- edge(X, Y), edge(Y, Z)"))
        assert db.facts() == before


class TestChaseProperties:
    @given(answers=st.sets(st.tuples(values), max_size=20))
    def test_apply_view_tuples_is_idempotent(self, answers):
        db = LocalDatabase(DatabaseSchema([RelationSchema("t", ["x", "w"])]))
        head = parse_atom("t(X, W)")
        first = db.apply_view_tuples("r", head, (Variable("X"),), answers)
        second = db.apply_view_tuples("r", head, (Variable("X"),), answers)
        assert len(first) == len(answers)
        assert second == set()

    @given(answers=st.sets(st.tuples(values, values), max_size=20))
    def test_copy_rule_materialises_exactly_the_answers(self, answers):
        db = LocalDatabase(DatabaseSchema([RelationSchema("t", ["x", "y"])]))
        head = parse_atom("t(X, Y)")
        inserted = db.apply_view_tuples(
            "r", head, (Variable("X"), Variable("Y")), answers
        )
        assert inserted == set(answers)
        assert db.relation("t").rows() == frozenset(answers)

    @given(answers=st.sets(st.tuples(values), min_size=1, max_size=20))
    def test_skolem_nulls_one_per_distinct_binding(self, answers):
        db = LocalDatabase(DatabaseSchema([RelationSchema("t", ["x", "w"])]))
        head = parse_atom("t(X, W)")
        db.apply_view_tuples("r", head, (Variable("X"),), answers)
        nulls = {row[1] for row in db.relation("t")}
        assert len(nulls) == len(answers)
