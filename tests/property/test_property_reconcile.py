"""Property-based tests: the reconciliation algebra is order-insensitive.

Post-partition reconciliation (:mod:`repro.faults.reconcile`) replays merged
change logs into every diverged side and relies on three algebraic facts to
be correct regardless of which side's log arrives first, how many sides
there are, or whether a log is replayed twice:

* :meth:`ChangeSet.union` is idempotent, commutative and associative (so
  merging is insensitive to log ordering and duplication);
* :func:`apply_changeset` is idempotent (replaying a merged log into a side
  that already absorbed it inserts nothing new);
* :func:`changes_since` of a snapshot against itself is empty (reconciling
  identical databases is a no-op).

These are generated-input counterparts to the single-scenario assertions in
``tests/chaos/``.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coordination.changeset import ChangeSet
from repro.core.system import P2PSystem
from repro.database.schema import DatabaseSchema, RelationSchema
from repro.faults import (
    apply_changeset,
    changes_since,
    merge_changesets,
    reconcile,
)

NODE_NAMES = ["p0", "p1", "p2"]

values = st.integers(min_value=0, max_value=4)
rows = st.sets(st.tuples(values, values), max_size=6)
node_rows = st.fixed_dictionaries({name: rows for name in NODE_NAMES})


def make_changeset(data):
    """A ChangeSet over the shared single-relation schema (canonical order)."""
    return ChangeSet(
        inserts={
            name: {"item": tuple(sorted(per_node, key=repr))}
            for name, per_node in sorted(data.items())
            if per_node
        }
    )


def build_system(data):
    """A rule-free system holding ``data`` in each node's ``item`` relation."""
    schemas = {
        name: DatabaseSchema([RelationSchema("item", ["x", "y"])])
        for name in NODE_NAMES
    }
    initial = {name: {"item": sorted(per_node)} for name, per_node in data.items()}
    return P2PSystem.build(schemas, [], initial)


class TestUnionAlgebra:
    @given(data=node_rows)
    @settings(max_examples=30, deadline=None)
    def test_union_is_idempotent(self, data):
        log = make_changeset(data)
        assert log.union(log) == log

    @given(a=node_rows, b=node_rows)
    @settings(max_examples=30, deadline=None)
    def test_union_is_commutative(self, a, b):
        left, right = make_changeset(a), make_changeset(b)
        assert left.union(right) == right.union(left)

    @given(a=node_rows, b=node_rows, c=node_rows)
    @settings(max_examples=20, deadline=None)
    def test_merge_is_insensitive_to_log_order(self, a, b, c):
        logs = [make_changeset(d) for d in (a, b, c)]
        reference = merge_changesets(*logs)
        for permutation in itertools.permutations(logs):
            assert merge_changesets(*permutation) == reference

    @given(a=node_rows, b=node_rows)
    @settings(max_examples=20, deadline=None)
    def test_duplicated_logs_merge_to_the_same_set(self, a, b):
        left, right = make_changeset(a), make_changeset(b)
        assert merge_changesets(left, right, left, right) == left.union(right)

    @given(data=node_rows)
    @settings(max_examples=20, deadline=None)
    def test_union_with_empty_canonicalises_only(self, data):
        log = make_changeset(data)
        merged = log.union(ChangeSet())
        assert merged == log
        assert merged.inserted_rows == log.inserted_rows


class TestChangesSince:
    @given(data=node_rows)
    @settings(max_examples=30, deadline=None)
    def test_snapshot_against_itself_is_empty(self, data):
        snapshot = build_system(data).databases()
        changes = changes_since(snapshot, snapshot)
        assert changes.empty
        assert not changes.removals

    @given(base=node_rows, extra=node_rows)
    @settings(max_examples=30, deadline=None)
    def test_log_replays_the_baseline_to_the_current_state(self, base, extra):
        grown = {name: base[name] | extra[name] for name in NODE_NAMES}
        baseline = build_system(base).databases()
        current = build_system(grown).databases()
        changes = changes_since(baseline, current)
        assert not changes.removals
        # Replaying the log into a fresh copy of the baseline reconstructs
        # the current state exactly.
        system = build_system(base)
        apply_changeset(system, changes)
        assert system.databases() == current

    @given(base=node_rows, extra=node_rows)
    @settings(max_examples=30, deadline=None)
    def test_apply_is_idempotent(self, base, extra):
        grown = {name: base[name] | extra[name] for name in NODE_NAMES}
        baseline = build_system(base).databases()
        changes = changes_since(baseline, build_system(grown).databases())
        system = build_system(base)
        first = apply_changeset(system, changes)
        after_first = system.databases()
        assert first == sum(
            len(extra[name] - base[name]) for name in NODE_NAMES
        )
        assert apply_changeset(system, changes) == 0
        assert system.databases() == after_first


class _SystemSession:
    """The slice of the Session surface :func:`reconcile` touches."""

    def __init__(self, system):
        self.system = system

    def update(self):
        self.system.run_global_update()


class TestReconcile:
    @given(data=node_rows)
    @settings(max_examples=20, deadline=None)
    def test_identical_sides_reconcile_to_a_no_op(self, data):
        sides = [_SystemSession(build_system(data)) for _ in range(2)]
        baseline = sides[0].system.databases()
        merged = reconcile(sides, baseline, run=False)
        assert merged.empty
        for side in sides:
            assert side.system.databases() == baseline

    @given(base=node_rows, left=node_rows, right=node_rows)
    @settings(max_examples=20, deadline=None)
    def test_diverged_sides_meet_at_the_union(self, base, left, right):
        sides = [
            _SystemSession(
                build_system({n: base[n] | d[n] for n in NODE_NAMES})
            )
            for d in (left, right)
        ]
        baseline = build_system(base).databases()
        reconcile(sides, baseline, run=False)
        union = build_system(
            {n: base[n] | left[n] | right[n] for n in NODE_NAMES}
        ).databases()
        assert sides[0].system.databases() == union
        assert sides[1].system.databases() == union
