"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.core.superpeer import SuperPeer
from repro.core.system import P2PSystem
from repro.coordination.rule import rule_from_text
from repro.database.schema import DatabaseSchema, RelationSchema
from repro.workloads.scenarios import (
    build_paper_example,
    paper_example_data,
    paper_example_rules,
    paper_example_schemas,
)


@pytest.fixture
def paper_rules():
    """The seven rules of the Section 2 example."""
    return paper_example_rules()


@pytest.fixture
def paper_schemas():
    """The schemas of the Section 2 example."""
    return paper_example_schemas()


@pytest.fixture
def paper_data():
    """The initial data of the Section 2 example."""
    return paper_example_data()


@pytest.fixture
def paper_system():
    """A fresh, fully loaded Section 2 example system (synchronous transport)."""
    return build_paper_example()


@pytest.fixture
def updated_paper_system(paper_system):
    """The example system after discovery and a complete global update."""
    super_peer = SuperPeer(paper_system, "A")
    super_peer.run_discovery()
    super_peer.run_global_update()
    return paper_system


@pytest.fixture
def chain_system():
    """A three-node chain a <- b <- c over a single binary relation ``item``.

    Data starts only at ``c``; after an update it must reach ``a`` through ``b``.
    """
    schemas = {
        name: DatabaseSchema([RelationSchema("item", ["x", "y"])])
        for name in ("a", "b", "c")
    }
    rules = [
        rule_from_text("ab", "b: item(X, Y) -> a: item(X, Y)"),
        rule_from_text("bc", "c: item(X, Y) -> b: item(X, Y)"),
    ]
    data = {"c": {"item": [("1", "2"), ("3", "4")]}}
    return P2PSystem.build(schemas, rules, data, super_peer="a")
