"""Unit tests for labelled nulls and the Skolem factory."""

from repro.database.nulls import LabeledNull, SkolemFactory, is_null


class TestLabeledNull:
    def test_equality_by_label(self):
        assert LabeledNull("x") == LabeledNull("x")
        assert LabeledNull("x") != LabeledNull("y")

    def test_hashable(self):
        assert len({LabeledNull("x"), LabeledNull("x"), LabeledNull("y")}) == 2

    def test_is_null(self):
        assert is_null(LabeledNull("x"))
        assert not is_null("x")
        assert not is_null(None)

    def test_str_rendering(self):
        assert str(LabeledNull("r1/Y(k=1)")).startswith("_:")


class TestSkolemFactory:
    def test_same_inputs_same_null(self):
        factory = SkolemFactory()
        first = factory.null_for("r1", "Y", {"X": 1})
        second = factory.null_for("r1", "Y", {"X": 1})
        assert first is second

    def test_different_binding_different_null(self):
        factory = SkolemFactory()
        assert factory.null_for("r1", "Y", {"X": 1}) != factory.null_for(
            "r1", "Y", {"X": 2}
        )

    def test_different_variable_different_null(self):
        factory = SkolemFactory()
        assert factory.null_for("r1", "Y", {"X": 1}) != factory.null_for(
            "r1", "Z", {"X": 1}
        )

    def test_different_rule_different_null(self):
        factory = SkolemFactory()
        assert factory.null_for("r1", "Y", {"X": 1}) != factory.null_for(
            "r2", "Y", {"X": 1}
        )

    def test_binding_order_irrelevant(self):
        factory = SkolemFactory()
        first = factory.null_for("r", "Y", {"A": 1, "B": 2})
        second = factory.null_for("r", "Y", {"B": 2, "A": 1})
        assert first == second

    def test_binding_value_types_distinguished(self):
        factory = SkolemFactory()
        assert factory.null_for("r", "Y", {"X": 1}) != factory.null_for(
            "r", "Y", {"X": "1"}
        )

    def test_nested_null_in_binding(self):
        factory = SkolemFactory()
        inner = factory.null_for("r1", "Y", {"X": 1})
        outer_a = factory.null_for("r2", "Z", {"W": inner})
        outer_b = factory.null_for("r2", "Z", {"W": inner})
        assert outer_a == outer_b

    def test_invented_count_and_reset(self):
        factory = SkolemFactory()
        factory.null_for("r", "Y", {"X": 1})
        factory.null_for("r", "Y", {"X": 1})
        factory.null_for("r", "Y", {"X": 2})
        assert factory.invented_count == 2
        factory.reset()
        assert factory.invented_count == 0
