"""Unit tests for the topology-discovery protocol (algorithms A1-A3)."""

from repro.coordination.rule import rule_from_text
from repro.core.state import DiscoveryState
from repro.core.system import P2PSystem
from repro.database.schema import DatabaseSchema, RelationSchema
from repro.network.message import MessageType


def item_schemas(*names):
    return {
        name: DatabaseSchema([RelationSchema("item", ["x", "y"])]) for name in names
    }


def build(rule_texts, nodes):
    rules = [rule_from_text(f"r{i}", text) for i, text in enumerate(rule_texts)]
    return P2PSystem.build(item_schemas(*nodes), rules)


class TestDiscoverStart:
    def test_node_without_rules_closes_immediately(self):
        system = build([], ["a"])
        system.node("a").discovery.start()
        state = system.node("a").state
        assert state.state_d == DiscoveryState.CLOSED
        assert state.finished
        assert system.transport.pending == 0

    def test_start_sends_one_request_per_source(self):
        system = build(
            ["b: item(X, Y) -> a: item(X, Y)", "c: item(X, Y) -> a: item(X, Y)"],
            ["a", "b", "c"],
        )
        system.node("a").discovery.start()
        assert system.transport.pending == 2
        assert system.node("a").state.state_d == DiscoveryState.DISCOVERY

    def test_start_records_self_owner_entry(self):
        system = build(["b: item(X, Y) -> a: item(X, Y)"], ["a", "b"])
        system.node("a").discovery.start()
        owners = system.node("a").state.discovery_owner
        assert any(entry.requester is None and entry.origin == "a" for entry in owners)


class TestRequestAndAnswerFlow:
    def test_chain_discovery_propagates_edges_back(self):
        system = build(
            ["b: item(X, Y) -> a: item(X, Y)", "c: item(X, Y) -> b: item(X, Y)"],
            ["a", "b", "c"],
        )
        system.run_discovery(origins=["a"])
        state_a = system.node("a").state
        assert state_a.edges == {("a", "b"), ("b", "c")}
        assert state_a.state_d == DiscoveryState.CLOSED
        assert [tuple(p) for p in state_a.maximal_paths()] == [("a", "b", "c")]

    def test_intermediate_node_learns_only_downstream_edges(self):
        system = build(
            ["b: item(X, Y) -> a: item(X, Y)", "c: item(X, Y) -> b: item(X, Y)"],
            ["a", "b", "c"],
        )
        system.run_discovery(origins=["a"])
        # b depends on c only; it must not record the a->b edge as outgoing
        # knowledge relevant to its own paths.
        assert system.node("b").state.maximal_paths() == [("b", "c")]

    def test_two_node_cycle_terminates_and_closes_origin(self):
        system = build(
            ["b: item(X, Y) -> a: item(X, Y)", "a: item(X, Y) -> b: item(X, Y)"],
            ["a", "b"],
        )
        system.run_discovery(origins=["a"])
        state_a = system.node("a").state
        assert state_a.state_d == DiscoveryState.CLOSED
        assert state_a.edges == {("a", "b"), ("b", "a")}
        assert {tuple(p) for p in state_a.maximal_paths()} == {("a", "b", "a")}

    def test_second_origin_reuses_existing_knowledge(self):
        system = build(
            ["b: item(X, Y) -> a: item(X, Y)", "c: item(X, Y) -> b: item(X, Y)"],
            ["a", "b", "c"],
        )
        system.run_discovery(origins=["a"])
        first_messages = system.snapshot_stats().total_messages
        system.run_discovery(origins=["b"])
        second_messages = system.snapshot_stats().total_messages - first_messages
        assert second_messages <= first_messages
        assert system.node("b").state.maximal_paths() == [("b", "c")]

    def test_duplicate_request_marks_branch_finished_without_forwarding(self):
        from repro.network.message import Message

        system = build(
            ["b: item(X, Y) -> a: item(X, Y)", "c: item(X, Y) -> b: item(X, Y)"],
            ["a", "b", "c"],
        )
        node_b = system.node("b")
        system.node("a").discovery.start()
        system.transport.run()
        request_type = MessageType.REQUEST_NODES.value
        before = system.snapshot_stats().messages.by_type[request_type]
        # Re-deliver a request for the same origin: no new forwarding happens,
        # the branch is just marked finished (the "reached twice" stop rule).
        node_b.handle(
            Message("a", "b", MessageType.REQUEST_NODES, {"sender": "a", "origin": "a"})
        )
        system.transport.run()
        after = system.snapshot_stats().messages.by_type[request_type]
        assert after == before
        assert node_b.state.finished


class TestFinalizePaths:
    def test_finalize_is_cached_until_edges_change(self):
        system = build(["b: item(X, Y) -> a: item(X, Y)"], ["a", "b"])
        node = system.node("a")
        system.run_discovery(origins=["a"])
        first = node.state.maximal_paths()
        node.discovery.finalize_paths()  # cached: no change
        assert node.state.maximal_paths() == first
        node.state.edges.add(("b", "c"))
        node.discovery.finalize_paths()
        assert node.state.maximal_paths() != first

    def test_path_limit_is_respected(self):
        system = P2PSystem.build(item_schemas("a", "b", "c", "d"), [])
        node = system.node("a")
        node.path_limit = 2
        node.state.edges.update(
            {("a", "b"), ("a", "c"), ("a", "d"), ("b", "c"), ("c", "d"), ("d", "b")}
        )
        node.discovery.finalize_paths()
        assert 0 < len(node.state.maximal_paths()) <= 2
