"""Unit tests for conjunctive-query evaluation over a local database."""

import pytest

from repro.database.database import LocalDatabase
from repro.database.evaluate import (
    evaluate_body,
    evaluate_body_delta,
    evaluate_query,
    substitute,
)
from repro.database.parser import parse_query
from repro.database.query import Atom, Constant, Variable
from repro.database.schema import DatabaseSchema, RelationSchema
from repro.errors import QueryError


@pytest.fixture
def graph_db():
    db = LocalDatabase(
        DatabaseSchema(
            [
                RelationSchema("edge", ["src", "dst"]),
                RelationSchema("label", ["node", "tag"]),
            ]
        )
    )
    db.insert_many("edge", [("a", "b"), ("b", "c"), ("c", "a"), ("b", "d")])
    db.insert_many("label", [("a", "start"), ("d", "end")])
    return db


class TestSubstitute:
    def test_substitute_with_constants_and_variables(self):
        atom = Atom("edge", [Variable("X"), Constant("z")])
        assert substitute(atom, {Variable("X"): "a"}) == ("a", "z")

    def test_substitute_missing_binding(self):
        atom = Atom("edge", [Variable("X"), Variable("Y")])
        with pytest.raises(QueryError):
            substitute(atom, {Variable("X"): "a"})


class TestEvaluateQuery:
    def test_single_atom_scan(self, graph_db):
        answers = evaluate_query(graph_db, parse_query("q(X, Y) :- edge(X, Y)"))
        assert answers == {("a", "b"), ("b", "c"), ("c", "a"), ("b", "d")}

    def test_join_two_atoms(self, graph_db):
        answers = evaluate_query(
            graph_db, parse_query("q(X, Z) :- edge(X, Y), edge(Y, Z)")
        )
        assert ("a", "c") in answers
        assert ("a", "d") in answers
        assert ("d", "a") not in answers

    def test_join_across_relations(self, graph_db):
        answers = evaluate_query(
            graph_db, parse_query("q(X) :- edge(X, Y), label(Y, 'end')")
        )
        assert answers == {("b",)}

    def test_constant_in_body(self, graph_db):
        answers = evaluate_query(graph_db, parse_query("q(Y) :- edge('a', Y)"))
        assert answers == {("b",)}

    def test_repeated_variable_forces_equality(self, graph_db):
        graph_db.insert("edge", ("e", "e"))
        answers = evaluate_query(graph_db, parse_query("q(X) :- edge(X, X)"))
        assert answers == {("e",)}

    def test_comparison_filters_bindings(self, graph_db):
        answers = evaluate_query(
            graph_db, parse_query("q(X, Z) :- edge(X, Y), edge(Y, Z), X != Z")
        )
        assert ("a", "a") not in answers
        assert ("a", "c") in answers

    def test_missing_relation_yields_empty(self, graph_db):
        answers = evaluate_query(graph_db, parse_query("q(X) :- missing(X)"))
        assert answers == set()

    def test_arity_mismatch_raises(self, graph_db):
        with pytest.raises(QueryError):
            evaluate_query(graph_db, parse_query("q(X) :- edge(X)"))

    def test_existential_head_variables_not_in_answers(self, graph_db):
        # Z never occurs in the body: answers only cover the distinguished X.
        answers = evaluate_query(graph_db, parse_query("q(X, Z) :- label(X, 'start')"))
        assert answers == {("a",)}

    def test_body_only_query_returns_all_bindings(self, graph_db):
        query = parse_query("edge(X, Y), label(X, T)")
        answers = evaluate_query(graph_db, query)
        # Variables in first-occurrence order: X, Y, T.
        assert ("a", "b", "start") in answers

    def test_cartesian_product_when_no_shared_variables(self, graph_db):
        answers = evaluate_query(
            graph_db, parse_query("q(X, N) :- edge(X, 'b'), label(N, 'end')")
        )
        assert answers == {("a", "d")}


class TestEvaluateBody:
    def test_bindings_cover_all_body_variables(self, graph_db):
        query = parse_query("q(X) :- edge(X, Y), edge(Y, Z)")
        bindings = list(evaluate_body(graph_db, query))
        assert all(
            {Variable("X"), Variable("Y"), Variable("Z")} <= set(b) for b in bindings
        )

    def test_empty_result_when_comparison_fails(self, graph_db):
        query = parse_query("q(X) :- label(X, T), T = 'nothing'")
        assert list(evaluate_body(graph_db, query)) == []

    def test_integer_comparisons(self):
        db = LocalDatabase(DatabaseSchema([RelationSchema("num", ["n"])]))
        db.insert_many("num", [(1,), (5,), (10,)])
        answers = evaluate_query(db, parse_query("q(N) :- num(N), N < 6"))
        assert answers == {(1,), (5,)}


def _bindings_set(database, query, delta):
    """The delta evaluation's bindings as comparable frozensets."""
    return {
        frozenset(binding.items())
        for binding in evaluate_body_delta(database, query, delta)
    }


class TestEvaluateBodyDelta:
    """Semi-naive evaluation: join each body atom against the delta only."""

    def test_empty_delta_yields_nothing(self, graph_db):
        query = parse_query("q(X, Y) :- edge(X, Y)")
        assert _bindings_set(graph_db, query, {}) == set()
        assert _bindings_set(graph_db, query, {"edge": []}) == set()

    def test_unrelated_delta_yields_nothing(self, graph_db):
        query = parse_query("q(X, Y) :- edge(X, Y)")
        assert _bindings_set(graph_db, query, {"label": [("a", "start")]}) == set()

    def test_single_atom_returns_only_delta_rows(self, graph_db):
        graph_db.insert("edge", ("d", "e"))
        query = parse_query("q(X, Y) :- edge(X, Y)")
        bindings = _bindings_set(graph_db, query, {"edge": [("d", "e")]})
        assert bindings == {
            frozenset({(Variable("X"), "d"), (Variable("Y"), "e")})
        }

    def test_delta_join_covers_both_atom_positions(self, graph_db):
        # The new edge (d, a) participates as *either* body atom: the
        # seed-each-atom union must find d->a->b (new in first position)
        # and b->d->a (new in second position).
        graph_db.insert("edge", ("d", "a"))
        query = parse_query("q(X, Z) :- edge(X, Y), edge(Y, Z)")
        answers = {
            (binding[Variable("X")], binding[Variable("Z")])
            for binding in evaluate_body_delta(
                graph_db, query, {"edge": [("d", "a")]}
            )
        }
        assert ("d", "b") in answers
        assert ("b", "a") in answers
        # Old-only joins (a->b->c existed before the delta) must not appear.
        assert ("a", "c") not in answers

    def test_semi_naive_completeness(self, graph_db):
        # Full naive evaluation after the insert equals the naive evaluation
        # before it plus exactly what the delta evaluation derives.
        query = parse_query("q(X, Z) :- edge(X, Y), edge(Y, Z)")
        before = evaluate_query(graph_db, query)
        graph_db.insert("edge", ("d", "a"))
        after = evaluate_query(graph_db, query)
        delta_answers = {
            (binding[Variable("X")], binding[Variable("Z")])
            for binding in evaluate_body_delta(
                graph_db, query, {"edge": [("d", "a")]}
            )
        }
        assert before | delta_answers == after

    def test_comparisons_filter_delta_bindings(self, graph_db):
        graph_db.insert("edge", ("c", "c"))
        query = parse_query("q(X, Y) :- edge(X, Y), X != Y")
        assert _bindings_set(graph_db, query, {"edge": [("c", "c")]}) == set()

    def test_constant_mismatch_in_seed_atom_is_skipped(self, graph_db):
        graph_db.insert("edge", ("z", "b"))
        query = parse_query("q(Y) :- edge('a', Y)")
        assert _bindings_set(graph_db, query, {"edge": [("z", "b")]}) == set()

    def test_arity_mismatch_raises(self, graph_db):
        query = parse_query("q(X, Y) :- edge(X, Y)")
        with pytest.raises(QueryError):
            list(evaluate_body_delta(graph_db, query, {"edge": [("only",)]}))
