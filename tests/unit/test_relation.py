"""Unit tests for the set-semantics relation store."""

import pytest

from repro.database.relation import Relation
from repro.database.schema import RelationSchema
from repro.errors import SchemaError


@pytest.fixture
def pair_relation():
    return Relation(RelationSchema("edge", ["src", "dst"]))


class TestInsertDelete:
    def test_insert_returns_true_for_new_row(self, pair_relation):
        assert pair_relation.insert(("a", "b")) is True
        assert len(pair_relation) == 1

    def test_insert_duplicate_is_noop(self, pair_relation):
        pair_relation.insert(("a", "b"))
        assert pair_relation.insert(("a", "b")) is False
        assert len(pair_relation) == 1

    def test_insert_validates_arity(self, pair_relation):
        with pytest.raises(SchemaError):
            pair_relation.insert(("only-one",))

    def test_insert_many_counts_new_rows(self, pair_relation):
        new = pair_relation.insert_many([("a", "b"), ("a", "b"), ("c", "d")])
        assert new == 2

    def test_delete_existing(self, pair_relation):
        pair_relation.insert(("a", "b"))
        assert pair_relation.delete(("a", "b")) is True
        assert len(pair_relation) == 0

    def test_delete_missing(self, pair_relation):
        assert pair_relation.delete(("x", "y")) is False

    def test_clear(self, pair_relation):
        pair_relation.insert_many([("a", "b"), ("c", "d")])
        pair_relation.clear()
        assert len(pair_relation) == 0

    def test_contains_and_iteration(self, pair_relation):
        pair_relation.insert(("a", "b"))
        assert ("a", "b") in pair_relation
        assert set(pair_relation) == {("a", "b")}


class TestLookupAndProjection:
    def test_lookup_uses_position(self, pair_relation):
        pair_relation.insert_many([("a", "b"), ("a", "c"), ("d", "e")])
        assert set(pair_relation.lookup(0, "a")) == {("a", "b"), ("a", "c")}

    def test_lookup_no_match(self, pair_relation):
        pair_relation.insert(("a", "b"))
        assert list(pair_relation.lookup(1, "zzz")) == []

    def test_lookup_invalid_position(self, pair_relation):
        with pytest.raises(SchemaError):
            list(pair_relation.lookup(5, "a"))

    def test_lookup_index_stays_consistent_after_insert(self, pair_relation):
        pair_relation.insert(("a", "b"))
        list(pair_relation.lookup(0, "a"))  # builds the index
        pair_relation.insert(("a", "z"))
        assert set(pair_relation.lookup(0, "a")) == {("a", "b"), ("a", "z")}

    def test_lookup_index_stays_consistent_after_delete(self, pair_relation):
        pair_relation.insert_many([("a", "b"), ("a", "c")])
        list(pair_relation.lookup(0, "a"))
        pair_relation.delete(("a", "b"))
        assert set(pair_relation.lookup(0, "a")) == {("a", "c")}

    def test_project(self, pair_relation):
        pair_relation.insert_many([("a", "b"), ("c", "b")])
        assert pair_relation.project([1]) == {("b",)}

    def test_project_invalid_position(self, pair_relation):
        with pytest.raises(SchemaError):
            pair_relation.project([9])


class TestCopyAndEquality:
    def test_copy_is_independent(self, pair_relation):
        pair_relation.insert(("a", "b"))
        clone = pair_relation.copy()
        clone.insert(("c", "d"))
        assert len(pair_relation) == 1
        assert len(clone) == 2

    def test_equality_by_schema_and_rows(self):
        schema = RelationSchema("edge", ["src", "dst"])
        first = Relation(schema, [("a", "b")])
        second = Relation(schema, [("a", "b")])
        assert first == second

    def test_inequality_for_different_rows(self):
        schema = RelationSchema("edge", ["src", "dst"])
        assert Relation(schema, [("a", "b")]) != Relation(schema, [("a", "c")])

    def test_rows_snapshot_is_frozen(self, pair_relation):
        pair_relation.insert(("a", "b"))
        snapshot = pair_relation.rows()
        pair_relation.insert(("c", "d"))
        assert snapshot == frozenset({("a", "b")})
