"""Unit tests for the rule registry."""

import pytest

from repro.coordination.registry import RuleRegistry
from repro.coordination.rule import rule_from_text
from repro.errors import ChangeError, RuleError
from repro.workloads.scenarios import paper_example_rules


@pytest.fixture
def registry():
    return RuleRegistry(paper_example_rules())


class TestMutation:
    def test_len_and_contains(self, registry):
        assert len(registry) == 7
        assert "r1" in registry
        assert "r99" not in registry

    def test_duplicate_id_rejected(self, registry):
        with pytest.raises(ChangeError):
            registry.add(rule_from_text("r1", "E: e(X, Y) -> B: b(X, Y)"))

    def test_remove_returns_rule(self, registry):
        rule = registry.remove("r1")
        assert rule.rule_id == "r1"
        assert "r1" not in registry

    def test_remove_unknown_rule(self, registry):
        with pytest.raises(ChangeError):
            registry.remove("r99")

    def test_get_unknown_rule(self, registry):
        with pytest.raises(RuleError):
            registry.get("r99")

    def test_copy_is_independent(self, registry):
        clone = registry.copy()
        clone.remove("r1")
        assert "r1" in registry
        assert "r1" not in clone


class TestQueries:
    def test_rules_targeting(self, registry):
        targeting_b = [rule.rule_id for rule in registry.rules_targeting("B")]
        assert targeting_b == ["r1", "r3"]

    def test_rules_sourced_at(self, registry):
        sourced_at_a = {rule.rule_id for rule in registry.rules_sourced_at("A")}
        assert sourced_at_a == {"r5", "r6"}

    def test_rules_targeting_unknown_node_is_empty(self, registry):
        assert registry.rules_targeting("Z") == ()

    def test_nodes(self, registry):
        assert registry.nodes() == frozenset({"A", "B", "C", "D", "E"})

    def test_dependency_graph_round_trip(self, registry):
        graph = registry.dependency_graph()
        assert ("A", "B") in graph.edges
        assert ("B", "E") in graph.edges

    def test_removal_updates_indexes(self, registry):
        registry.remove("r1")
        assert all(rule.rule_id != "r1" for rule in registry.rules_targeting("B"))
        assert all(rule.rule_id != "r1" for rule in registry.rules_sourced_at("E"))

    def test_iteration_yields_rules(self, registry):
        assert {rule.rule_id for rule in registry} == {
            "r1", "r2", "r3", "r4", "r5", "r6", "r7"
        }
