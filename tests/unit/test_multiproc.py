"""Unit tests for the coordinator side of the multi-process engine.

Everything here runs without spawning a single child process: the worker
transport's routing/stamping logic is driven directly, and the coordinator
transport is exercised as the configuration-and-counters handle it is.
The cross-process end-to-end behaviour lives in
``tests/integration/test_multiproc_parity.py``.
"""

import pytest

from repro.api.engine import engine_for
from repro.core.system import P2PSystem
from repro.errors import NetworkError, ReproError
from repro.network.message import Message, MessageType
from repro.sharding import MultiprocEngine, MultiprocTransport, ShardPlan
from repro.sharding.multiproc import ShardWorld, _WorkerTransport, _worlds_from_system
from repro.database.schema import DatabaseSchema, RelationSchema
from repro.coordination.rule import rule_from_text


def _item_schemas(*names):
    return {
        name: DatabaseSchema([RelationSchema("item", ["x", "y"])]) for name in names
    }


class _ListQueue:
    """A stand-in for an mp.Queue capturing what a worker would ship out."""

    def __init__(self):
        self.items = []

    def put(self, item):
        self.items.append(item)


class TestMultiprocTransport:
    def test_engine_for_picks_multiproc_engine(self):
        transport = MultiprocTransport(shard_count=2)
        assert isinstance(engine_for(transport), MultiprocEngine)

    def test_system_build_knows_the_multiproc_kind(self):
        system = P2PSystem.build(
            _item_schemas("a", "b"), transport="multiproc", shards=3
        )
        assert isinstance(system.transport, MultiprocTransport)
        assert system.transport.shard_count == 3

    def test_send_is_refused_on_the_coordinator(self):
        transport = MultiprocTransport(shard_count=2)
        transport.register("a", lambda message: None)
        with pytest.raises(NetworkError):
            transport.send(
                Message(sender="a", recipient="a", type=MessageType.QUERY)
            )

    def test_plan_must_cover_registered_peers(self):
        transport = MultiprocTransport(shard_count=2)
        transport.register("a", lambda message: None)
        transport.register("b", lambda message: None)
        with pytest.raises(NetworkError):
            transport.apply_plan(ShardPlan(shard_count=2, shard_of={"a": 0}))

    def test_plan_with_too_many_shards_raises(self):
        transport = MultiprocTransport(shard_count=1)
        with pytest.raises(NetworkError):
            transport.apply_plan(
                ShardPlan(shard_count=2, shard_of={"a": 0, "b": 1})
            )

    def test_at_least_one_shard_required(self):
        with pytest.raises(NetworkError):
            MultiprocTransport(shard_count=0)

    def test_shard_of_requires_a_plan(self):
        transport = MultiprocTransport(shard_count=2)
        with pytest.raises(NetworkError):
            transport.shard_of("a")

    def test_record_run_accumulates_counters(self):
        transport = MultiprocTransport(shard_count=2)
        transport.record_run({0: 10, 1: 5}, cross_shard=3)
        transport.record_run({0: 2}, cross_shard=1)
        assert transport.delivered_count == 17
        assert transport.shard_message_counts() == {0: 12, 1: 5}
        assert transport.cross_shard_messages == 4
        assert transport.intra_shard_messages == 13

    def test_engine_rejects_other_transports(self, chain_system):
        with pytest.raises(ReproError):
            MultiprocEngine().run(chain_system, "update")

    def test_engine_rejects_unknown_phase(self):
        system = P2PSystem.build(
            _item_schemas("a"), transport="multiproc", shards=1
        )
        with pytest.raises(ReproError):
            MultiprocEngine().run(system, "gossip")


class TestWorkerTransport:
    def _transport(self):
        outboxes = [_ListQueue(), _ListQueue()]
        transport = _WorkerTransport(
            shard_index=0,
            shard_of={"a": 0, "b": 1},
            outboxes=outboxes,
            latency=None,  # defaults to ConstantLatency(1.0)
            max_messages=100,
        )
        transport.register("a", lambda message: None)
        transport.register("b", lambda message: None)
        return transport, outboxes

    def test_local_send_stays_in_the_worker(self):
        transport, outboxes = self._transport()
        transport.send(Message(sender="b", recipient="a", type=MessageType.QUERY))
        assert outboxes[1].items == []
        transport.drain()
        assert transport.delivered == 1
        assert transport.cross_sent == [0, 0]

    def test_cross_send_goes_through_the_outbox(self):
        transport, outboxes = self._transport()
        transport.send(Message(sender="a", recipient="b", type=MessageType.QUERY))
        assert transport.cross_sent == [0, 1]
        kind, deliver_at, message = outboxes[1].items[0]
        assert kind == "msg"
        assert deliver_at == pytest.approx(1.0)  # clock 0 + constant latency
        assert message.recipient == "b"
        # Cross-shard messages are not delivered locally.
        transport.drain()
        assert transport.delivered == 0

    def test_received_cross_message_advances_the_clock(self):
        transport, _outboxes = self._transport()
        transport.receive_cross(
            7.5, Message(sender="b", recipient="a", type=MessageType.ANSWER)
        )
        transport.drain()
        assert transport.clock == pytest.approx(7.5)
        assert transport.cross_received == 1

    def test_unregistered_recipient_raises(self):
        transport, _outboxes = self._transport()
        with pytest.raises(NetworkError):
            transport.send(
                Message(sender="a", recipient="zz", type=MessageType.QUERY)
            )

    def test_max_messages_bound_raises(self):
        outboxes = [_ListQueue()]
        transport = _WorkerTransport(0, {"a": 0}, outboxes, None, max_messages=2)

        def echo(message):
            transport.send(
                Message(sender="a", recipient="a", type=MessageType.QUERY)
            )

        transport.register("a", echo)
        transport.send(Message(sender="a", recipient="a", type=MessageType.QUERY))
        with pytest.raises(NetworkError):
            transport.drain()


class TestShardWorlds:
    def test_worlds_slice_data_by_ownership(self):
        system = P2PSystem.build(
            _item_schemas("a", "b"),
            [rule_from_text("ab", "b: item(X, Y) -> a: item(X, Y)")],
            {"a": {"item": [("1", "2")]}, "b": {"item": [("3", "4")]}},
            transport="multiproc",
            shards=2,
        )
        plan = ShardPlan(shard_count=2, shard_of={"a": 0, "b": 1})
        worlds = _worlds_from_system(system, plan)
        assert [world.owned for world in worlds] == [("a",), ("b",)]
        assert set(worlds[0].data_slice) == {"a"}
        assert set(worlds[1].data_slice) == {"b"}
        # Schemas and rules span the whole network in every world (rules
        # mention remote peers, so each worker rebuilds the full graph).
        for world in worlds:
            assert set(world.schemas) == {"a", "b"}
            assert len(world.rules) == 1

    def test_world_is_picklable(self):
        import pickle

        world = ShardWorld(
            shard_index=0,
            shard_of={"a": 0, "b": 1},
            schemas=_item_schemas("a", "b"),
            rules=(rule_from_text("ab", "b: item(X, Y) -> a: item(X, Y)"),),
            data_slice={"a": {"item": frozenset({("1", "2")})}},
            propagation={"a": "once", "b": "once"},
            latency=None,
            max_messages=10,
        )
        clone = pickle.loads(pickle.dumps(world))
        assert clone.owned == ("a",)
        assert clone.data_slice["a"]["item"] == frozenset({("1", "2")})
