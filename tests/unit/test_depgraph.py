"""Unit tests for dependency graphs, paths and separation (Definitions 5-7, 10)."""

import pytest

from repro.coordination.depgraph import (
    DependencyGraph,
    dependency_edges,
    is_separated,
    maximal_dependency_paths,
)
from repro.coordination.rule import rule_from_text
from repro.workloads.scenarios import paper_example_rules


@pytest.fixture
def paper_graph():
    return DependencyGraph.from_rules(paper_example_rules())


class TestEdges:
    def test_edges_of_the_paper_example(self, paper_graph):
        assert paper_graph.edges == frozenset(
            {
                ("B", "E"),
                ("C", "B"),
                ("B", "C"),
                ("A", "B"),
                ("C", "A"),
                ("D", "A"),
                ("C", "D"),
            }
        )

    def test_dependency_edges_helper(self):
        rules = [rule_from_text("r", "B: b(X) -> A: a(X)")]
        assert dependency_edges(rules) == {("A", "B")}

    def test_multi_source_rule_produces_multiple_edges(self):
        rules = [rule_from_text("r", "B: b(X), D: d(X) -> A: a(X)")]
        assert dependency_edges(rules) == {("A", "B"), ("A", "D")}

    def test_add_and_remove_edge(self):
        graph = DependencyGraph()
        graph.add_edge("A", "B")
        assert graph.successors("A") == frozenset({"B"})
        graph.remove_edge("A", "B")
        assert graph.successors("A") == frozenset()

    def test_nodes_include_isolated(self):
        graph = DependencyGraph(nodes=["X"], edges=[("A", "B")])
        assert graph.nodes == frozenset({"X", "A", "B"})


class TestPaths:
    def test_maximal_paths_of_node_a(self, paper_graph):
        paths = {"".join(p) for p in paper_graph.maximal_dependency_paths("A")}
        assert paths == {"ABE", "ABCA", "ABCB", "ABCDA"}

    def test_maximal_paths_of_node_b(self, paper_graph):
        paths = {"".join(p) for p in paper_graph.maximal_dependency_paths("B")}
        assert paths == {"BE", "BCB", "BCAB", "BCDAB"}

    def test_leaf_node_has_single_trivial_path(self, paper_graph):
        assert paper_graph.maximal_dependency_paths("E") == [("E",)]

    def test_paths_prefix_is_simple(self, paper_graph):
        for node in paper_graph.nodes:
            for path in paper_graph.maximal_dependency_paths(node):
                prefix = path[:-1]
                assert len(prefix) == len(set(prefix))

    def test_maximal_paths_cannot_be_extended(self, paper_graph):
        for path in paper_graph.maximal_dependency_paths("A"):
            last = path[-1]
            if len(set(path)) == len(path):
                # Simple maximal path: the last node must have no successors.
                assert not paper_graph.successors(last)
            else:
                # Otherwise the path closes a loop on an earlier node.
                assert last in path[:-1]

    def test_limit_caps_enumeration(self, paper_graph):
        capped = paper_graph.maximal_dependency_paths("A", limit=2)
        assert len(capped) <= 2

    def test_helper_over_rules(self):
        rules = paper_example_rules()
        assert {"".join(p) for p in maximal_dependency_paths(rules, "D")} == {
            "DABE",
            "DABCA",
            "DABCB",
            "DABCD",
        }


class TestReachabilityAndCycles:
    def test_reachable_from(self, paper_graph):
        assert paper_graph.reachable_from("D") == frozenset({"A", "B", "C", "D", "E"})
        assert paper_graph.reachable_from("E") == frozenset({"E"})

    def test_paper_graph_is_cyclic(self, paper_graph):
        assert paper_graph.is_acyclic() is False

    def test_acyclic_graph_detected(self):
        graph = DependencyGraph(edges=[("A", "B"), ("B", "C")])
        assert graph.is_acyclic() is True

    def test_self_loop_not_possible_from_rules(self):
        # Rules cannot have head and body at the same node, so self-loops only
        # appear via manual edges.
        graph = DependencyGraph(edges=[("A", "A")])
        assert graph.is_acyclic() is False


class TestSeparation:
    def test_separated_components(self):
        graph = DependencyGraph(edges=[("A", "B"), ("C", "D")])
        assert is_separated(graph, ["A", "B"], ["C", "D"]) is True

    def test_not_separated_when_reachable(self):
        graph = DependencyGraph(edges=[("A", "B"), ("B", "C")])
        assert is_separated(graph, ["A"], ["C"]) is False

    def test_separation_is_directional(self):
        graph = DependencyGraph(edges=[("A", "B")])
        assert is_separated(graph, ["B"], ["A"]) is True
        assert is_separated(graph, ["A"], ["B"]) is False
