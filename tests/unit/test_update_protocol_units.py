"""Unit tests for the update protocol internals: rounds, pushes, fragments."""

from repro.coordination.rule import rule_from_text
from repro.core.state import UpdateState
from repro.core.system import P2PSystem
from repro.core.update import fragment_for, fragment_variables, join_fragments
from repro.database.database import LocalDatabase
from repro.database.query import Variable
from repro.database.schema import DatabaseSchema, RelationSchema
from repro.network.message import Message, MessageType


def item_schemas(*names):
    return {
        name: DatabaseSchema([RelationSchema("item", ["x", "y"])]) for name in names
    }


def chain_system(data=None):
    rules = [
        rule_from_text("ab", "b: item(X, Y) -> a: item(X, Y)"),
        rule_from_text("bc", "c: item(X, Y) -> b: item(X, Y)"),
    ]
    return P2PSystem.build(
        item_schemas("a", "b", "c"),
        rules,
        data or {"c": {"item": [("1", "2")]}},
    )


class TestFragments:
    def test_fragment_variables_order(self):
        rule = rule_from_text("r", "b: item(X, Y), item(Y, Z) -> a: item(X, Z)")
        assert fragment_variables(rule, "b") == (
            Variable("X"),
            Variable("Y"),
            Variable("Z"),
        )

    def test_fragment_for_database(self):
        db = LocalDatabase(DatabaseSchema([RelationSchema("item", ["x", "y"])]))
        db.insert_many("item", [("1", "2"), ("2", "3")])
        rule = rule_from_text("r", "b: item(X, Y), item(Y, Z) -> a: item(X, Z)")
        fragment = fragment_for(db, rule, "b")
        assert ("1", "2", "3") in fragment

    def test_join_fragments_applies_cross_fragment_builtins(self):
        rule = rule_from_text(
            "r", "b: item(X, Y), c: item(Y, Z), X != Z -> a: item(X, Z)"
        )
        fragments = {
            "b": {("1", "k"), ("2", "k")},
            "c": {("k", "1"), ("k", "9")},
        }
        answers = join_fragments(rule, fragments)
        assert answers == {("1", "9"), ("2", "1"), ("2", "9")}

    def test_join_fragments_empty_source(self):
        rule = rule_from_text("r", "b: item(X, Y), c: item(Y, Z) -> a: item(X, Z)")
        assert join_fragments(rule, {"b": {("1", "k")}, "c": set()}) == set()


class TestRounds:
    def test_round_bookkeeping_on_chain(self):
        system = chain_system()
        node_a = system.node("a")
        node_a.update.start()
        assert node_a.state.pending_answers == {("ab", "b")}
        system.transport.run()
        assert node_a.state.pending_answers == set()
        assert node_a.state.rounds_completed >= 1
        assert node_a.is_update_closed

    def test_dirty_round_triggers_another_round(self):
        system = chain_system()
        for node_id in ("a", "b", "c"):
            system.node(node_id).update.start()
        system.transport.run()
        # a's first round returned b's data only after b itself pulled from c,
        # so a needed at least two rounds (or a push-triggered re-pull).
        assert system.node("a").state.rounds_completed >= 1
        assert system.node("a").database.relation("item").rows() == {("1", "2")}

    def test_node_without_rules_closes_on_start(self):
        system = P2PSystem.build(item_schemas("solo"), [])
        system.node("solo").update.start()
        assert system.node("solo").is_update_closed

    def test_request_rule_while_round_pending_sets_rerun(self):
        system = chain_system()
        node_a = system.node("a")
        node_a.update.start()  # round in flight, not yet delivered
        new_rule = rule_from_text("ac", "c: item(X, Y) -> a: item(X, Y)")
        system.add_rule(new_rule)
        node_a.update.request_rule(new_rule)
        assert node_a.state.rerun_requested
        system.transport.run()
        assert node_a.is_update_closed
        assert ("1", "2") in node_a.database.relation("item").rows()


class TestQueryHandling:
    def test_query_for_deleted_rule_is_ignored(self):
        system = chain_system()
        node_b = system.node("b")
        node_b.handle(
            Message(
                "a",
                "b",
                MessageType.QUERY,
                {"rule_id": "ghost", "requester": "a", "path": ("a",)},
            )
        )
        assert system.transport.pending == 0
        assert not node_b.state.update_owner

    def test_query_registers_owner_once(self):
        system = chain_system()
        node_b = system.node("b")
        for _ in range(2):
            node_b.handle(
                Message(
                    "a",
                    "b",
                    MessageType.QUERY,
                    {"rule_id": "ab", "requester": "a", "path": ("a",)},
                )
            )
        owners = [entry for entry in node_b.state.update_owner if entry.rule_id == "ab"]
        assert len(owners) == 1
        assert system.snapshot_stats().total_duplicate_queries == 1

    def test_answer_for_deleted_rule_is_dropped(self):
        system = chain_system()
        node_a = system.node("a")
        node_a.handle(
            Message(
                "b",
                "a",
                MessageType.ANSWER,
                {
                    "rule_id": "ghost",
                    "source": "b",
                    "tuples": frozenset({("9", "9")}),
                    "complete": True,
                    "path": ("a",),
                },
            )
        )
        assert node_a.database.total_rows() == 0

    def test_leaf_source_reports_complete(self):
        system = chain_system()
        node_c = system.node("c")
        node_c.handle(
            Message(
                "b",
                "c",
                MessageType.QUERY,
                {"rule_id": "bc", "requester": "b", "path": ("b",)},
            )
        )
        assert node_c.state.state_u == UpdateState.CLOSED
        # The queued answer carries complete=True.
        delivered = system.transport.step()
        assert delivered.type == MessageType.ANSWER
        assert delivered.payload["complete"] is True


class TestPushSuppression:
    def test_unchanged_fragment_is_not_pushed_twice(self):
        system = chain_system()
        system.run_global_update()
        node_b = system.node("b")
        messages_before = system.snapshot_stats().total_messages
        # Force another push round: nothing changed, so nothing is sent.
        node_b.update._push_to_owners()
        assert system.transport.pending == 0
        assert system.snapshot_stats().total_messages == messages_before

    def test_forced_push_bypasses_suppression(self):
        system = chain_system()
        system.run_global_update()
        node_b = system.node("b")
        node_b.update._push_to_owners(force=True)
        assert system.transport.pending > 0


def converge_naive(system):
    """One naive update run: start every node, drain to quiescence."""
    for node_id in system.nodes:
        system.node(node_id).update.start()
    system.transport.run()


class TestJoinFragmentsDelta:
    def test_delta_join_restricts_to_fresh_rows(self):
        rule = rule_from_text("r", "b: item(X, Y), c: item(Y, Z) -> a: item(X, Z)")
        fragments = {
            "b": {("1", "k"), ("2", "k")},
            "c": {("k", "8"), ("k", "9")},
        }
        # Only ("k", "9") is fresh at c: firings through ("k", "8") are old.
        answers = join_fragments(
            rule, fragments, delta_source="c", delta_rows={("k", "9")}
        )
        assert answers == {("1", "9"), ("2", "9")}

    def test_delta_source_outside_the_rule_yields_nothing(self):
        rule = rule_from_text("r", "b: item(X, Y) -> a: item(X, Y)")
        answers = join_fragments(
            rule, {"b": {("1", "2")}}, delta_source="z", delta_rows={("1", "2")}
        )
        assert answers == set()

    def test_delta_join_is_a_subset_of_the_full_join(self):
        rule = rule_from_text("r", "b: item(X, Y), c: item(Y, Z) -> a: item(X, Z)")
        fragments = {"b": {("1", "k")}, "c": {("k", "8"), ("k", "9")}}
        full = join_fragments(rule, fragments)
        delta = join_fragments(
            rule, fragments, delta_source="c", delta_rows={("k", "9")}
        )
        assert delta <= full


class TestIncrementalMode:
    def test_incremental_insert_propagates_along_the_chain(self):
        system = chain_system()
        converge_naive(system)
        queries_before = system.snapshot_stats().total_queries_executed
        row = ("7", "8")
        system.node("c").database.relation("item").insert(row)
        system.node("c").update.start_incremental({"item": [row]})
        system.transport.run()
        # The row cascaded c -> b -> a through owner pushes alone: no node
        # re-opened and not a single query was executed.
        assert row in system.node("b").database.relation("item").rows()
        assert row in system.node("a").database.relation("item").rows()
        assert all(node.is_update_closed for node in system.nodes.values())
        assert system.snapshot_stats().total_queries_executed == queries_before

    def test_incremental_counters_fire(self):
        system = chain_system()
        converge_naive(system)
        row = ("7", "8")
        system.node("c").database.relation("item").insert(row)
        system.node("c").update.start_incremental({"item": [row]})
        system.transport.run()
        totals = system.stats.incremental_totals()
        assert totals["repro_incremental_seed_rows_total"] == 1
        assert totals["repro_incremental_pushes_total"] >= 2  # c->b and b->a
        assert totals["repro_incremental_rows_derived_total"] >= 2

    def test_empty_seed_is_a_noop(self):
        system = chain_system()
        converge_naive(system)
        messages_before = system.snapshot_stats().total_messages
        system.node("c").update.start_incremental({})
        assert system.transport.pending == 0
        assert system.snapshot_stats().total_messages == messages_before

    def test_naive_start_invalidates_incremental_bookkeeping(self):
        system = chain_system()
        converge_naive(system)
        row = ("7", "8")
        system.node("c").database.relation("item").insert(row)
        system.node("c").update.start_incremental({"item": [row]})
        system.transport.run()
        state = system.node("c").state
        assert state.delta_log and state.fragment_cache
        system.node("c").update.start()
        assert not state.delta_log
        assert not state.fragment_cache
        assert not state.fragment_mark

    def test_incremental_matches_naive_rerun_bit_identically(self):
        # Same insert, one system takes the delta path, the other re-runs
        # naively — final databases (labelled nulls included) must be equal.
        def build():
            rules = [
                rule_from_text("ab", "b: item(X, Y) -> a: item(X, Z)"),
                rule_from_text("bc", "c: item(X, Y) -> b: item(X, Y)"),
            ]
            return P2PSystem.build(
                item_schemas("a", "b", "c"),
                rules,
                {"c": {"item": [("1", "2")]}},
            )

        incremental, naive = build(), build()
        converge_naive(incremental)
        converge_naive(naive)
        row = ("7", "8")
        for system in (incremental, naive):
            system.node("c").database.relation("item").insert(row)
        incremental.node("c").update.start_incremental({"item": [row]})
        incremental.transport.run()
        converge_naive(naive)
        assert incremental.databases() == naive.databases()
