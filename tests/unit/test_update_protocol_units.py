"""Unit tests for the update protocol internals: rounds, pushes, fragments."""

from repro.coordination.rule import rule_from_text
from repro.core.state import UpdateState
from repro.core.system import P2PSystem
from repro.core.update import fragment_for, fragment_variables, join_fragments
from repro.database.database import LocalDatabase
from repro.database.query import Variable
from repro.database.schema import DatabaseSchema, RelationSchema
from repro.network.message import Message, MessageType


def item_schemas(*names):
    return {
        name: DatabaseSchema([RelationSchema("item", ["x", "y"])]) for name in names
    }


def chain_system(data=None):
    rules = [
        rule_from_text("ab", "b: item(X, Y) -> a: item(X, Y)"),
        rule_from_text("bc", "c: item(X, Y) -> b: item(X, Y)"),
    ]
    return P2PSystem.build(
        item_schemas("a", "b", "c"),
        rules,
        data or {"c": {"item": [("1", "2")]}},
    )


class TestFragments:
    def test_fragment_variables_order(self):
        rule = rule_from_text("r", "b: item(X, Y), item(Y, Z) -> a: item(X, Z)")
        assert fragment_variables(rule, "b") == (
            Variable("X"),
            Variable("Y"),
            Variable("Z"),
        )

    def test_fragment_for_database(self):
        db = LocalDatabase(DatabaseSchema([RelationSchema("item", ["x", "y"])]))
        db.insert_many("item", [("1", "2"), ("2", "3")])
        rule = rule_from_text("r", "b: item(X, Y), item(Y, Z) -> a: item(X, Z)")
        fragment = fragment_for(db, rule, "b")
        assert ("1", "2", "3") in fragment

    def test_join_fragments_applies_cross_fragment_builtins(self):
        rule = rule_from_text(
            "r", "b: item(X, Y), c: item(Y, Z), X != Z -> a: item(X, Z)"
        )
        fragments = {
            "b": {("1", "k"), ("2", "k")},
            "c": {("k", "1"), ("k", "9")},
        }
        answers = join_fragments(rule, fragments)
        assert answers == {("1", "9"), ("2", "1"), ("2", "9")}

    def test_join_fragments_empty_source(self):
        rule = rule_from_text("r", "b: item(X, Y), c: item(Y, Z) -> a: item(X, Z)")
        assert join_fragments(rule, {"b": {("1", "k")}, "c": set()}) == set()


class TestRounds:
    def test_round_bookkeeping_on_chain(self):
        system = chain_system()
        node_a = system.node("a")
        node_a.update.start()
        assert node_a.state.pending_answers == {("ab", "b")}
        system.transport.run()
        assert node_a.state.pending_answers == set()
        assert node_a.state.rounds_completed >= 1
        assert node_a.is_update_closed

    def test_dirty_round_triggers_another_round(self):
        system = chain_system()
        for node_id in ("a", "b", "c"):
            system.node(node_id).update.start()
        system.transport.run()
        # a's first round returned b's data only after b itself pulled from c,
        # so a needed at least two rounds (or a push-triggered re-pull).
        assert system.node("a").state.rounds_completed >= 1
        assert system.node("a").database.relation("item").rows() == {("1", "2")}

    def test_node_without_rules_closes_on_start(self):
        system = P2PSystem.build(item_schemas("solo"), [])
        system.node("solo").update.start()
        assert system.node("solo").is_update_closed

    def test_request_rule_while_round_pending_sets_rerun(self):
        system = chain_system()
        node_a = system.node("a")
        node_a.update.start()  # round in flight, not yet delivered
        new_rule = rule_from_text("ac", "c: item(X, Y) -> a: item(X, Y)")
        system.add_rule(new_rule)
        node_a.update.request_rule(new_rule)
        assert node_a.state.rerun_requested
        system.transport.run()
        assert node_a.is_update_closed
        assert ("1", "2") in node_a.database.relation("item").rows()


class TestQueryHandling:
    def test_query_for_deleted_rule_is_ignored(self):
        system = chain_system()
        node_b = system.node("b")
        node_b.handle(
            Message(
                "a",
                "b",
                MessageType.QUERY,
                {"rule_id": "ghost", "requester": "a", "path": ("a",)},
            )
        )
        assert system.transport.pending == 0
        assert not node_b.state.update_owner

    def test_query_registers_owner_once(self):
        system = chain_system()
        node_b = system.node("b")
        for _ in range(2):
            node_b.handle(
                Message(
                    "a",
                    "b",
                    MessageType.QUERY,
                    {"rule_id": "ab", "requester": "a", "path": ("a",)},
                )
            )
        owners = [entry for entry in node_b.state.update_owner if entry.rule_id == "ab"]
        assert len(owners) == 1
        assert system.snapshot_stats().total_duplicate_queries == 1

    def test_answer_for_deleted_rule_is_dropped(self):
        system = chain_system()
        node_a = system.node("a")
        node_a.handle(
            Message(
                "b",
                "a",
                MessageType.ANSWER,
                {
                    "rule_id": "ghost",
                    "source": "b",
                    "tuples": frozenset({("9", "9")}),
                    "complete": True,
                    "path": ("a",),
                },
            )
        )
        assert node_a.database.total_rows() == 0

    def test_leaf_source_reports_complete(self):
        system = chain_system()
        node_c = system.node("c")
        node_c.handle(
            Message(
                "b",
                "c",
                MessageType.QUERY,
                {"rule_id": "bc", "requester": "b", "path": ("b",)},
            )
        )
        assert node_c.state.state_u == UpdateState.CLOSED
        # The queued answer carries complete=True.
        delivered = system.transport.step()
        assert delivered.type == MessageType.ANSWER
        assert delivered.payload["complete"] is True


class TestPushSuppression:
    def test_unchanged_fragment_is_not_pushed_twice(self):
        system = chain_system()
        system.run_global_update()
        node_b = system.node("b")
        messages_before = system.snapshot_stats().total_messages
        # Force another push round: nothing changed, so nothing is sent.
        node_b.update._push_to_owners()
        assert system.transport.pending == 0
        assert system.snapshot_stats().total_messages == messages_before

    def test_forced_push_bypasses_suppression(self):
        system = chain_system()
        system.run_global_update()
        node_b = system.node("b")
        node_b.update._push_to_owners(force=True)
        assert system.transport.pending > 0
