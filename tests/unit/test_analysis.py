"""Unit tests for the static network analyzer (repro.analysis).

One positive and one negative fixture per diagnostic code, plus the report
API, the Session pre-flight gate, the check=True/check=False parity pin and
the ``lint`` CLI front end.  The code reference lives in docs/analysis.md.
"""

import time

import pytest

from repro.analysis import (
    Severity,
    analyze,
    analyze_parts,
    build_position_graph,
    existential_cycles,
    is_weakly_acyclic,
)
from repro.api.session import Session, preflight_enabled, set_default_preflight
from repro.api.spec import ScenarioSpec
from repro.cli import main
from repro.coordination.rule import rule_from_text
from repro.database.schema import DatabaseSchema, RelationSchema
from repro.errors import ReproError
from repro.workloads.scenarios import (
    paper_example_data,
    paper_example_rules,
    paper_example_schemas,
)
from repro.workloads.topologies import clique_topology, single_relation_rules_for


def item_schemas(*names):
    return {
        name: DatabaseSchema([RelationSchema("item", ["x", "y"])]) for name in names
    }


def pathological_cycle_rules():
    """The rotated existential import cycle (>20 min fix-point at size 1)."""
    return [
        rule_from_text("ab", "b: item(X, Y) -> a: item(Y, Z)"),
        rule_from_text("ba", "a: item(X, Y) -> b: item(Y, Z)"),
    ]


def bounded_cycle_rules():
    """The keyed variant: existential cycle broken, chase provably stops."""
    return [
        rule_from_text("ab", "b: item(X, Y) -> a: item(X, Z)"),
        rule_from_text("ba", "a: item(X, Y) -> b: item(X, Z)"),
    ]


# --------------------------------------------------------- position graph


class TestPositionGraph:
    def test_regular_and_special_edges(self):
        graph = build_position_graph(
            [rule_from_text("r", "b: item(X, Y) -> a: item(X, Z)")]
        )
        regular = {
            (e.source, e.target) for e in graph.edges if not e.special
        }
        special = {(e.source, e.target) for e in graph.special_edges}
        assert regular == {(("b", "item", 0), ("a", "item", 0))}
        assert special == {(("b", "item", 0), ("a", "item", 1))}

    def test_no_edges_from_dropped_variables(self):
        # Y is read but never exported: no edge may originate at its position.
        graph = build_position_graph(
            [rule_from_text("r", "b: item(X, Y) -> a: item(X, X)")]
        )
        assert all(edge.source != ("b", "item", 1) for edge in graph.edges)

    def test_offending_edges_name_their_rules(self):
        offending = existential_cycles(pathological_cycle_rules())
        assert {edge.rule_id for edge in offending} == {"ab", "ba"}


class TestWeakAcyclicity:
    def test_pathological_cycle_is_rejected(self):
        assert not is_weakly_acyclic(pathological_cycle_rules())

    def test_bounded_cycle_is_accepted(self):
        assert is_weakly_acyclic(bounded_cycle_rules())

    def test_plain_copy_cycle_is_accepted(self):
        rules = [
            rule_from_text("ab", "b: item(X, Y) -> a: item(X, Y)"),
            rule_from_text("ba", "a: item(X, Y) -> b: item(X, Y)"),
        ]
        assert is_weakly_acyclic(rules)

    def test_self_feeding_existential_rule_is_rejected(self):
        # One rule whose invented null lands in the position it reads.
        rules = [rule_from_text("r", "b: item(X, Y) -> a: item(Z, X)")]
        rules += [rule_from_text("back", "a: item(X, Y) -> b: item(X, Y)")]
        assert not is_weakly_acyclic(rules)

    def test_classification_is_fast(self):
        started = time.perf_counter()
        for _ in range(50):
            assert not is_weakly_acyclic(pathological_cycle_rules())
        assert time.perf_counter() - started < 1.0


# ------------------------------------------------------------- diagnostics


class TestTerminationCodes:
    def test_t001_fires_on_existential_cycle(self):
        report = analyze_parts(item_schemas("a", "b"), pathological_cycle_rules())
        assert "T001" in report.codes(Severity.ERROR)
        assert not report.ok
        (diagnostic,) = [d for d in report if d.code == "T001"]
        assert "ab" in diagnostic.message and "ba" in diagnostic.message
        assert diagnostic.suggestion

    def test_t001_silent_on_bounded_cycle(self):
        report = analyze_parts(item_schemas("a", "b"), bounded_cycle_rules())
        assert "T001" not in report.codes()
        assert report.ok

    def test_t002_marks_plain_cycles_as_info(self):
        report = analyze_parts(item_schemas("a", "b"), bounded_cycle_rules())
        assert "T002" in report.codes(Severity.INFO)

    def test_t002_silent_on_acyclic_networks(self):
        rules = [rule_from_text("ab", "b: item(X, Y) -> a: item(X, Y)")]
        report = analyze_parts(item_schemas("a", "b"), rules)
        assert "T002" not in report.codes()


class TestSafetyCodes:
    def test_s001_fires_on_fully_existential_head(self):
        rules = [rule_from_text("r", "b: item(X, Y) -> a: item(U, V)")]
        report = analyze_parts(item_schemas("a", "b"), rules)
        assert "S001" in report.codes(Severity.WARNING)

    def test_s001_silent_when_any_head_variable_is_bound(self):
        rules = [rule_from_text("r", "b: item(X, Y) -> a: item(X, Z)")]
        report = analyze_parts(item_schemas("a", "b"), rules)
        assert "S001" not in report.codes()

    def test_s002_fires_on_duplicate_rule_ids(self):
        rules = [
            rule_from_text("dup", "b: item(X, Y) -> a: item(X, Y)"),
            rule_from_text("dup", "a: item(X, Y) -> b: item(X, Y)"),
        ]
        report = analyze_parts(item_schemas("a", "b"), rules)
        assert "S002" in report.codes(Severity.ERROR)

    def test_s002_silent_on_unique_rule_ids(self):
        rules = [
            rule_from_text("ab", "b: item(X, Y) -> a: item(X, Y)"),
            rule_from_text("ba", "a: item(X, Y) -> b: item(X, Y)"),
        ]
        report = analyze_parts(item_schemas("a", "b"), rules)
        assert "S002" not in report.codes()


class TestSchemaCodes:
    def test_c001_fires_on_undeclared_peer(self):
        rules = [rule_from_text("r", "ghost: item(X, Y) -> a: item(X, Y)")]
        report = analyze_parts(item_schemas("a"), rules)
        assert "C001" in report.codes(Severity.ERROR)

    def test_c001_silent_when_all_peers_declared(self):
        rules = [rule_from_text("r", "b: item(X, Y) -> a: item(X, Y)")]
        report = analyze_parts(item_schemas("a", "b"), rules)
        assert "C001" not in report.codes()

    def test_c002_fires_on_undeclared_head_relation(self):
        rules = [rule_from_text("r", "b: item(X, Y) -> a: mystery(X, Y)")]
        report = analyze_parts(item_schemas("a", "b"), rules)
        assert "C002" in report.codes(Severity.ERROR)

    def test_c003_fires_on_undeclared_body_relation(self):
        rules = [rule_from_text("r", "b: mystery(X, Y) -> a: item(X, Y)")]
        report = analyze_parts(item_schemas("a", "b"), rules)
        assert "C003" in report.codes(Severity.ERROR)

    def test_c002_c003_silent_on_declared_relations(self):
        rules = [rule_from_text("r", "b: item(X, Y) -> a: item(X, Y)")]
        report = analyze_parts(item_schemas("a", "b"), rules)
        assert "C002" not in report.codes()
        assert "C003" not in report.codes()

    def test_c004_fires_on_arity_mismatch(self):
        rules = [rule_from_text("r", "b: item(X, Y, W) -> a: item(X, Y)")]
        report = analyze_parts(item_schemas("a", "b"), rules)
        assert "C004" in report.codes(Severity.ERROR)

    def test_c004_silent_on_matching_arity(self):
        rules = [rule_from_text("r", "b: item(X, Y) -> a: item(X, Y)")]
        report = analyze_parts(item_schemas("a", "b"), rules)
        assert "C004" not in report.codes()

    def test_c005_fires_on_bad_initial_rows(self):
        report = analyze_parts(
            item_schemas("a"), [], {"a": {"item": [("1", "2", "3")]}}
        )
        assert "C005" in report.codes(Severity.ERROR)
        report = analyze_parts(
            item_schemas("a"), [], {"a": {"mystery": [("1",)]}}
        )
        assert "C005" in report.codes(Severity.ERROR)
        report = analyze_parts(item_schemas("a"), [], {"ghost": {"item": []}})
        assert "C005" in report.codes(Severity.ERROR)

    def test_c005_silent_on_well_shaped_rows(self):
        report = analyze_parts(item_schemas("a"), [], {"a": {"item": [("1", "2")]}})
        assert "C005" not in report.codes()


class TestReachabilityCodes:
    def test_r001_fires_on_forever_empty_body(self):
        rules = [rule_from_text("r", "b: item(X, Y) -> a: item(X, Y)")]
        report = analyze_parts(item_schemas("a", "b"), rules, {})
        assert "R001" in report.codes(Severity.WARNING)

    def test_r001_silent_when_a_mediator_is_fed(self):
        # b holds nothing but is the head of a rule importing from c.
        rules = [
            rule_from_text("ab", "b: item(X, Y) -> a: item(X, Y)"),
            rule_from_text("bc", "c: item(X, Y) -> b: item(X, Y)"),
        ]
        data = {"c": {"item": [("1", "2")]}}
        report = analyze_parts(item_schemas("a", "b", "c"), rules, data)
        assert "R001" not in report.codes()

    def test_r002_fires_on_isolated_peer(self):
        rules = [rule_from_text("r", "b: item(X, Y) -> a: item(X, Y)")]
        data = {"b": {"item": [("1", "2")]}, "lonely": {"item": [("9", "9")]}}
        report = analyze_parts(item_schemas("a", "b", "lonely"), rules, data)
        assert "R002" in report.codes(Severity.INFO)
        (diagnostic,) = [d for d in report if d.code == "R002"]
        assert diagnostic.node == "lonely"

    def test_r002_silent_when_every_peer_participates(self):
        rules = [rule_from_text("r", "b: item(X, Y) -> a: item(X, Y)")]
        data = {"b": {"item": [("1", "2")]}}
        report = analyze_parts(item_schemas("a", "b"), rules, data)
        assert "R002" not in report.codes()


class TestShardPlanCodes:
    def test_p001_fires_on_a_heavily_cut_clique(self):
        topology = clique_topology(6)
        rules = single_relation_rules_for(topology)
        schemas = item_schemas(*topology.nodes)
        data = {n: {"item": [("1", "2")]} for n in topology.nodes}
        report = analyze_parts(schemas, rules, data, shards=3)
        assert "P001" in report.codes(Severity.WARNING)

    def test_p001_silent_without_sharding_or_on_good_cuts(self):
        topology = clique_topology(6)
        rules = single_relation_rules_for(topology)
        schemas = item_schemas(*topology.nodes)
        data = {n: {"item": [("1", "2")]} for n in topology.nodes}
        assert "P001" not in analyze_parts(schemas, rules, data).codes()
        # Two disjoint chains over two shards cut nothing.
        rules = [
            rule_from_text("ab", "b: item(X, Y) -> a: item(X, Y)"),
            rule_from_text("cd", "d: item(X, Y) -> c: item(X, Y)"),
        ]
        schemas = item_schemas("a", "b", "c", "d")
        data = {n: {"item": [("1", "2")]} for n in "bd"}
        report = analyze_parts(schemas, rules, data, shards=2)
        assert "P001" not in report.codes()


# ------------------------------------------------------------ report API


class TestAnalysisReport:
    def test_errors_sort_before_warnings_and_infos(self):
        schemas = item_schemas("a", "b", "lonely")
        rules = pathological_cycle_rules()
        report = analyze_parts(schemas, rules, {})
        severities = [d.severity for d in report]
        assert severities == sorted(
            severities, key=[Severity.ERROR, Severity.WARNING, Severity.INFO].index
        )
        assert not report.ok
        assert not report.clean

    def test_render_mentions_every_code(self):
        report = analyze_parts(item_schemas("a", "b"), pathological_cycle_rules(), {})
        text = report.render()
        for code in report.codes():
            assert code in text

    def test_clean_report_renders_clean(self):
        rules = [rule_from_text("r", "b: item(X, Y) -> a: item(X, Y)")]
        data = {"b": {"item": [("1", "2")]}}
        report = analyze_parts(item_schemas("a", "b"), rules, data)
        assert report.clean and report.ok
        assert report.render().endswith("clean")

    def test_analyze_accepts_spec_json_text(self):
        spec = ScenarioSpec.of(
            item_schemas("a", "b"),
            ["r: b: item(X, Y) -> a: item(X, Y)"],
            {"b": {"item": [("1", "2")]}},
        )
        report = analyze(spec.dump_json())
        assert report.clean


# -------------------------------------------------------- session gating


def clean_spec(**settings):
    return ScenarioSpec.of(
        item_schemas("a", "b"),
        ["r: b: item(X, Y) -> a: item(X, Y)"],
        {"b": {"item": [("1", "2"), ("3", "4")]}},
        **settings,
    )


def pathological_spec(**settings):
    return ScenarioSpec.of(
        item_schemas("a", "b"),
        [
            "ab: b: item(X, Y) -> a: item(Y, Z)",
            "ba: a: item(X, Y) -> b: item(Y, Z)",
        ],
        {"a": {"item": [("x0", "x1")]}},
        **settings,
    )


class TestPreflightGate:
    def test_session_refuses_non_terminating_spec(self):
        with pytest.raises(ReproError, match="T001"):
            Session.from_spec(pathological_spec())

    def test_check_false_lets_the_spec_through(self):
        session = Session.from_spec(pathological_spec(), check=False)
        assert session.preflight is None

    def test_clean_spec_records_its_report(self):
        session = Session.from_spec(clean_spec())
        assert session.preflight is not None
        assert session.preflight.ok

    def test_warnings_ride_on_run_results(self):
        spec = ScenarioSpec.of(
            item_schemas("a", "b"),
            ["r: b: item(X, Y) -> a: item(X, Y)"],
            {},  # b never has data: R001 warning, but no error
        )
        session = Session.from_spec(spec)
        assert session.preflight is not None
        assert "R001" in session.preflight.codes(Severity.WARNING)
        result = session.update()
        assert result.extras["preflight_warnings"] == ("R001",)

    def test_default_preflight_toggle(self):
        assert preflight_enabled()
        previous = set_default_preflight(False)
        try:
            assert previous is True
            assert not preflight_enabled()
            session = Session.from_spec(pathological_spec())
            assert session.preflight is None
        finally:
            set_default_preflight(True)

    def test_preflight_parity_check_true_vs_false(self):
        # A spec passing pre-flight must produce identical results either way.
        results = []
        for check in (True, False):
            session = Session.from_spec(clean_spec(), check=check)
            results.append(session.update())
        checked, unchecked = results
        assert checked.databases == unchecked.databases
        assert checked.deltas == unchecked.deltas
        assert checked.completion_time == unchecked.completion_time
        assert checked.extras == unchecked.extras
        assert (
            checked.stats.total_messages == unchecked.stats.total_messages
        )

    def test_paper_example_passes_preflight(self):
        spec = ScenarioSpec.of(
            paper_example_schemas(),
            paper_example_rules(),
            paper_example_data(),
            super_peer="A",
        )
        assert analyze(spec).ok
        session = Session.from_spec(spec)
        assert session.preflight is not None and session.preflight.ok


# ------------------------------------------------------------- lint CLI


class TestLintCli:
    def test_lint_clean_scenario_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.json"
        clean_spec(name="clean").dump_json(path)
        assert main(["lint", str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_pathological_scenario_exits_one(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        pathological_spec(name="bad").dump_json(path)
        assert main(["lint", str(path)]) == 1
        assert "T001" in capsys.readouterr().out

    def test_lint_strict_fails_on_warnings(self, tmp_path, capsys):
        path = tmp_path / "warn.json"
        ScenarioSpec.of(
            item_schemas("a", "b"),
            ["r: b: item(X, Y) -> a: item(X, Y)"],
            {},
            name="warn",
        ).dump_json(path)
        assert main(["lint", str(path)]) == 0
        assert main(["lint", "--strict", str(path)]) == 1
        assert "R001" in capsys.readouterr().out

    def test_lint_unreadable_file_fails_without_crashing(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["lint", str(missing)]) == 1
        assert "error" in capsys.readouterr().err

    def test_run_accepts_no_preflight_flag(self):
        args = main.__globals__["build_parser"]().parse_args(
            ["run", "E1", "--no-preflight"]
        )
        assert args.preflight is False

    def test_no_preflight_flag_flips_the_default(self, capsys):
        assert preflight_enabled()
        try:
            assert main(["run", "E1", "--no-preflight"]) == 0
            assert not preflight_enabled()
        finally:
            set_default_preflight(True)
