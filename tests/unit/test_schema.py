"""Unit tests for relation and database schemas."""

import pytest

from repro.database.schema import Attribute, DatabaseSchema, RelationSchema
from repro.errors import SchemaError


class TestAttribute:
    def test_valid_attribute(self):
        attr = Attribute("title")
        assert attr.name == "title"
        assert attr.dtype == "str"

    def test_attribute_with_dtype(self):
        assert Attribute("year", "int").dtype == "int"

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("not a name")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")


class TestRelationSchema:
    def test_attributes_from_strings(self):
        schema = RelationSchema("pub", ["key", "title"])
        assert schema.arity == 2
        assert schema.attribute_names == ("key", "title")

    def test_attributes_from_objects(self):
        schema = RelationSchema("pub", [Attribute("key"), Attribute("year", "int")])
        assert schema.attributes[1].dtype == "int"

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("pub", ["key", "key"])

    def test_empty_attribute_list_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("pub", [])

    def test_invalid_relation_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("bad name", ["x"])

    def test_index_of(self):
        schema = RelationSchema("pub", ["key", "title", "year"])
        assert schema.index_of("title") == 1

    def test_index_of_unknown_attribute(self):
        schema = RelationSchema("pub", ["key"])
        with pytest.raises(SchemaError):
            schema.index_of("nope")

    def test_validate_tuple_accepts_matching_arity(self):
        schema = RelationSchema("pub", ["key", "title"])
        assert schema.validate_tuple(("k1", "t1")) == ("k1", "t1")

    def test_validate_tuple_rejects_wrong_arity(self):
        schema = RelationSchema("pub", ["key", "title"])
        with pytest.raises(SchemaError):
            schema.validate_tuple(("k1",))

    def test_str_rendering(self):
        schema = RelationSchema("pub", ["key", "title"])
        assert str(schema) == "pub(key, title)"


class TestDatabaseSchema:
    def test_add_and_get(self):
        db_schema = DatabaseSchema([RelationSchema("a", ["x"])])
        db_schema.add(RelationSchema("b", ["y"]))
        assert db_schema.get("b").arity == 1
        assert "a" in db_schema
        assert len(db_schema) == 2

    def test_duplicate_relation_rejected(self):
        db_schema = DatabaseSchema([RelationSchema("a", ["x"])])
        with pytest.raises(SchemaError):
            db_schema.add(RelationSchema("a", ["y"]))

    def test_get_unknown_relation(self):
        with pytest.raises(SchemaError):
            DatabaseSchema().get("missing")

    def test_relation_names_preserve_order(self):
        db_schema = DatabaseSchema(
            [RelationSchema("b", ["x"]), RelationSchema("a", ["y"])]
        )
        assert db_schema.relation_names == ("b", "a")

    def test_iteration_and_mapping_view(self):
        schemas = [RelationSchema("a", ["x"]), RelationSchema("b", ["y"])]
        db_schema = DatabaseSchema(schemas)
        assert list(db_schema) == schemas
        assert set(db_schema.as_mapping()) == {"a", "b"}
