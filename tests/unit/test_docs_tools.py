"""Units for the docs tooling: the link/anchor checker and the API generator."""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "docs" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


check_links = _load("check_links")
gen_api = _load("gen_api")


class TestGithubSlugs:
    def test_plain_heading(self):
        assert check_links.github_slug("Load-testing how-to") == "load-testing-how-to"

    def test_punctuation_and_code_stripped(self):
        assert check_links.github_slug("`GET /healthz`") == "get-healthz"
        assert check_links.github_slug("Errors, admission & control!") == (
            "errors-admission--control"
        )

    def test_inline_links_render_as_text(self):
        assert check_links.github_slug("See [engines](engines.md)") == (
            "see-engines"
        )

    def test_duplicate_headings_get_suffixes(self):
        slugs = check_links.heading_slugs("# Twice\n\n# Twice\n")
        assert slugs == {"twice", "twice-1"}

    def test_fenced_code_is_not_a_heading(self):
        text = "# Real\n\n```sh\n# not a heading\n```\n"
        assert check_links.heading_slugs(text) == {"real"}


class TestBrokenLinks:
    def test_missing_file_and_anchor_reported(self, tmp_path):
        (tmp_path / "a.md").write_text(
            "# Here\n[ok](#here) [bad](#gone) [miss](nope.md) "
            "[x](b.md#there) [y](b.md#absent)\n",
            encoding="utf-8",
        )
        (tmp_path / "b.md").write_text("# There\n", encoding="utf-8")
        broken = check_links.broken_links(
            check_links.iter_markdown_files([str(tmp_path)])
        )
        problems = {(target, problem) for _, target, problem in broken}
        assert problems == {
            ("#gone", "missing anchor"),
            ("nope.md", "missing file"),
            ("b.md#absent", "missing anchor"),
        }

    def test_repo_docs_are_clean(self):
        files = check_links.iter_markdown_files(
            [str(REPO_ROOT / "README.md"), str(REPO_ROOT / "docs")]
        )
        assert check_links.broken_links(files) == []


class TestGeneratedApi:
    def test_api_md_matches_the_docstrings(self):
        committed = (REPO_ROOT / "docs" / "api.md").read_text(encoding="utf-8")
        assert committed == gen_api.generate(), (
            "docs/api.md is stale — regenerate with "
            "'PYTHONPATH=src python docs/gen_api.py'"
        )

    def test_every_target_is_rendered(self):
        text = gen_api.generate()
        for _module, class_name, _role in gen_api.TARGETS:
            assert f"## {class_name}" in text
