"""Unit tests for the fix-point verification helpers and the error hierarchy."""

import pytest

from repro import errors
from repro.core.fixpoint import (
    all_nodes_closed,
    ground_part,
    satisfies_all_rules,
    verify_against_centralized,
)
from repro.coordination.rule import rule_from_text
from repro.core.system import P2PSystem
from repro.database.nulls import LabeledNull
from repro.database.schema import DatabaseSchema, RelationSchema


def item_schemas(*names):
    return {
        name: DatabaseSchema([RelationSchema("item", ["x", "y"])]) for name in names
    }


def chain():
    schemas = item_schemas("a", "b")
    rules = [rule_from_text("ab", "b: item(X, Y) -> a: item(X, Y)")]
    data = {"b": {"item": [("1", "2")]}}
    return schemas, rules, data


class TestGroundPart:
    def test_rows_with_nulls_are_dropped(self):
        snapshot = {
            "a": {
                "item": frozenset({("1", "2"), ("1", LabeledNull("n"))}),
            }
        }
        assert ground_part(snapshot) == {"a": {"item": frozenset({("1", "2")})}}

    def test_empty_snapshot(self):
        assert ground_part({}) == {}


class TestFixpointChecks:
    def test_fresh_system_is_not_at_fixpoint(self):
        schemas, rules, data = chain()
        system = P2PSystem.build(schemas, rules, data)
        assert not satisfies_all_rules(system)
        assert not all_nodes_closed(system)

    def test_updated_system_is_at_fixpoint(self):
        schemas, rules, data = chain()
        system = P2PSystem.build(schemas, rules, data)
        system.run_global_update()
        assert satisfies_all_rules(system)
        assert all_nodes_closed(system)

    def test_satisfies_all_rules_does_not_mutate(self):
        schemas, rules, data = chain()
        system = P2PSystem.build(schemas, rules, data)
        before = system.databases()
        satisfies_all_rules(system)
        assert system.databases() == before

    def test_verification_report_flags_missing_data(self):
        schemas, rules, data = chain()
        system = P2PSystem.build(schemas, rules, data)
        # No update run: node a is missing the imported tuple.
        report = verify_against_centralized(system, schemas, rules, data)
        assert not report.ok
        assert not report.ground_equal
        assert ("1", "2") in report.missing["a"]["item"]
        assert report.extra == {}

    def test_verification_report_ok_after_update(self):
        schemas, rules, data = chain()
        system = P2PSystem.build(schemas, rules, data)
        system.run_global_update()
        report = verify_against_centralized(system, schemas, rules, data)
        assert report.ok
        assert report.missing == {} and report.extra == {}

    def test_verification_report_flags_extra_data(self):
        schemas, rules, data = chain()
        system = P2PSystem.build(schemas, rules, data)
        system.run_global_update()
        system.node("a").database.insert("item", ("99", "99"))
        report = verify_against_centralized(system, schemas, rules, data)
        assert not report.ground_equal
        assert ("99", "99") in report.extra["a"]["item"]


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.SchemaError,
            errors.QueryError,
            errors.RuleError,
            errors.NetworkError,
            errors.ProtocolError,
            errors.TerminationError,
            errors.ChangeError,
        ],
    )
    def test_all_errors_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_pipe_and_peer_errors_are_network_errors(self):
        assert issubclass(errors.PipeClosedError, errors.NetworkError)
        assert issubclass(errors.UnknownPeerError, errors.NetworkError)

    def test_catching_the_base_class(self):
        with pytest.raises(errors.ReproError):
            raise errors.QueryError("boom")
