"""Unit tests for the serving front-end: protocol, admission, routing.

Everything here drives :class:`~repro.serve.ServeApp` in-process (no
sockets): requests are built by hand, responses inspected as data.  Tenants
boot with ``warm=False`` so the synchronous engine serves them — the warm
pooled path is the integration suite's job (``tests/integration/test_serve``).
"""

import asyncio
import json
import threading

import pytest

from repro.api.spec import ScenarioSpec
from repro.errors import ReproError
from repro.serve import (
    HttpRequest,
    ProtocolViolation,
    ServeApp,
    ServerConfig,
    parse_changes,
    warm_spec,
)
from repro.serve.protocol import (
    WS_TEXT,
    HttpResponse,
    build_frame,
    parse_frame,
    read_request,
    render_response,
    websocket_accept,
)
from repro.workloads.scenarios import (
    paper_example_data,
    paper_example_rules,
    paper_example_schemas,
)


def paper_spec() -> ScenarioSpec:
    return ScenarioSpec.of(
        paper_example_schemas(),
        paper_example_rules(),
        paper_example_data(),
        super_peer="A",
    )


def request(
    method: str, path: str, document: dict | None = None, headers: dict | None = None
) -> HttpRequest:
    from urllib.parse import parse_qs, urlsplit

    split = urlsplit(path)
    return HttpRequest(
        method=method,
        target=path,
        path=split.path,
        query=parse_qs(split.query),
        headers={k.lower(): v for k, v in (headers or {}).items()},
        body=json.dumps(document).encode() if document is not None else b"",
    )


def run(coroutine):
    return asyncio.run(coroutine)


async def booted_app(**config) -> ServeApp:
    """An app with the paper example loaded cold (sync engine)."""
    app = ServeApp(ServerConfig(warm=False, **config))
    spec_doc = json.loads(paper_spec().dump_json())
    response = await app.handle(
        request("POST", "/tenants", {"name": "paper", "spec": spec_doc})
    )
    assert response.status == 201, response.body
    return app


def body(response: HttpResponse) -> dict:
    return json.loads(response.body.decode())


# ------------------------------------------------------------------- protocol


class TestProtocol:
    def test_ws_frame_round_trips_masked_and_unmasked(self):
        payload = json.dumps({"hello": "world"}).encode()
        for mask in (False, True):
            frame = build_frame(WS_TEXT, payload, mask=mask)
            buffered = bytearray(frame)

            def read_exact(n):
                taken = bytes(buffered[:n])
                del buffered[:n]
                return taken

            opcode, decoded = parse_frame(read_exact)
            assert opcode == WS_TEXT
            assert decoded == payload

    def test_ws_frame_long_payload_lengths(self):
        for size in (200, 70_000):
            frame = build_frame(WS_TEXT, b"x" * size, mask=True)
            buffered = bytearray(frame)

            def read_exact(n):
                taken = bytes(buffered[:n])
                del buffered[:n]
                return taken

            opcode, decoded = parse_frame(read_exact)
            assert decoded == b"x" * size

    def test_websocket_accept_is_rfc6455_example(self):
        # The worked example of RFC 6455 section 1.3.
        assert (
            websocket_accept("dGhlIHNhbXBsZSBub25jZQ==")
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        )

    def test_read_request_parses_line_headers_and_body(self):
        async def scenario():
            reader = asyncio.StreamReader()
            payload = b'{"a": 1}'
            reader.feed_data(
                b"POST /tenants/x/update?k=v HTTP/1.1\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(payload)).encode() + b"\r\n"
                b"\r\n" + payload
            )
            reader.feed_eof()
            parsed = await read_request(reader)
            assert parsed.method == "POST"
            assert parsed.segments == ("tenants", "x", "update")
            assert parsed.param("k") == "v"
            assert parsed.json() == {"a": 1}

        run(scenario())

    def test_read_request_rejects_garbage(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"NOT A REQUEST\r\n\r\n")
            reader.feed_eof()
            with pytest.raises(ProtocolViolation):
                await read_request(reader)

        run(scenario())

    def test_render_response_frames_body_and_retry_after(self):
        raw = render_response(
            HttpResponse.error(429, "queue_full", "full", retry_after=0.2),
            keep_alive=True,
        )
        head, _, rendered = raw.partition(b"\r\n\r\n")
        assert b"HTTP/1.1 429 Too Many Requests" in head
        assert b"Retry-After: 1" in head
        assert json.loads(rendered)["error"]["code"] == "queue_full"


# -------------------------------------------------------------------- changes


class TestParseChanges:
    def test_parses_inserts_rules_and_flags(self):
        changes = parse_changes(
            {
                "inserts": {"E": {"e": [["x", "y"]]}},
                "add_rules": ["r9: E: e(X, Y) -> B: b(X, Y)"],
            }
        )
        assert changes.inserts["E"]["e"] == (("x", "y"),)
        assert changes.add_rules[0].rule_id == "r9"
        assert not changes.insert_only  # a rule change forces the naive path
        assert parse_changes({"inserts": {"E": {"e": [["x", "y"]]}}}).insert_only

    def test_rejects_unknown_fields_and_malformed_rows(self):
        with pytest.raises(ReproError, match="unknown update field"):
            parse_changes({"insert": {}})
        with pytest.raises(ReproError, match="rows must be arrays"):
            parse_changes({"inserts": {"E": {"e": ["not-a-row"]}}})
        with pytest.raises(ReproError, match="cannot parse rule"):
            parse_changes({"add_rules": ["no-arrow-here"]})

    def test_warm_spec_retargets_cold_transports(self):
        spec = paper_spec()
        assert spec.transport == "sync"
        warmed = warm_spec(spec)
        assert warmed.transport == "pooled"
        assert warm_spec(warmed) is warmed
        socket_spec = spec.with_(transport="socket", shards=2)
        assert warm_spec(socket_spec).pool is True


# ------------------------------------------------------------------- endpoints


class TestEndpoints:
    def test_healthz_and_lifecycle(self):
        async def scenario():
            app = await booted_app()
            health = body(await app.handle(request("GET", "/healthz")))
            assert health["status"] == "ok"
            assert health["tenants"] == {"ready": 1}

            listing = body(await app.handle(request("GET", "/tenants")))
            assert [row["name"] for row in listing["tenants"]] == ["paper"]

            status = body(await app.handle(request("GET", "/tenants/paper")))
            assert status["state"] == "ready"
            assert status["nodes"] == 5
            assert status["engine"] == "sync"

            closed = await app.handle(request("POST", "/tenants/paper/close", {}))
            assert body(closed)["state"] == "closed"
            assert body(await app.handle(request("GET", "/tenants")))["tenants"] == []
            await app.shutdown()

        run(scenario())

    def test_update_applies_and_query_reads(self):
        async def scenario():
            app = await booted_app()
            query_target = (
                "/tenants/paper/query?node=B&q=q(X,%20Y)%20:-%20b(X,%20Y)"
            )
            before = body(await app.handle(request("GET", query_target)))
            updated = body(
                await app.handle(
                    request(
                        "POST",
                        "/tenants/paper/update",
                        {"inserts": {"E": {"e": [["s9", "t9"]]}}},
                    )
                )
            )
            assert updated["tuples_added"] >= 1
            assert updated["mode"] in ("incremental", "naive")
            after = body(
                await app.handle(
                    request(
                        "POST",
                        "/tenants/paper/query",
                        {"node": "B", "query": "q(X, Y) :- b(X, Y)"},
                    )
                )
            )
            assert after["count"] == before["count"] + 1
            assert ["s9", "t9"] in after["answers"]
            await app.shutdown()

        run(scenario())

    def test_error_mapping_404_405_400_409(self):
        async def scenario():
            app = await booted_app()
            cases = [
                (request("GET", "/nope"), 404, "unknown_route"),
                (request("GET", "/tenants/ghost"), 404, "unknown_tenant"),
                (request("PUT", "/tenants"), 404, "unknown_route"),
                (
                    request("POST", "/tenants/paper/update", {"insert": {}}),
                    400,
                    "bad_request",
                ),
                (
                    request(
                        "POST",
                        "/tenants/paper/update",
                        {"inserts": {"E": {"e": [["one-column"]]}}},
                    ),
                    400,
                    "bad_request",
                ),
                (
                    request(
                        "POST",
                        "/tenants/paper/update",
                        {"inserts": {"GHOST": {"e": [["a", "b"]]}}},
                    ),
                    400,
                    "bad_request",
                ),
                (request("GET", "/tenants/paper/query?node=B"), 400, "bad_request"),
                (request("GET", "/tenants/paper/events"), 426, "upgrade_required"),
            ]
            for built, status, code in cases:
                response = await app.handle(built)
                assert response.status == status, (built.path, body(response))
                assert body(response)["error"]["code"] == code
            duplicate = await app.handle(
                request(
                    "POST",
                    "/tenants",
                    {
                        "name": "paper",
                        "spec": json.loads(paper_spec().dump_json()),
                    },
                )
            )
            assert duplicate.status == 409
            assert body(duplicate)["error"]["code"] == "tenant_exists"
            await app.shutdown()

        run(scenario())

    def test_bad_spec_rejected_and_not_left_loaded(self):
        async def scenario():
            app = ServeApp(ServerConfig(warm=False))
            response = await app.handle(
                request("POST", "/tenants", {"name": "bad", "spec": {"nope": 1}})
            )
            assert response.status == 400
            assert body(response)["error"]["code"] == "bad_spec"
            listing = body(await app.handle(request("GET", "/tenants")))
            assert listing["tenants"] == []
            await app.shutdown()

        run(scenario())

    def test_metrics_exposition_labels_tenants(self):
        async def scenario():
            app = await booted_app()
            await app.handle(
                request(
                    "POST",
                    "/tenants/paper/update",
                    {"inserts": {"E": {"e": [["m1", "m2"]]}}},
                )
            )
            response = await app.handle(request("GET", "/metrics"))
            assert response.status == 200
            text = response.body.decode()
            assert 'repro_serve_tenants{state="ready"} 1' in text
            assert 'repro_serve_runs_completed_total{tenant="paper"} 1' in text
            # The tenant's own stats registry folds in under its label.
            assert 'tenant="paper"' in text
            assert "repro_serve_requests_total" in text
            await app.shutdown()

        run(scenario())

    def test_overload_rejects_429_and_never_hangs(self):
        async def scenario():
            app = await booted_app(queue_depth=2)
            tenant = app.manager.get("paper")
            entered, release = threading.Event(), threading.Event()

            def block():
                entered.set()
                assert release.wait(timeout=30)

            # Fire the first update as a task, wait until its worker thread
            # is inside the run (the queue slot is free again), then fill
            # the bounded queue and overflow it.
            tenant._pre_run_hook = block
            first = asyncio.ensure_future(
                app.handle(
                    request(
                        "POST",
                        "/tenants/paper/update",
                        {"inserts": {"E": {"e": [["b1", "b1"]]}}},
                    )
                )
            )
            await asyncio.get_running_loop().run_in_executor(
                None, entered.wait, 30
            )
            queued = [
                asyncio.ensure_future(
                    app.handle(
                        request(
                            "POST",
                            "/tenants/paper/update",
                            {"inserts": {"E": {"e": [[f"q{i}", f"q{i}"]]}}},
                        )
                    )
                )
                for i in range(2)
            ]
            await asyncio.sleep(0.05)  # let both submissions enqueue
            assert tenant.queue.qsize() == 2

            overflow = await app.handle(
                request(
                    "POST",
                    "/tenants/paper/update",
                    {"inserts": {"E": {"e": [["over", "over"]]}}},
                )
            )
            assert overflow.status == 429
            assert body(overflow)["error"]["code"] == "queue_full"
            assert "Retry-After" in overflow.headers

            release.set()
            responses = await asyncio.gather(first, *queued)
            assert [r.status for r in responses] == [200, 200, 200]
            assert tenant.updates_rejected == 1
            await app.shutdown()

        run(scenario())

    def test_naive_mode_reported_for_removals(self):
        async def scenario():
            app = await booted_app()
            await app.handle(
                request(
                    "POST",
                    "/tenants/paper/update",
                    {"inserts": {"E": {"e": [["n1", "n2"]]}}},
                )
            )
            removed = body(
                await app.handle(
                    request(
                        "POST",
                        "/tenants/paper/update",
                        {"removes": {"E": {"e": [["n1", "n2"]]}}},
                    )
                )
            )
            assert removed["mode"] == "naive"
            await app.shutdown()

        run(scenario())

    def test_route_matching_rejects_wrong_methods(self):
        from repro.serve.app import match_route

        assert match_route("GET", ("healthz",)).label == "healthz"
        assert match_route("POST", ("healthz",)) is None
        assert match_route("DELETE", ("tenants", "x")).label == "tenants.close"
        assert match_route("PATCH", ("tenants", "x")) is None
        assert match_route("GET", ("tenants", "x", "update")) is None
        assert match_route("GET", ()) is None
