"""Unit tests for the conjunctive-query AST."""

import pytest

from repro.database.query import (
    Atom,
    Comparison,
    ConjunctiveQuery,
    Constant,
    Variable,
)
from repro.errors import QueryError


class TestTerms:
    def test_variable_rendering(self):
        assert str(Variable("X")) == "X"

    def test_constant_rendering(self):
        assert str(Constant("abc")) == "'abc'"
        assert str(Constant(7)) == "7"

    def test_terms_are_hashable(self):
        assert len({Variable("X"), Variable("X"), Constant(1)}) == 2


class TestAtom:
    def test_basic_atom(self):
        atom = Atom("b", [Variable("X"), Constant(3)])
        assert atom.arity == 2
        assert atom.relation == "b"

    def test_variables_in_order_without_duplicates(self):
        atom = Atom("b", [Variable("X"), Variable("Y"), Variable("X")])
        assert atom.variables == (Variable("X"), Variable("Y"))

    def test_empty_relation_name_rejected(self):
        with pytest.raises(QueryError):
            Atom("", [Variable("X")])

    def test_non_term_rejected(self):
        with pytest.raises(QueryError):
            Atom("b", ["not-a-term"])

    def test_str(self):
        assert str(Atom("b", [Variable("X"), Constant(1)])) == "b(X, 1)"


class TestComparison:
    def test_equality_operators(self):
        assert Comparison("=", Variable("X"), Variable("Y")).evaluate(1, 1)
        assert Comparison("!=", Variable("X"), Variable("Y")).evaluate(1, 2)

    def test_order_operators(self):
        assert Comparison("<", Variable("X"), Constant(3)).evaluate(1, 3)
        assert Comparison(">=", Variable("X"), Constant(3)).evaluate(3, 3)
        assert not Comparison(">", Variable("X"), Constant(3)).evaluate(1, 3)

    def test_incomparable_types_are_false_not_error(self):
        assert Comparison("<", Variable("X"), Variable("Y")).evaluate("a", 1) is False

    def test_unsupported_operator_rejected(self):
        with pytest.raises(QueryError):
            Comparison("~", Variable("X"), Variable("Y"))

    def test_variables_listed(self):
        comparison = Comparison("!=", Variable("X"), Constant(1))
        assert comparison.variables == (Variable("X"),)


class TestConjunctiveQuery:
    def _query(self):
        head = Atom("a", [Variable("X"), Variable("Z")])
        body = [
            Atom("b", [Variable("X"), Variable("Y")]),
            Atom("c", [Variable("Y"), Constant(1)]),
        ]
        return ConjunctiveQuery(
            head, body, [Comparison("!=", Variable("X"), Variable("Y"))]
        )

    def test_body_variables_in_first_occurrence_order(self):
        assert self._query().body_variables == (Variable("X"), Variable("Y"))

    def test_distinguished_and_existential_variables(self):
        query = self._query()
        assert query.distinguished_variables == (Variable("X"),)
        assert query.existential_variables == (Variable("Z"),)

    def test_relations_without_duplicates(self):
        assert self._query().relations == ("b", "c")

    def test_head_may_be_none(self):
        query = ConjunctiveQuery(None, [Atom("b", [Variable("X")])])
        assert query.head_variables == ()
        assert query.distinguished_variables == ()

    def test_empty_body_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery(Atom("a", [Variable("X")]), [])

    def test_comparison_over_unbound_variable_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery(
                None,
                [Atom("b", [Variable("X")])],
                [Comparison("=", Variable("Z"), Constant(1))],
            )

    def test_str_contains_head_and_body(self):
        rendered = str(self._query())
        assert "a(X, Z)" in rendered and "b(X, Y)" in rendered
