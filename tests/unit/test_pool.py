"""Unit coverage of the persistent worker pool: deltas, wiring, lifecycle.

The pure pieces — :func:`~repro.sharding.pool.compute_sync_delta`, the
fingerprint and the re-plan decision — are tested without any processes; the
lifecycle tests (spawn / crash / recover / close) use the smallest systems
that exercise a real pool.
"""

import pytest

from repro.api import ScenarioSpec, Session
from repro.api.engine import engine_for
from repro.core.system import P2PSystem
from repro.coordination.rule import rule_from_text
from repro.database.schema import RelationSchema
from repro.errors import NetworkError, ReproError
from repro.sharding.planner import ShardPlan, ShardPlanner
from repro.sharding.pool import (
    PooledEngine,
    PooledTransport,
    compute_sync_delta,
    rules_fingerprint,
)
from repro.workloads.topologies import tree_topology

RULE = "r1: b: item(X, Y) -> a: item(X, Y)"


def small_system(transport="sync", **kwargs):
    return P2PSystem.build(
        {
            "a": [RelationSchema("item", ["x", "y"])],
            "b": [RelationSchema("item", ["x", "y"])],
            "c": [RelationSchema("item", ["x", "y"])],
        },
        [rule_from_text("r1", "b: item(X, Y) -> a: item(X, Y)")],
        {"b": {"item": [("1", "2")]}},
        transport=transport,
        **kwargs,
    )


def mirror_of(system):
    """The (rules, facts) mirror a freshly-spawned pool would hold."""
    return rules_fingerprint(system), {
        node_id: dict(node.database.facts())
        for node_id, node in system.nodes.items()
    }


class TestComputeSyncDelta:
    def test_unchanged_system_yields_empty_delta(self):
        system = small_system()
        rules, facts = mirror_of(system)
        assert compute_sync_delta(system, rules, facts).empty

    def test_inserted_rows_ship_as_insert_deltas_only(self):
        system = small_system()
        rules, facts = mirror_of(system)
        system.load_data({"b": {"item": [("3", "4")]}})
        delta = compute_sync_delta(system, rules, facts)
        assert delta.inserts == {"b": {"item": (("3", "4"),)}}
        assert not delta.replaces and not delta.add_rules and not delta.remove_rules

    def test_removed_rows_ship_as_a_wholesale_replace(self):
        system = small_system()
        rules, facts = mirror_of(system)
        system.node("b").database.relation("item").clear()
        delta = compute_sync_delta(system, rules, facts)
        assert "b" in delta.replaces
        schema, rows = delta.replaces["b"]["item"]
        assert schema.name == "item" and rows == ()

    def test_new_relation_ships_replace_with_its_schema(self):
        system = small_system()
        rules, facts = mirror_of(system)
        system.node("c").database.add_relation(RelationSchema("extra", ["k"]))
        system.node("c").database.relation("extra").insert(("v",))
        delta = compute_sync_delta(system, rules, facts)
        schema, rows = delta.replaces["c"]["extra"]
        assert schema.name == "extra" and rows == (("v",),)

    def test_added_and_removed_rules_are_detected(self):
        system = small_system()
        rules, facts = mirror_of(system)
        system.remove_rule("r1")
        system.add_rule(rule_from_text("r2", "c: item(X, Y) -> a: item(X, Y)"))
        delta = compute_sync_delta(system, rules, facts)
        assert delta.remove_rules == ("r1",)
        assert [rule.rule_id for rule in delta.add_rules] == ["r2"]

    def test_changed_rule_body_reads_as_remove_plus_add(self):
        system = small_system()
        rules, facts = mirror_of(system)
        system.remove_rule("r1")
        system.add_rule(rule_from_text("r1", "c: item(X, Y) -> a: item(X, Y)"))
        delta = compute_sync_delta(system, rules, facts)
        assert delta.remove_rules == ("r1",)
        assert [rule.rule_id for rule in delta.add_rules] == ["r1"]

    def test_for_shard_slices_data_by_ownership_and_keeps_rules_global(self):
        system = small_system()
        rules, facts = mirror_of(system)
        system.load_data({"b": {"item": [("5", "6")]}, "c": {"item": [("7", "8")]}})
        system.add_rule(rule_from_text("r3", "c: item(X, Y) -> b: item(X, Y)"))
        delta = compute_sync_delta(system, rules, facts)
        plan = ShardPlan(shard_count=2, shard_of={"a": 0, "b": 0, "c": 1})
        shard0 = delta.for_shard(plan, 0)
        shard1 = delta.for_shard(plan, 1)
        assert set(shard0["inserts"]) == {"b"}
        assert set(shard1["inserts"]) == {"c"}
        assert shard0["add_rules"] == shard1["add_rules"] == delta.add_rules


class TestWiring:
    def test_build_pooled_transport_by_kind(self):
        system = small_system(transport="pooled", shards=2)
        assert isinstance(system.transport, PooledTransport)
        assert isinstance(engine_for(system.transport), PooledEngine)

    def test_multiproc_with_pool_flag_builds_pooled_transport(self):
        system = small_system(transport="multiproc", shards=2, pool=True)
        assert isinstance(system.transport, PooledTransport)

    def test_multiproc_without_pool_flag_stays_cold(self):
        from repro.sharding.multiproc import MultiprocEngine

        system = small_system(transport="multiproc", shards=2)
        assert not isinstance(system.transport, PooledTransport)
        engine = engine_for(system.transport)
        assert type(engine) is MultiprocEngine

    def test_spec_pool_flag_round_trips_and_builds_pooled(self):
        spec = ScenarioSpec.of(
            {
                "a": RelationSchema("item", ["x", "y"]),
                "b": RelationSchema("item", ["x", "y"]),
            },
            [RULE],
            transport="multiproc",
            shards=2,
            pool=True,
        )
        loaded = ScenarioSpec.load_json(spec.dump_json())
        assert loaded.pool is True
        assert isinstance(loaded.build_system().transport, PooledTransport)

    def test_spec_rejects_pool_on_unpartitioned_transports(self):
        spec = ScenarioSpec.of(
            {"a": RelationSchema("item", ["x", "y"])}, pool=True
        )
        with pytest.raises(ReproError, match="pool=True needs the multiproc"):
            spec.build_system()

    def test_network_builder_pooled_shorthand(self):
        from repro.api.spec import NetworkBuilder

        spec = (
            NetworkBuilder("pooled-demo")
            .node("a", RelationSchema("item", ["x", "y"]))
            .node("b", RelationSchema("item", ["x", "y"]))
            .rule(RULE)
            .pooled(shards=2)
            .build()
        )
        assert spec.transport == "pooled"
        assert spec.shards == 2

    def test_session_close_is_a_noop_for_engines_without_pools(self):
        session = Session.from_spec(
            ScenarioSpec.of({"a": RelationSchema("item", ["x", "y"])})
        )
        session.close()  # must not raise


class TestPoolLifecycle:
    def _pooled_session(self, shards=2):
        spec = ScenarioSpec.from_topology(
            tree_topology(1, 2), records_per_node=2, seed=0
        ).with_(transport="pooled", shards=shards)
        return Session.from_spec(spec, capture_deltas=False)

    def test_close_stops_the_workers_and_is_idempotent(self):
        session = self._pooled_session()
        session.run("update")
        pool = session.engine.pool
        assert pool.alive
        session.close()
        session.close()
        assert pool.closed
        assert not pool.alive
        assert session.engine.pool is None

    def test_context_manager_form_closes_on_exit(self):
        with self._pooled_session() as session:
            session.run("update")
            pool = session.engine.pool
        assert pool.closed

    def test_closed_session_respawns_on_the_next_run(self):
        with self._pooled_session() as session:
            first = session.run("update")
            session.close()
            second = session.run("update")  # cold again, but transparent
            assert second.engine == "pooled"
            assert second.completion_time >= first.completion_time

    def test_crash_detected_mid_run_raises_instead_of_hanging(self):
        with self._pooled_session() as session:
            session.run("update")
            pool = session.engine.pool
            victim = pool._workers[0]
            victim.terminate()
            victim.join(timeout=5.0)
            with pytest.raises((NetworkError, ReproError)):
                # Driving the pool directly (as a mid-run crash would be
                # seen) must surface a repro error, never a 120 s stall.
                pool.run_phase("update", sorted(session.system.nodes))
            assert pool.closed

    def test_crash_between_runs_respawns_transparently(self):
        with self._pooled_session() as session:
            first = session.run("update")
            pool = session.engine.pool
            pids = pool.worker_pids
            for victim in pool._workers:
                victim.terminate()
                victim.join(timeout=5.0)
            recovered = session.run("update")
            assert recovered.engine == "pooled"
            assert session.engine.pool is not pool
            assert session.engine.pool.worker_pids != pids
            assert session.engine.pool.alive
            assert recovered.completion_time >= first.completion_time

    def test_run_phase_on_a_closed_pool_raises(self):
        session = self._pooled_session()
        session.run("update")
        pool = session.engine.pool
        session.close()
        with pytest.raises(ReproError, match="closed"):
            pool.run_phase("update", ("n000",))


class TestReplanInvalidation:
    def _warm_session(self):
        spec = ScenarioSpec.of(
            {
                "a": RelationSchema("item", ["x", "y"]),
                "b": RelationSchema("item", ["x", "y"]),
                "c": RelationSchema("item", ["x", "y"]),
                "d": RelationSchema("item", ["x", "y"]),
            },
            [RULE],
            {"b": {"item": [("1", "2")]}},
            transport="pooled",
            shards=2,
        )
        session = Session.from_spec(spec, capture_deltas=False)
        session.run("update")
        return session

    def test_unchanged_rules_never_replan(self):
        with self._warm_session() as session:
            pool = session.engine.pool
            assert pool.plan_if_stale(session.system, ShardPlanner(2)) is None

    def test_rule_change_keeping_the_partition_ships_a_delta(self):
        with self._warm_session() as session:
            pool = session.engine.pool
            pids = pool.worker_pids
            plan = pool.plan
            # A planner pinned to the current assignment: the partition
            # cannot move, so the rule change must ride a warm delta.
            class PinnedPlanner(ShardPlanner):
                def plan_system(self, system):
                    return plan

            session.engine.planner = PinnedPlanner(2)
            session.system.add_rule(
                rule_from_text("r9", "c: item(X, Y) -> a: item(X, Y)")
            )
            session.run("update")
            assert session.engine.pool is pool
            assert pool.worker_pids == pids

    def test_rule_change_moving_the_partition_restarts_the_pool(self):
        with self._warm_session() as session:
            pool = session.engine.pool
            current = dict(pool.plan.shard_of)
            flipped = ShardPlan(
                shard_count=pool.plan.shard_count,
                shard_of={
                    node: (shard + 1) % pool.plan.shard_count
                    for node, shard in current.items()
                },
            )

            class MovingPlanner(ShardPlanner):
                def plan_system(self, system):
                    return flipped

            session.engine.planner = MovingPlanner(2)
            session.system.add_rule(
                rule_from_text("r9", "c: item(X, Y) -> a: item(X, Y)")
            )
            result = session.run("update")
            assert result.engine == "pooled"
            new_pool = session.engine.pool
            assert new_pool is not pool
            assert pool.closed
            assert dict(new_pool.plan.shard_of) == dict(flipped.shard_of)
