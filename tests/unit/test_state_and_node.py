"""Unit tests for NodeState and PeerNode plumbing."""

import pytest

from repro.coordination.rule import rule_from_text
from repro.core.node import PeerNode
from repro.core.state import (
    DiscoveryState,
    NodeState,
    OwnerEntry,
    PathFlags,
    UpdateState,
)
from repro.database.database import LocalDatabase
from repro.database.parser import parse_query
from repro.database.schema import DatabaseSchema, RelationSchema
from repro.errors import ProtocolError, RuleError
from repro.network.message import Message, MessageType
from repro.network.transport import SyncTransport


def make_node(node_id="a", propagation="once"):
    transport = SyncTransport()
    database = LocalDatabase(DatabaseSchema([RelationSchema("item", ["x", "y"])]))
    return PeerNode(node_id, database, transport, propagation=propagation), transport


class TestNodeState:
    def test_initial_values(self):
        state = NodeState()
        assert state.state_d == DiscoveryState.UNDEFINED
        assert state.state_u == UpdateState.OPEN
        assert not state.finished
        assert state.maximal_paths() == []

    def test_owner_lookup_helpers(self):
        state = NodeState()
        state.discovery_owner.append(OwnerEntry(requester="b", origin="c"))
        state.update_owner.append(OwnerEntry(requester="b", origin="c", rule_id="r"))
        assert state.has_discovery_owner("b", "c")
        assert not state.has_discovery_owner("b", "x")
        assert state.has_update_owner("b", "r")
        assert not state.has_update_owner("b", "other")

    def test_reset_discovery(self):
        state = NodeState()
        state.state_d = DiscoveryState.CLOSED
        state.edges.add(("a", "b"))
        state.paths[("a",)] = PathFlags()
        state.reset_discovery()
        assert state.state_d == DiscoveryState.UNDEFINED
        assert state.edges == set()
        assert state.paths == {}

    def test_reset_update(self):
        state = NodeState()
        state.state_u = UpdateState.CLOSED
        state.fragments[("r", "b")] = frozenset({(1,)})
        state.pending_answers.add(("r", "b"))
        state.pushed_fragments[("r", "b")] = frozenset()
        state.reset_update()
        assert state.state_u == UpdateState.OPEN
        assert state.fragments == {}
        assert state.pending_answers == set()
        assert state.pushed_fragments == {}


class TestPeerNode:
    def test_registration_with_transport(self):
        node, transport = make_node()
        assert transport.is_registered("a")

    def test_invalid_propagation_policy(self):
        transport = SyncTransport()
        database = LocalDatabase(DatabaseSchema([RelationSchema("item", ["x", "y"])]))
        with pytest.raises(ValueError):
            PeerNode("a", database, transport, propagation="sometimes")

    def test_add_incoming_rule_validates_target(self):
        node, _ = make_node("a")
        rule = rule_from_text("r", "b: item(X, Y) -> a: item(X, Y)")
        node.add_incoming_rule(rule)
        assert "r" in node.incoming_rules
        wrong = rule_from_text("w", "a: item(X, Y) -> c: item(X, Y)")
        with pytest.raises(RuleError):
            node.add_incoming_rule(wrong)

    def test_add_outgoing_rule_validates_source(self):
        node, _ = make_node("a")
        rule = rule_from_text("r", "a: item(X, Y) -> b: item(X, Y)")
        node.add_outgoing_rule(rule)
        assert "r" in node.outgoing_rules
        wrong = rule_from_text("w", "b: item(X, Y) -> c: item(X, Y)")
        with pytest.raises(RuleError):
            node.add_outgoing_rule(wrong)

    def test_remove_rules(self):
        node, _ = make_node("a")
        incoming = rule_from_text("in", "b: item(X, Y) -> a: item(X, Y)")
        outgoing = rule_from_text("out", "a: item(X, Y) -> b: item(X, Y)")
        node.add_incoming_rule(incoming)
        node.add_outgoing_rule(outgoing)
        node.remove_incoming_rule("in")
        node.remove_outgoing_rule("out")
        assert node.incoming_rules == {}
        assert node.outgoing_rules == {}

    def test_unknown_message_type_raises(self):
        node, _ = make_node("a")
        message = Message("x", "a", MessageType.STATS_REQUEST, {})
        with pytest.raises(ProtocolError):
            node.handle(message)

    def test_local_query(self):
        node, _ = make_node("a")
        node.database.insert("item", ("1", "2"))
        assert node.local_query(parse_query("q(X) :- item(X, Y)")) == {("1",)}

    def test_reset_message_clears_state_and_optionally_data(self):
        node, _ = make_node("a")
        node.database.insert("item", ("1", "2"))
        node.state.state_u = UpdateState.CLOSED
        node.handle(Message("x", "a", MessageType.RESET, {}))
        assert node.state.state_u == UpdateState.OPEN
        assert node.database.total_rows() == 1
        node.handle(Message("x", "a", MessageType.RESET, {"clear_data": True}))
        assert node.database.total_rows() == 0

    def test_is_update_closed_reflects_state(self):
        node, _ = make_node("a")
        assert not node.is_update_closed
        node.state.state_u = UpdateState.CLOSED
        assert node.is_update_closed

    def test_repr_mentions_id_and_counts(self):
        node, _ = make_node("a")
        assert "a" in repr(node)
