"""Unit tests for the synchronous (discrete-event) and asyncio transports."""

import asyncio

import pytest

from repro.errors import NetworkError, UnknownPeerError
from repro.network.latency import ConstantLatency, PerHopLatency
from repro.network.message import Message, MessageType
from repro.network.transport import AsyncTransport, SyncTransport


def make_message(sender, recipient, payload=None):
    return Message(sender, recipient, MessageType.QUERY, payload or {})


class TestSyncTransport:
    def test_delivery_invokes_handler(self):
        transport = SyncTransport()
        received = []
        transport.register("B", received.append)
        transport.register("A", lambda m: None)
        transport.send(make_message("A", "B"))
        transport.run()
        assert len(received) == 1

    def test_duplicate_registration_rejected(self):
        transport = SyncTransport()
        transport.register("A", lambda m: None)
        with pytest.raises(NetworkError):
            transport.register("A", lambda m: None)

    def test_send_to_unknown_peer(self):
        transport = SyncTransport()
        transport.register("A", lambda m: None)
        with pytest.raises(UnknownPeerError):
            transport.send(make_message("A", "B"))

    def test_clock_advances_by_latency(self):
        transport = SyncTransport(latency=ConstantLatency(2.0))
        transport.register("A", lambda m: None)
        transport.register("B", lambda m: None)
        transport.send(make_message("A", "B"))
        completion = transport.run()
        assert completion == 2.0

    def test_handlers_can_send_more_messages(self):
        transport = SyncTransport()
        log = []

        def relay(message):
            log.append(message.recipient)
            if message.recipient == "B":
                transport.send(make_message("B", "C"))

        for node in ("A", "B", "C"):
            transport.register(node, relay)
        transport.send(make_message("A", "B"))
        completion = transport.run()
        assert log == ["B", "C"]
        assert completion == 2.0

    def test_delivery_order_respects_latency(self):
        transport = SyncTransport(
            latency=PerHopLatency(base=1.0, overrides={("A", "B"): 5.0})
        )
        order = []
        transport.register("A", lambda m: None)
        transport.register("B", lambda m: order.append("slow"))
        transport.register("C", lambda m: order.append("fast"))
        transport.send(make_message("A", "B"))
        transport.send(make_message("A", "C"))
        transport.run()
        assert order == ["fast", "slow"]

    def test_step_delivers_one_message(self):
        transport = SyncTransport()
        seen = []
        transport.register("A", lambda m: None)
        transport.register("B", seen.append)
        transport.send(make_message("A", "B"))
        transport.send(make_message("A", "B"))
        transport.step()
        assert len(seen) == 1
        assert transport.pending == 1

    def test_step_when_quiescent_returns_none(self):
        transport = SyncTransport()
        assert transport.step() is None

    def test_message_to_departed_peer_is_dropped(self):
        transport = SyncTransport()
        transport.register("A", lambda m: None)
        transport.register("B", lambda m: None)
        transport.send(make_message("A", "B"))
        transport.unregister("B")
        completion = transport.run()  # must not raise
        assert completion >= 0

    def test_runaway_protocol_detected(self):
        transport = SyncTransport(max_messages=10)

        def ping_pong(message):
            transport.send(
                make_message(
                    message.recipient, "A" if message.recipient == "B" else "B"
                )
            )

        transport.register("A", ping_pong)
        transport.register("B", ping_pong)
        transport.send(make_message("A", "B"))
        with pytest.raises(NetworkError):
            transport.run()

    def test_stats_record_messages(self):
        transport = SyncTransport()
        transport.register("A", lambda m: None)
        transport.register("B", lambda m: None)
        transport.send(make_message("A", "B"))
        transport.run()
        snapshot = transport.stats.snapshot()
        assert snapshot.total_messages == 1
        assert snapshot.messages.by_type["query"] == 1

    def test_trace_disabled_by_default(self):
        transport = SyncTransport()
        transport.register("A", lambda m: None)
        transport.register("B", lambda m: None)
        transport.send(make_message("A", "B"))
        transport.run()
        assert transport.trace == []

    def test_trace_records_deliveries_when_enabled(self):
        transport = SyncTransport()
        transport.enable_trace()
        transport.register("A", lambda m: None)
        transport.register("B", lambda m: None)
        transport.send(make_message("A", "B"))
        transport.run()
        assert len(transport.trace) == 1
        at_time, message = transport.trace[0]
        assert message.recipient == "B"
        assert at_time == 1.0


class TestAsyncTransport:
    def test_async_delivery_and_quiescence(self):
        async def scenario():
            transport = AsyncTransport(time_scale=0.0001)
            received = []
            transport.register("A", lambda m: None)
            transport.register("B", received.append)
            transport.send(make_message("A", "B"))
            await transport.wait_quiescent(timeout=5)
            return received

        received = asyncio.run(scenario())
        assert len(received) == 1

    def test_async_handler_chaining(self):
        async def scenario():
            transport = AsyncTransport(time_scale=0.0001)
            log = []

            def relay(message):
                log.append(message.recipient)
                if message.recipient == "B":
                    transport.send(make_message("B", "C"))

            for node in ("A", "B", "C"):
                transport.register(node, relay)
            transport.send(make_message("A", "B"))
            await transport.wait_quiescent(timeout=5)
            return log

        assert asyncio.run(scenario()) == ["B", "C"]

    def test_async_send_to_unknown_peer(self):
        async def scenario():
            transport = AsyncTransport()
            transport.register("A", lambda m: None)
            with pytest.raises(UnknownPeerError):
                transport.send(make_message("A", "B"))

        asyncio.run(scenario())

    def test_async_pending_counter(self):
        async def scenario():
            transport = AsyncTransport(time_scale=0.0001)
            transport.register("A", lambda m: None)
            transport.register("B", lambda m: None)
            transport.send(make_message("A", "B"))
            pending_before = transport.pending
            await transport.wait_quiescent(timeout=5)
            return pending_before, transport.pending

        before, after = asyncio.run(scenario())
        assert before == 1
        assert after == 0
