"""Unit tests for the textual atom / query / rule parser."""

import pytest

from repro.database.parser import (
    parse_atom,
    parse_prefixed_atom,
    parse_query,
    parse_rule_text,
)
from repro.database.query import Constant, Variable
from repro.errors import QueryError


class TestParseAtom:
    def test_variables_and_constants(self):
        atom = parse_atom("b(X, 'smith', 3, lowercase)")
        assert atom.relation == "b"
        assert atom.terms == (
            Variable("X"),
            Constant("smith"),
            Constant(3),
            Constant("lowercase"),
        )

    def test_negative_integer(self):
        atom = parse_atom("t(-5)")
        assert atom.terms == (Constant(-5),)

    def test_zero_arity(self):
        assert parse_atom("flag()").arity == 0

    def test_node_prefix(self):
        node, atom = parse_prefixed_atom("B: b(X, Y)")
        assert node == "B"
        assert atom.relation == "b"

    def test_no_prefix(self):
        node, atom = parse_prefixed_atom("b(X)")
        assert node is None

    def test_malformed_atom(self):
        with pytest.raises(QueryError):
            parse_atom("no parentheses")

    def test_bad_term(self):
        with pytest.raises(QueryError):
            parse_atom("b(X, ??)")


class TestParseQuery:
    def test_head_and_body(self):
        query = parse_query("a(X, Z) :- b(X, Y), c(Y, Z)")
        assert query.head.relation == "a"
        assert [atom.relation for atom in query.body] == ["b", "c"]

    def test_comparisons_extracted(self):
        query = parse_query("a(X) :- b(X, Y), X != Y, Y >= 3")
        assert len(query.comparisons) == 2
        operators = {comparison.operator for comparison in query.comparisons}
        assert operators == {"!=", ">="}

    def test_body_only_query(self):
        query = parse_query("b(X, Y), c(Y, Z)")
        assert query.head is None

    def test_nested_commas_inside_parentheses(self):
        query = parse_query("q(X) :- b(X, 'a, b')")
        assert query.body[0].terms[1] == Constant("a, b")

    def test_no_body_atoms_rejected(self):
        with pytest.raises(QueryError):
            parse_query("q(X) :- X != Y")

    def test_unbalanced_parentheses_rejected(self):
        with pytest.raises(QueryError):
            parse_query("q(X) :- b(X, (Y)")


class TestParseRuleText:
    def test_single_source_rule(self):
        head_node, head, body, comparisons = parse_rule_text(
            "E: e(X, Y) -> B: b(X, Y)"
        )
        assert head_node == "B"
        assert head.relation == "b"
        assert body == [("E", body[0][1])]
        assert comparisons == []

    def test_body_prefix_inheritance(self):
        _, _, body, _ = parse_rule_text("B: b(X, Y), b(Y, Z) -> C: c(X, Z)")
        assert [node for node, _atom in body] == ["B", "B"]

    def test_multi_source_rule(self):
        _, _, body, _ = parse_rule_text("B: b(X, Y), D: d(Y, Z) -> C: c(X, Z)")
        assert [node for node, _atom in body] == ["B", "D"]

    def test_comparison_in_rule(self):
        _, _, _, comparisons = parse_rule_text(
            "B: b(X, Y), b(X, Z), X != Z -> A: a(X, Y)"
        )
        assert len(comparisons) == 1

    def test_double_arrow_accepted(self):
        head_node, _, _, _ = parse_rule_text("E: e(X) => B: b(X)")
        assert head_node == "B"

    def test_missing_arrow_rejected(self):
        with pytest.raises(QueryError):
            parse_rule_text("E: e(X), B: b(X)")

    def test_unqualified_head_rejected(self):
        with pytest.raises(QueryError):
            parse_rule_text("E: e(X) -> b(X)")

    def test_unqualified_first_body_atom_rejected(self):
        with pytest.raises(QueryError):
            parse_rule_text("e(X) -> B: b(X)")

    def test_empty_body_rejected(self):
        with pytest.raises(QueryError):
            parse_rule_text(" -> B: b(X)")
