"""Unit tests for the sharding subsystem: planner, transport, engine."""

import asyncio

import pytest

from repro.api.engine import engine_for
from repro.core.system import P2PSystem
from repro.errors import NetworkError, ReproError, UnknownPeerError
from repro.network.message import Message, MessageType
from repro.sharding import (
    ShardPlan,
    ShardPlanner,
    ShardedEngine,
    ShardedTransport,
    round_robin_plan,
)
from repro.workloads.topologies import (
    chain_topology,
    clique_topology,
    tree_topology,
)


# ------------------------------------------------------------------- planner


class TestShardPlanner:
    def test_plan_covers_every_node_exactly_once(self):
        spec = tree_topology(3, 2)
        plan = ShardPlanner(4).plan_topology(spec)
        assert sorted(plan.shard_of) == sorted(spec.nodes)
        assert sum(plan.shard_sizes) == spec.node_count

    def test_shards_are_balanced(self):
        spec = tree_topology(3, 2)  # 15 nodes
        plan = ShardPlanner(4).plan_topology(spec)
        assert max(plan.shard_sizes) <= -(-spec.node_count // 4)  # ceil(15/4) = 4
        assert min(plan.shard_sizes) >= 1

    def test_chain_cut_is_near_optimal(self):
        # A 16-node chain split in two has an optimal cut of exactly 1 edge;
        # the greedy planner must land at (or very near) that, and far below
        # the locality-blind round-robin baseline (which cuts every edge).
        spec = chain_topology(16)
        plan = ShardPlanner(2).plan_topology(spec)
        baseline = round_robin_plan(spec.nodes, 2)
        assert len(plan.cut_edges()) <= 2
        assert len(plan.cut_edges()) < len(baseline.cut_edges(spec.edges))

    def test_tree_cut_beats_round_robin(self):
        spec = tree_topology(4, 2)  # 31 nodes
        plan = ShardPlanner(4).plan_topology(spec)
        baseline = round_robin_plan(spec.nodes, 4)
        assert plan.cut_fraction() < baseline.cut_fraction(spec.edges)

    def test_single_shard_has_no_cut(self):
        spec = clique_topology(5)
        plan = ShardPlanner(1).plan_topology(spec)
        assert plan.cut_edges() == ()
        assert plan.cut_fraction() == 0.0

    def test_more_shards_than_nodes_is_clamped(self):
        spec = chain_topology(3)
        plan = ShardPlanner(8).plan_topology(spec)
        assert plan.shard_count == 3
        assert sorted(plan.shard_of.values()) == [0, 1, 2]

    def test_plan_is_deterministic(self):
        spec = tree_topology(4, 2)
        first = ShardPlanner(3).plan_topology(spec)
        second = ShardPlanner(3).plan_topology(spec)
        assert first.shard_of == second.shard_of

    def test_plan_rules_uses_dependency_edges(self, paper_rules):
        plan = ShardPlanner(2).plan_rules(paper_rules)
        assert sorted(plan.shard_of) == ["A", "B", "C", "D", "E"]

    def test_unknown_node_raises(self):
        plan = ShardPlan(shard_count=1, shard_of={"a": 0})
        with pytest.raises(ReproError):
            plan.shard("zz")

    def test_invalid_assignment_raises(self):
        with pytest.raises(ReproError):
            ShardPlan(shard_count=2, shard_of={"a": 5})

    def test_empty_network_raises(self):
        with pytest.raises(ReproError):
            ShardPlanner(2).plan([], [])

    def test_bad_shard_count_raises(self):
        with pytest.raises(ReproError):
            ShardPlanner(0)


class TestShardPlannerEdgeCases:
    """The planner's corner inputs: degenerate graphs and input orderings."""

    def test_single_node_graph(self):
        plan = ShardPlanner(4).plan(["only"], [])
        assert plan.shard_count == 1
        assert plan.shard_of == {"only": 0}
        assert plan.cut_edges() == ()

    def test_shards_exceed_nodes_with_edges(self):
        # 2 connected nodes, 16 requested shards: the plan opens exactly 2
        # and still separates or co-locates without out-of-range shards.
        plan = ShardPlanner(16).plan(["a", "b"], [("a", "b")])
        assert plan.shard_count == 2
        assert set(plan.shard_of) == {"a", "b"}
        assert all(0 <= shard < 2 for shard in plan.shard_of.values())

    def test_empty_rule_graph_spreads_nodes_evenly(self):
        # No edges at all (a rule-less network): nothing to cut, so the only
        # job left is balance — nodes spread across shards instead of piling
        # into shard 0.
        nodes = [f"n{i}" for i in range(8)]
        plan = ShardPlanner(4).plan(nodes, [])
        assert plan.shard_sizes == (2, 2, 2, 2)
        assert plan.cut_edges() == ()

    def test_empty_rule_set_via_plan_rules(self):
        plan = ShardPlanner(2).plan_rules([], nodes=["a", "b", "c"])
        assert sorted(plan.shard_of) == ["a", "b", "c"]
        assert plan.cut_edges() == ()

    def test_greedy_partition_ignores_input_ordering(self):
        # Determinism across runs must not depend on the order nodes and
        # edges arrive in: the planner sorts internally, so shuffled input
        # yields the identical assignment.
        spec = tree_topology(3, 2)
        reference = ShardPlanner(3).plan(spec.nodes, spec.edges)
        shuffled_nodes = list(reversed(spec.nodes))
        shuffled_edges = list(reversed(spec.edges))
        again = ShardPlanner(3).plan(shuffled_nodes, shuffled_edges)
        assert again.shard_of == reference.shard_of

    def test_repeated_runs_are_identical(self):
        spec = clique_topology(6)
        plans = [ShardPlanner(3).plan_topology(spec) for _ in range(5)]
        assert all(plan.shard_of == plans[0].shard_of for plan in plans)

    def test_self_loops_and_unknown_endpoints_are_ignored(self):
        plan = ShardPlanner(2).plan(
            ["a", "b"], [("a", "a"), ("a", "ghost"), ("a", "b")]
        )
        assert set(plan.shard_of) == {"a", "b"}


# ----------------------------------------------------------------- transport


def _two_peer_transport(shards=2):
    """A 2-shard transport with peers 'a' (shard 0) and 'b' (shard 1)."""
    transport = ShardedTransport(shard_count=shards)
    received = {"a": [], "b": []}
    transport.register("a", lambda message: received["a"].append(message))
    transport.register("b", lambda message: received["b"].append(message))
    transport.apply_plan(ShardPlan(shard_count=shards, shard_of={"a": 0, "b": 1}))
    return transport, received


class TestShardedTransport:
    def test_send_requires_plan(self):
        transport = ShardedTransport(shard_count=2)
        transport.register("a", lambda message: None)
        with pytest.raises(NetworkError):
            transport.send(Message("x", "a", MessageType.QUERY))

    def test_send_to_unregistered_peer_raises(self):
        transport, _ = _two_peer_transport()
        with pytest.raises(UnknownPeerError):
            transport.send(Message("a", "zz", MessageType.QUERY))

    def test_plan_must_cover_registered_peers(self):
        transport = ShardedTransport(shard_count=2)
        transport.register("a", lambda message: None)
        transport.register("b", lambda message: None)
        with pytest.raises(NetworkError):
            transport.apply_plan(ShardPlan(shard_count=2, shard_of={"a": 0}))

    def test_plan_with_too_many_shards_raises(self):
        transport = ShardedTransport(shard_count=2)
        with pytest.raises(NetworkError):
            transport.apply_plan(
                ShardPlan(shard_count=3, shard_of={"a": 0, "b": 1, "c": 2})
            )

    def test_cross_shard_delivery_and_counters(self):
        transport, received = _two_peer_transport()
        transport.send(Message("a", "b", MessageType.QUERY))
        transport.send(Message("b", "b", MessageType.QUERY))  # intra-shard
        asyncio.run(transport.run_until_quiescent())
        assert len(received["b"]) == 2
        assert transport.pending == 0
        assert transport.delivered_count == 2
        assert transport.cross_shard_messages == 1
        assert transport.intra_shard_messages == 1
        assert transport.shard_message_counts() == {0: 0, 1: 2}

    def test_quiescence_barrier_waits_for_handler_cascades(self):
        # Every delivery at 'b' triggers another cross-shard hop back to 'a'
        # until the counter runs out; the barrier must only release once the
        # whole cascade (crossing the cut both ways) has drained.
        transport = ShardedTransport(shard_count=2)
        hops = []

        def relay(name, other):
            def handler(message):
                hops.append(name)
                remaining = message.payload["remaining"]
                if remaining:
                    transport.send(
                        Message(
                            name,
                            other,
                            MessageType.QUERY,
                            {"remaining": remaining - 1},
                        )
                    )

            return handler

        transport.register("a", relay("a", "b"))
        transport.register("b", relay("b", "a"))
        transport.apply_plan(ShardPlan(shard_count=2, shard_of={"a": 0, "b": 1}))
        transport.send(Message("a", "b", MessageType.QUERY, {"remaining": 9}))
        asyncio.run(transport.run_until_quiescent())
        assert len(hops) == 10
        assert transport.pending == 0
        assert all(
            shard.idle and not shard.mailbox and not shard.queue
            for shard in transport.shards
        )

    def test_per_shard_clocks_advance_independently(self):
        transport, _ = _two_peer_transport()
        transport.send(Message("a", "b", MessageType.QUERY))
        asyncio.run(transport.run_until_quiescent())
        # Only shard 1 delivered anything; shard 0's clock stays at zero and
        # the completion time is the maximum across shards.
        clocks = [shard.clock for shard in transport.shards]
        assert clocks[0] == 0.0
        assert clocks[1] > 0.0
        assert transport.completion_time == max(clocks)

    def test_max_messages_bound_raises(self):
        transport = ShardedTransport(shard_count=2, max_messages=20)

        def ping(message):
            transport.send(Message("a", "b", MessageType.QUERY))

        def pong(message):
            transport.send(Message("b", "a", MessageType.QUERY))

        transport.register("a", ping)
        transport.register("b", pong)
        transport.apply_plan(ShardPlan(shard_count=2, shard_of={"a": 0, "b": 1}))
        transport.send(Message("a", "b", MessageType.QUERY))
        with pytest.raises(NetworkError):
            asyncio.run(transport.run_until_quiescent())

    def test_consecutive_runs_reuse_the_transport(self):
        # Each blocking run uses a fresh asyncio.run loop; events must rebind.
        transport, received = _two_peer_transport()
        transport.send(Message("a", "b", MessageType.QUERY))
        asyncio.run(transport.run_until_quiescent())
        transport.send(Message("b", "a", MessageType.QUERY))
        asyncio.run(transport.run_until_quiescent())
        assert len(received["a"]) == 1 and len(received["b"]) == 1

    def test_late_peer_is_assigned_to_least_loaded_shard(self):
        transport, _ = _two_peer_transport()
        transport.register("late", lambda message: None)
        shard = transport.shard_of("late")
        assert 0 <= shard < transport.shard_count

    def test_at_least_one_shard_required(self):
        with pytest.raises(NetworkError):
            ShardedTransport(shard_count=0)


# -------------------------------------------------------------------- engine


class TestShardedEngine:
    def test_engine_for_picks_sharded_engine(self):
        transport = ShardedTransport(shard_count=2)
        assert isinstance(engine_for(transport), ShardedEngine)

    def test_engine_rejects_other_transports(self, chain_system):
        with pytest.raises(ReproError):
            ShardedEngine().run(chain_system, "update")

    def test_system_build_knows_the_sharded_kind(self):
        system = P2PSystem.build(
            {"a": []}, transport="sharded", shards=3
        )
        assert isinstance(system.transport, ShardedTransport)
        assert system.transport.shard_count == 3

    def test_engine_plans_automatically_and_reports_traffic(self):
        from repro.api.session import Session
        from repro.coordination.rule import rule_from_text
        from repro.database.schema import DatabaseSchema, RelationSchema

        schemas = {
            name: DatabaseSchema([RelationSchema("item", ["x", "y"])])
            for name in ("a", "b", "c")
        }
        rules = [
            rule_from_text("ab", "b: item(X, Y) -> a: item(X, Y)"),
            rule_from_text("bc", "c: item(X, Y) -> b: item(X, Y)"),
        ]
        data = {"c": {"item": [("1", "2"), ("3", "4")]}}
        session = Session.build(
            schemas, rules, data, transport="sharded", shards=2, super_peer="a"
        )
        result = session.update()
        assert session.system.transport.plan is not None
        assert result.stats.sharding is not None
        assert result.stats.sharding.total_messages == result.stats.total_messages
        assert session.query("a", "q(X, Y) :- item(X, Y)") == {("1", "2"), ("3", "4")}
