"""Unit coverage of the socket layer: framing, hosts, pool lifecycle, wiring.

The wire protocol is tested byte by byte on socket pairs (partial reads,
oversized payloads, truncated frames, garbage pickles); host behaviour and
crash handling against in-process :class:`ShardHost` threads wherever a real
subprocess is not the point; and the auto-spawn / reconnect-and-respawn
story against real ``python -m repro.shardhost`` subprocesses.
"""

import socket
import struct
import threading

import pytest

from repro.api import ScenarioSpec, Session
from repro.api.engine import engine_for
from repro.api.spec import NetworkBuilder
from repro.core.system import P2PSystem
from repro.database.schema import RelationSchema
from repro.errors import NetworkError, ReproError
from repro.sharding.sockets import (
    ConnectionClosed,
    LocalHostCluster,
    PooledSocketEngine,
    PooledSocketTransport,
    ShardHost,
    SocketEngine,
    SocketTransport,
    _FrameWriter,
    parse_address,
    recv_frame,
)
from repro.workloads.topologies import tree_topology

RULE = "r1: b: item(X, Y) -> a: item(X, Y)"


@pytest.fixture()
def sock_pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestParseAddress:
    def test_host_and_port(self):
        assert parse_address("example.org:9101") == ("example.org", 9101)

    def test_missing_port_is_rejected(self):
        with pytest.raises(ReproError, match="expected 'HOST:PORT'"):
            parse_address("example.org")

    def test_non_numeric_port_is_rejected(self):
        with pytest.raises(ReproError, match="invalid port"):
            parse_address("example.org:http")


class TestFraming:
    def test_round_trip(self, sock_pair):
        left, right = sock_pair
        writer = _FrameWriter(left, max_frame=1 << 20)
        payload = ("msg", 3, {"rows": [("a", "b")] * 100})
        writer.send(payload)
        assert recv_frame(right, max_frame=1 << 20) == payload

    def test_partial_reads_are_reassembled(self, sock_pair):
        # The sender dribbles the frame one byte at a time: recv_frame must
        # keep reading until the advertised length is complete.
        left, right = sock_pair
        import pickle

        body = pickle.dumps(("status", 0, {"idle": True}))
        frame = struct.pack(">Q", len(body)) + body

        def dribble():
            for index in range(len(frame)):
                left.sendall(frame[index : index + 1])

        sender = threading.Thread(target=dribble)
        sender.start()
        try:
            assert recv_frame(right) == ("status", 0, {"idle": True})
        finally:
            sender.join()

    def test_connection_closed_mid_frame_is_an_error(self, sock_pair):
        left, right = sock_pair
        left.sendall(struct.pack(">Q", 100) + b"ten bytes!")
        left.close()
        with pytest.raises(NetworkError, match="mid-frame"):
            recv_frame(right)

    def test_close_right_after_the_header_is_still_mid_frame(self, sock_pair):
        # The header promised a payload; a close before any payload byte is
        # a truncated frame, not a clean frame-boundary disconnect.
        left, right = sock_pair
        left.sendall(struct.pack(">Q", 100))
        left.close()
        with pytest.raises(NetworkError, match="mid-frame") as excinfo:
            recv_frame(right)
        assert not isinstance(excinfo.value, ConnectionClosed)

    def test_clean_eof_at_frame_boundary_is_distinguishable(self, sock_pair):
        left, right = sock_pair
        left.close()
        with pytest.raises(ConnectionClosed):
            recv_frame(right)

    def test_oversized_incoming_frame_is_refused_before_allocation(
        self, sock_pair
    ):
        left, right = sock_pair
        # An absurd length header; the payload is never sent, and must never
        # be waited for — the bound check fails on the header alone.
        left.sendall(struct.pack(">Q", 1 << 62))
        with pytest.raises(NetworkError, match="exceeds the .*max_frame"):
            recv_frame(right, max_frame=1 << 20)

    def test_oversized_outgoing_frame_is_refused(self, sock_pair):
        left, _right = sock_pair
        writer = _FrameWriter(left, max_frame=64)
        with pytest.raises(NetworkError, match="exceeds the 64-byte"):
            writer.send("x" * 1000)

    def test_garbage_payload_is_a_network_error(self, sock_pair):
        left, right = sock_pair
        left.sendall(struct.pack(">Q", 4) + b"\xff\xff\xff\xff")
        with pytest.raises(NetworkError, match="unpickle"):
            recv_frame(right)


class TestShardHost:
    def test_unknown_frame_kind_gets_an_error_reply(self):
        with ShardHost().start() as host:
            with socket.create_connection(host.address, timeout=5.0) as conn:
                _FrameWriter(conn, host.max_frame).send(("frobnicate",))
                kind, shard, message = recv_frame(conn)
                assert kind == "error"
                assert "frobnicate" in message

    def test_ping_for_a_non_hosted_shard_gets_an_error_reply(self):
        with ShardHost().start() as host:
            with socket.create_connection(host.address, timeout=5.0) as conn:
                writer = _FrameWriter(conn, host.max_frame)
                writer.send(("worlds", 1, []))
                writer.send(("ping", 1, 0))
                kind, shard, _message = recv_frame(conn)
                assert (kind, shard) == ("error", 0)

    def test_malformed_host_frame_marks_the_link_dead(self):
        # A well-pickled frame of the wrong shape from a (version-skewed,
        # buggy) host must read as a protocol failure on the link — exitcode
        # names the malformed frame — not kill the reader thread bare.
        import pickle
        import queue
        import time

        from repro.sharding.sockets import _HostLink

        server = socket.create_server(("127.0.0.1", 0))
        port = server.getsockname()[1]

        def serve():
            conn, _peer = server.accept()
            payload = pickle.dumps(42)  # frame[0] on an int -> TypeError
            conn.sendall(struct.pack(">Q", len(payload)) + payload)
            conn.close()

        sender = threading.Thread(target=serve, daemon=True)
        sender.start()
        link = _HostLink(
            f"127.0.0.1:{port}", queue.Queue(), lambda *args: None, 1 << 20
        )
        try:
            sender.join(timeout=5.0)
            deadline = time.monotonic() + 5.0
            while link.alive and time.monotonic() < deadline:
                time.sleep(0.01)
            assert not link.alive
            assert "malformed frame" in (link.exitcode or "")
        finally:
            link.close()
            server.close()

    def test_error_reply_to_a_vanished_coordinator_keeps_the_host_alive(self):
        # A client that sends garbage and disconnects before the error reply
        # can land must not take the host process down with a failed write.
        with ShardHost().start() as host:
            conn = socket.create_connection(host.address, timeout=5.0)
            _FrameWriter(conn, host.max_frame).send(("frobnicate",))
            conn.close()
            with socket.create_connection(host.address, timeout=5.0) as conn2:
                _FrameWriter(conn2, host.max_frame).send(("bogus",))
                assert recv_frame(conn2)[0] == "error"

    def test_host_survives_coordinator_churn(self):
        # Two successive "coordinators" (bare connections) against one host:
        # the first drops, the host must accept and serve the second.
        with ShardHost().start() as host:
            for _round in range(2):
                with socket.create_connection(host.address, timeout=5.0) as conn:
                    _FrameWriter(conn, host.max_frame).send(("bogus",))
                    assert recv_frame(conn)[0] == "error"


class TestWiring:
    def test_build_socket_transport_by_kind(self):
        system = P2PSystem.build(
            {"a": [RelationSchema("item", ["x", "y"])]},
            transport="socket",
            hosts=["h1:9101", "h2:9102", "h3:9103"],
        )
        transport = system.transport
        assert isinstance(transport, SocketTransport)
        assert not isinstance(transport, PooledSocketTransport)
        assert transport.hosts == ("h1:9101", "h2:9102", "h3:9103")
        # One shard per host unless told otherwise.
        assert transport.shard_count == 3
        assert isinstance(engine_for(transport), SocketEngine)

    def test_pool_flag_selects_the_pooled_socket_engine(self):
        system = P2PSystem.build(
            {"a": [RelationSchema("item", ["x", "y"])]},
            transport="socket",
            pool=True,
            shards=2,
        )
        assert isinstance(system.transport, PooledSocketTransport)
        assert isinstance(engine_for(system.transport), PooledSocketEngine)

    def test_bad_host_address_fails_at_build_time(self):
        with pytest.raises(ReproError, match="expected 'HOST:PORT'"):
            P2PSystem.build(
                {"a": [RelationSchema("item", ["x", "y"])]},
                transport="socket",
                hosts=["no-port-here"],
            )

    def test_hosts_with_a_non_socket_transport_is_rejected(self):
        with pytest.raises(ReproError, match="needs transport='socket'"):
            P2PSystem.build(
                {"a": [RelationSchema("item", ["x", "y"])]},
                transport="multiproc",
                hosts=["h1:9101"],
            )

    def test_spec_hosts_with_a_non_socket_transport_is_rejected(self):
        spec = ScenarioSpec.of(
            {"a": RelationSchema("item", ["x", "y"])},
            transport="sync",
            hosts=("h1:9101",),
        )
        with pytest.raises(ReproError, match="needs transport='socket'"):
            spec.build_system()

    def test_spec_round_trips_hosts(self):
        spec = ScenarioSpec.of(
            {"a": RelationSchema("item", ["x", "y"])},
            transport="socket",
            hosts=("h1:9101", "h2:9102"),
            pool=True,
        )
        loaded = ScenarioSpec.load_json(spec.dump_json())
        assert loaded.transport == "socket"
        assert loaded.hosts == ("h1:9101", "h2:9102")
        assert loaded.pool is True

    def test_network_builder_socketed_shorthand(self):
        spec = (
            NetworkBuilder("socket-demo")
            .node("a", RelationSchema("item", ["x", "y"]))
            .node("b", RelationSchema("item", ["x", "y"]))
            .rule(RULE)
            .socketed(["h1:9101"], shards=2, pooled=True)
            .build()
        )
        assert spec.transport == "socket"
        assert spec.hosts == ("h1:9101",)
        assert spec.shards == 2
        assert spec.pool is True

    def test_socket_engine_rejects_foreign_transports(self):
        system = P2PSystem.build(
            {"a": [RelationSchema("item", ["x", "y"])]}, transport="multiproc"
        )
        with pytest.raises(ReproError, match="needs a SocketTransport"):
            SocketEngine().run(system, "update")

    def test_duplicate_host_addresses_are_rejected_at_build_time(self):
        # A host serves one coordinator connection at a time; a duplicate
        # entry would stall in its listen backlog until the worker timeout.
        with pytest.raises(NetworkError, match="duplicate"):
            SocketTransport(hosts=["h1:9101", "h2:9101", "h1:9101"])


class TestHostDeath:
    def _session(self, addresses):
        spec = ScenarioSpec.from_topology(
            tree_topology(1, 2), records_per_node=2, seed=0
        ).with_(transport="socket", shards=2, hosts=tuple(addresses), pool=True)
        return Session.from_spec(spec, capture_deltas=False)

    def test_host_death_mid_barrier_raises_instead_of_stalling(self):
        # An in-process host that dies while the pool is between runs: the
        # next run_phase must fail fast through the liveness checks (the
        # quiescence barrier's awaits), never stall out the 120 s timeout.
        hosts = [ShardHost().start(), ShardHost().start()]
        addresses = [f"127.0.0.1:{host.port}" for host in hosts]
        try:
            with self._session(addresses) as session:
                session.run("update")
                pool = session.engine.pool
                assert pool.alive
                hosts[1].close()  # kills the served connection mid-pool
                # Which await notices first is a race (a failed write, the
                # liveness check, or the reader's EOF) — any is fine as long
                # as it is a prompt NetworkError, not a 120 s stall.
                with pytest.raises(
                    NetworkError, match="shard|connection|socket write"
                ):
                    pool.run_phase("update", sorted(session.system.nodes))
                assert pool.closed
        finally:
            for host in hosts:
                host.close()

    def test_oversized_reply_surfaces_an_error_not_a_stall(self, monkeypatch):
        # A collected payload too big to frame must come back as a prompt
        # NetworkError naming the shard — never a silent 120 s stall.  The
        # host runs in-process (worker threads share this interpreter), so
        # bloating the worker payload helper makes the collect reply blow
        # the frame bound while every control frame still fits.
        import repro.sharding.pool as pool_module
        from repro.coordination.rule import rule_from_text
        from repro.sharding.multiproc import _worlds_from_system
        from repro.sharding.planner import ShardPlanner
        from repro.sharding.sockets import SocketPool

        original = pool_module._worker_payload

        def bloated(*args, **kwargs):
            payload = original(*args, **kwargs)
            payload["ballast"] = "x" * (1 << 20)
            return payload

        monkeypatch.setattr(pool_module, "_worker_payload", bloated)

        system = P2PSystem.build(
            {
                "a": [RelationSchema("item", ["x", "y"])],
                "b": [RelationSchema("item", ["x", "y"])],
            },
            [rule_from_text("r1", "b: item(X, Y) -> a: item(X, Y)")],
            {"b": {"item": [("1", "2")]}},
            transport="socket",
            shards=1,
        )
        plan = ShardPlanner(1).plan_system(system)
        worlds = _worlds_from_system(system, plan)
        max_frame = 256 * 1024  # worlds fit; the 1 MiB ballast cannot
        with ShardHost(max_frame=max_frame).start() as host:
            pool = SocketPool(
                plan, worlds, [f"127.0.0.1:{host.port}"], max_frame=max_frame
            )
            try:
                with pytest.raises(NetworkError, match="could not ship"):
                    pool.run_phase("update", sorted(system.nodes))
            finally:
                pool.close()

    def test_extra_hosts_beyond_the_shard_count_are_ignored(self):
        # Round-robin assignment never reaches hosts past the shard count:
        # they are not dialed, and an idle machine dying between warm runs
        # must not fail anything.
        hosts = [ShardHost().start() for _ in range(3)]
        addresses = [f"127.0.0.1:{host.port}" for host in hosts]
        try:
            with self._session(addresses) as session:
                session.run("update")
                pool = session.engine.pool
                assert pool.hosts == tuple(addresses[:2])
                hosts[2].close()  # the unused host going away is a non-event
                session.run("update")
                assert session.engine.pool.alive
        finally:
            for host in hosts:
                host.close()

    def test_run_against_a_dead_host_surfaces_a_connect_error(self):
        # Nothing listens on this port (bound, never accepting via listen
        # backlog 0 is racy — instead bind and close to free a dead port).
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        spec = ScenarioSpec.from_topology(
            tree_topology(1, 2), records_per_node=2, seed=0
        ).with_(transport="socket", shards=1, hosts=(f"127.0.0.1:{port}",))
        with Session.from_spec(spec, capture_deltas=False) as session:
            with pytest.raises(NetworkError, match="cannot connect"):
                session.run("update")


class TestLocalHostCluster:
    def test_reconnect_and_respawn_after_a_host_process_dies(self):
        # The full recovery story on real subprocesses: a run succeeds, a
        # host process is killed, the failed run surfaces a NetworkError,
        # and the *next* run transparently respawns the dead host and
        # reconnects — with the warm pool rebuilt from the live system.
        spec = ScenarioSpec.from_topology(
            tree_topology(1, 2), records_per_node=2, seed=0
        ).with_(transport="socket", shards=2, pool=True)
        with Session.from_spec(spec, capture_deltas=False) as session:
            first = session.run("update")
            cluster = session.engine.cluster
            assert cluster is not None and cluster.alive
            victim = cluster._processes[0]
            victim.terminate()
            victim.wait(timeout=5.0)
            assert not cluster.alive
            recovered = session.run("update")
            assert recovered.completion_time >= first.completion_time
            assert cluster.alive  # the dead host was respawned in place
            assert session.engine.pool is not None and session.engine.pool.alive
        # Leaving the session closes the cluster: no stray host processes.
        assert cluster.host_count == 0

    def test_close_terminates_every_host_process(self):
        cluster = LocalHostCluster(2)
        processes = list(cluster._processes)
        assert cluster.alive and len(cluster.addresses) == 2
        for address in cluster.addresses:
            parse_address(address)  # announced addresses must be dialable
        cluster.close()
        assert all(process.poll() is not None for process in processes)
        cluster.close()  # idempotent
