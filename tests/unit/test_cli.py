"""Unit tests for the command-line interface."""

import pytest

from repro.cli import _parse_hosts, _parse_sizes, build_parser, list_experiments, main
from repro.errors import ReproError


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_with_defaults(self):
        args = build_parser().parse_args(["run", "E1"])
        assert args.command == "run"
        assert args.experiment == "E1"
        assert args.records == 30

    def test_run_command_with_records(self):
        args = build_parser().parse_args(["run", "E4", "--records", "12"])
        assert args.records == 12

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E99"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_engine_and_shard_flags(self):
        args = build_parser().parse_args(
            ["run", "E3", "--engine", "sharded", "--shards", "8", "--sizes", "63"]
        )
        assert args.engine == "sharded"
        assert args.shards == 8
        assert args.sizes == "63"
        assert args.shard_records == 3

    def test_engine_defaults_to_sync(self):
        args = build_parser().parse_args(["run", "E3"])
        assert args.engine == "sync"

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E3", "--engine", "warp"])

    def test_parse_sizes(self):
        assert _parse_sizes("127,511") == (127, 511)
        assert _parse_sizes("63") == (63,)
        with pytest.raises(ReproError):
            _parse_sizes("63,oops")
        with pytest.raises(ReproError):
            _parse_sizes("")

    def test_socket_engine_and_hosts_flags(self):
        args = build_parser().parse_args(
            ["run", "E3", "--engine", "socket", "--hosts", "h1:9101, h2:9102"]
        )
        assert args.engine == "socket"
        assert _parse_hosts(args.hosts) == ("h1:9101", "h2:9102")

    def test_hosts_default_to_auto_spawn(self):
        args = build_parser().parse_args(["run", "E3", "--engine", "socket"])
        assert args.hosts is None
        assert _parse_hosts(args.hosts) is None

    def test_empty_hosts_rejected(self):
        with pytest.raises(ReproError):
            _parse_hosts(" , ")

    def test_shardhost_parser_binds_and_bounds(self):
        from repro.shardhost import build_parser as build_host_parser

        args = build_host_parser().parse_args(["--bind", "0.0.0.0:9101"])
        assert args.bind == "0.0.0.0:9101"
        args = build_host_parser().parse_args(["--max-frame", "1024"])
        assert args.max_frame == 1024


class TestExecution:
    def test_list_prints_all_twelve_experiments(self, capsys):
        text = list_experiments()
        out = capsys.readouterr().out
        assert out.strip() == text
        assert len(text.splitlines()) == 12
        assert text.splitlines()[0].startswith("E1")

    def test_main_list_exit_code(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E10" in out
        assert "E11" in out
        assert "E12" in out

    def test_serve_subcommand_forwards_arguments(self, capsys):
        # Option-like tokens reach the serve sub-CLI verbatim: main()
        # dispatches "serve" before the main parser runs, because
        # argparse.REMAINDER rejects leading options on some versions.
        assert main(["serve", "--preload", "paper"]) == 2
        assert "--preload needs --tenants" in capsys.readouterr().err
        assert main(["serve", "--bind", "no-port-here"]) == 2
        assert "bind" in capsys.readouterr().err.lower()

    def test_e12_client_flags(self):
        args = build_parser().parse_args(
            ["run", "E12", "--clients", "9", "--operations", "2"]
        )
        assert args.experiment == "E12"
        assert args.clients == 9
        assert args.operations == 2

    def test_main_runs_the_paper_example_experiment(self, capsys):
        assert main(["run", "E1"]) == 0
        out = capsys.readouterr().out
        assert "dependency paths" in out
        assert "ABCA" in out

    def test_main_runs_the_trace_experiment_with_limit(self, capsys):
        assert main(["run", "E2", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "request_nodes" in out

    def test_hosts_with_a_non_socket_engine_fails_loudly(self, capsys):
        # Silently sweeping the local box while the user named a fleet would
        # be the worst outcome, so this is an error, not a note.
        assert (
            main(["run", "E3", "--engine", "pooled", "--hosts", "h1:9101"]) == 2
        )
        assert "--hosts applies only" in capsys.readouterr().err

    def test_hosts_outside_the_e3_sweep_fails_loudly(self, capsys):
        # Only E3's engine sweep consumes hosts; every other experiment
        # would silently run on the local box.
        assert (
            main(["run", "E1", "--engine", "socket", "--hosts", "h1:9101"]) == 2
        )
        assert "--hosts applies only" in capsys.readouterr().err

    def test_main_runs_the_sharded_sweep(self, capsys):
        assert (
            main(
                [
                    "run",
                    "E3",
                    "--engine",
                    "sharded",
                    "--shards",
                    "2",
                    "--sizes",
                    "7",
                    "--shard-records",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "sync vs sharded" in out
        assert "cross-shard" in out
