"""Direct units for the socket layer's liveness and framing edge paths.

The parity suites exercise these only incidentally (and only on the happy
path); here each failure mode is pinned on its own: partial reads across
fragmented frames, clean closes vs mid-frame closes, the oversize-frame
bound, the idle-timeout distinction, and the little adapters
(:class:`_ShardLiveness`, :class:`_PingChannel`) that present a host link
through the worker-liveness protocol the await loops poll.
"""

import socket
import struct
import threading

import pytest

from repro.errors import NetworkError
from repro.faults import NULL_INJECTOR
from repro.sharding.sockets import (
    ConnectionClosed,
    _FrameWriter,
    _IdleTimeout,
    _PingChannel,
    _recv_exact,
    _ShardLiveness,
    parse_address,
    recv_frame,
)


@pytest.fixture
def pair():
    """A connected local socket pair; both ends closed after the test."""
    left, right = socket.socketpair()
    try:
        yield left, right
    finally:
        left.close()
        right.close()


def send_frame(sock, obj, max_frame=2**20):
    _FrameWriter(sock, max_frame).send(obj)


class TestRecvExact:
    def test_reassembles_arbitrarily_fragmented_sends(self, pair):
        left, right = pair
        payload = bytes(range(256)) * 40

        def dribble():
            for i in range(0, len(payload), 7):
                left.sendall(payload[i : i + 7])

        thread = threading.Thread(target=dribble)
        thread.start()
        try:
            assert _recv_exact(right, len(payload)) == payload
        finally:
            thread.join()

    def test_clean_close_at_boundary_is_connection_closed(self, pair):
        left, right = pair
        left.close()
        with pytest.raises(ConnectionClosed):
            _recv_exact(right, 4)

    def test_close_mid_read_is_a_hard_network_error(self, pair):
        left, right = pair
        left.sendall(b"ab")
        left.close()
        with pytest.raises(NetworkError, match="mid-frame") as excinfo:
            _recv_exact(right, 4)
        # Not the clean-close subtype: callers distinguish the two.
        assert not isinstance(excinfo.value, ConnectionClosed)

    def test_idle_timeout_only_before_any_byte(self, pair):
        left, right = pair
        right.settimeout(0.05)
        with pytest.raises(_IdleTimeout):
            _recv_exact(right, 4, idle_ok=True)
        left.sendall(b"a")  # a frame has started: a stall is now an error
        with pytest.raises(NetworkError, match="wedged"):
            _recv_exact(right, 4, idle_ok=True)

    def test_timeout_without_idle_ok_is_an_error(self, pair):
        _left, right = pair
        right.settimeout(0.05)
        with pytest.raises(NetworkError):
            _recv_exact(right, 4)


class TestRecvFrame:
    def test_round_trips_a_pickled_object(self, pair):
        left, right = pair
        send_frame(left, {"shard": 3, "rows": [("a", "b")]})
        assert recv_frame(right) == {"shard": 3, "rows": [("a", "b")]}

    def test_oversize_header_refuses_before_reading_the_payload(self, pair):
        left, right = pair
        left.sendall(struct.pack(">Q", 2**40))
        with pytest.raises(NetworkError, match="max_frame"):
            recv_frame(right, max_frame=1024)

    def test_oversize_send_is_refused_symmetrically(self, pair):
        left, _right = pair
        with pytest.raises(NetworkError, match="max_frame"):
            _FrameWriter(left, max_frame=8).send("x" * 64)

    def test_close_after_header_is_a_truncated_frame(self, pair):
        left, right = pair
        left.sendall(struct.pack(">Q", 100))
        left.close()
        with pytest.raises(NetworkError, match="mid-frame") as excinfo:
            recv_frame(right)
        assert not isinstance(excinfo.value, ConnectionClosed)

    def test_unpicklable_payload_is_diagnosed(self, pair):
        left, right = pair
        left.sendall(struct.pack(">Q", 4) + b"junk")
        with pytest.raises(NetworkError, match="unpickle"):
            recv_frame(right)


class FakeLink:
    """The link surface the liveness/ping adapters read."""

    def __init__(self, address="h:9101"):
        self.address = address
        self.alive = True
        self.exitcode = None
        self.injector = NULL_INJECTOR
        self.sent = []

    def send(self, obj):
        self.sent.append(obj)


class TestShardLiveness:
    def test_mirrors_the_link_state(self):
        link = FakeLink()
        liveness = _ShardLiveness(link)
        assert liveness.is_alive() is True
        link.alive = False
        assert liveness.is_alive() is False

    def test_exitcode_prefers_the_recorded_reason(self):
        link = FakeLink(address="far:1")
        liveness = _ShardLiveness(link)
        assert "far:1" in liveness.exitcode  # no reason yet: generic loss
        link.exitcode = "malformed frame"
        assert liveness.exitcode == "malformed frame"


class TestPingChannel:
    def test_put_reshapes_the_inbox_tuple_into_a_ping_frame(self):
        link = FakeLink()
        channel = _PingChannel(link, shard=3)
        channel.put(("ping", 17))
        assert link.sent == [("ping", 17, 3)]


class TestParseAddress:
    def test_splits_host_and_port(self):
        assert parse_address("10.0.0.5:9101") == ("10.0.0.5", 9101)
        assert parse_address("::1:8000") == ("::1", 8000)

    def test_rejects_missing_parts(self):
        for bad in ("nohost", ":9101", "host:", "host:abc"):
            with pytest.raises(Exception):
                parse_address(bad)
