"""Unit tests for LocalDatabase, including the chase step (algorithm A6)."""

import pytest

from repro.database.database import LocalDatabase
from repro.database.nulls import is_null
from repro.database.parser import parse_atom, parse_query
from repro.database.query import Variable
from repro.database.schema import DatabaseSchema, RelationSchema
from repro.errors import QueryError, SchemaError


@pytest.fixture
def db():
    return LocalDatabase(
        DatabaseSchema(
            [
                RelationSchema("person", ["name", "city"]),
                RelationSchema("knows", ["a", "b"]),
            ]
        )
    )


class TestBasics:
    def test_insert_and_total_rows(self, db):
        assert db.insert("person", ("ada", "london")) is True
        assert db.insert("person", ("ada", "london")) is False
        assert db.total_rows() == 1

    def test_insert_many(self, db):
        assert db.insert_many("knows", [("a", "b"), ("b", "c")]) == 2

    def test_delete(self, db):
        db.insert("person", ("ada", "london"))
        assert db.delete("person", ("ada", "london")) is True
        assert db.delete("person", ("ada", "london")) is False

    def test_unknown_relation(self, db):
        with pytest.raises(SchemaError):
            db.insert("nope", ("x",))

    def test_add_relation(self, db):
        db.add_relation(RelationSchema("extra", ["x"]))
        assert "extra" in db
        db.insert("extra", ("1",))
        assert db.total_rows() == 1

    def test_facts_snapshot_is_immutable_copy(self, db):
        db.insert("person", ("ada", "london"))
        facts = db.facts()
        db.insert("person", ("bob", "paris"))
        assert len(facts["person"]) == 1

    def test_clear_resets_data_and_skolems(self, db):
        db.insert("person", ("ada", "london"))
        db.skolems.null_for("r", "Y", {"X": 1})
        db.clear()
        assert db.total_rows() == 0
        assert db.skolems.invented_count == 0

    def test_copy_is_deep_for_rows(self, db):
        db.insert("person", ("ada", "london"))
        clone = db.copy()
        clone.insert("person", ("bob", "paris"))
        assert db.total_rows() == 1
        assert clone.total_rows() == 2

    def test_query_helper(self, db):
        db.insert_many("knows", [("a", "b"), ("b", "c")])
        answers = db.query(parse_query("q(X) :- knows(X, Y)"))
        assert answers == {("a",), ("b",)}

    def test_equality_by_facts(self, db):
        other = LocalDatabase(
            DatabaseSchema(
                [
                    RelationSchema("person", ["name", "city"]),
                    RelationSchema("knows", ["a", "b"]),
                ]
            )
        )
        db.insert("knows", ("a", "b"))
        other.insert("knows", ("a", "b"))
        assert db == other


class TestApplyViewTuples:
    def test_plain_copy_rule(self, db):
        head = parse_atom("knows(X, Y)")
        inserted = db.apply_view_tuples(
            "r", head, (Variable("X"), Variable("Y")), {("a", "b"), ("b", "c")}
        )
        assert inserted == {("a", "b"), ("b", "c")}
        assert db.relation("knows").rows() == {("a", "b"), ("b", "c")}

    def test_duplicate_answers_do_not_reinsert(self, db):
        head = parse_atom("knows(X, Y)")
        db.apply_view_tuples("r", head, (Variable("X"), Variable("Y")), {("a", "b")})
        inserted = db.apply_view_tuples(
            "r", head, (Variable("X"), Variable("Y")), {("a", "b")}
        )
        assert inserted == set()

    def test_existential_variable_gets_labelled_null(self, db):
        head = parse_atom("person(X, C)")  # C not distinguished
        inserted = db.apply_view_tuples("r", head, (Variable("X"),), {("ada",)})
        ((name, city),) = inserted
        assert name == "ada"
        assert is_null(city)

    def test_existential_null_is_deterministic(self, db):
        head = parse_atom("person(X, C)")
        db.apply_view_tuples("r", head, (Variable("X"),), {("ada",)})
        first = next(iter(db.relation("person")))
        db.relation("person").clear()
        db.apply_view_tuples("r", head, (Variable("X"),), {("ada",)})
        second = next(iter(db.relation("person")))
        assert first == second

    def test_projection_check_skips_when_known_part_present(self, db):
        # A row with the same known (distinguished) value already exists:
        # the paper's "if piR(t) not in R" check prevents a second insertion.
        db.insert("person", ("ada", "london"))
        head = parse_atom("person(X, C)")
        inserted = db.apply_view_tuples("r", head, (Variable("X"),), {("ada",)})
        assert inserted == set()

    def test_repeated_application_reaches_fixpoint(self, db):
        head = parse_atom("person(X, C)")
        db.apply_view_tuples("r", head, (Variable("X"),), {("ada",)})
        inserted = db.apply_view_tuples("r", head, (Variable("X"),), {("ada",)})
        assert inserted == set()
        assert len(db.relation("person")) == 1

    def test_constant_in_head(self, db):
        head = parse_atom("person(X, 'rome')")
        inserted = db.apply_view_tuples("r", head, (Variable("X"),), {("ada",)})
        assert inserted == {("ada", "rome")}

    def test_unknown_head_relation(self, db):
        with pytest.raises(SchemaError):
            db.apply_view_tuples("r", parse_atom("nope(X)"), (Variable("X"),), {("a",)})

    def test_head_arity_mismatch(self, db):
        with pytest.raises(QueryError):
            db.apply_view_tuples(
                "r", parse_atom("person(X)"), (Variable("X"),), {("a",)}
            )

    def test_answer_arity_mismatch(self, db):
        with pytest.raises(QueryError):
            db.apply_view_tuples(
                "r",
                parse_atom("knows(X, Y)"),
                (Variable("X"), Variable("Y")),
                {("only-one",)},
            )
