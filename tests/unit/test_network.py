"""Unit tests for messages, pipes, latency models and advertisements."""

import pytest

from repro.errors import PipeClosedError
from repro.network.advertisement import Advertisement, DiscoveryService
from repro.network.latency import ConstantLatency, PerHopLatency, UniformLatency
from repro.network.message import Message, MessageType
from repro.network.pipe import Pipe, PipeTable


class TestMessage:
    def _message(self, payload=None):
        return Message("A", "B", MessageType.QUERY, payload or {})

    def test_sequence_numbers_increase(self):
        first, second = self._message(), self._message()
        assert second.sequence > first.sequence

    def test_size_estimate_grows_with_payload(self):
        small = self._message({"tuples": frozenset({("a", "b")})})
        wide = frozenset({("a" * 50, "b" * 50) for _ in range(1)})
        many = {(str(i), str(i)) for i in range(20)}
        large = self._message({"tuples": wide | many})
        assert large.size_estimate() > small.size_estimate()

    def test_size_estimate_counts_strings_and_mappings(self):
        message = self._message({"text": "x" * 100, "nested": {"k": "v"}})
        assert message.size_estimate() >= 100

    def test_str_mentions_endpoints(self):
        assert "A->B" in str(self._message())

    def test_message_types_cover_both_phases(self):
        values = {t.value for t in MessageType}
        assert {"request_nodes", "discovery_answer", "query", "answer"} <= values


class TestPipes:
    def test_pipe_lifecycle(self):
        pipe = Pipe("A", "B")
        pipe.assign_rule("r1")
        pipe.assign_rule("r2")
        pipe.unassign_rule("r1")
        assert not pipe.closed
        pipe.unassign_rule("r2")
        assert pipe.closed

    def test_check_open_raises_when_closed(self):
        pipe = Pipe("A", "B", closed=True)
        with pytest.raises(PipeClosedError):
            pipe.check_open()

    def test_reassigning_reopens(self):
        pipe = Pipe("A", "B")
        pipe.assign_rule("r1")
        pipe.unassign_rule("r1")
        pipe.assign_rule("r2")
        assert not pipe.closed

    def test_pipe_table_shares_pipe_between_rules(self):
        table = PipeTable()
        first = table.ensure_pipe("A", "B", "r1")
        second = table.ensure_pipe("B", "A", "r2")
        assert first is second
        assert len(table) == 1

    def test_pipe_table_closes_unused_pipe(self):
        table = PipeTable()
        table.ensure_pipe("A", "B", "r1")
        table.drop_rule("A", "B", "r1")
        assert table.open_pipes() == []

    def test_pipe_table_unknown_pair(self):
        table = PipeTable()
        assert table.pipe_for("A", "B") is None
        assert table.drop_rule("A", "B", "r") is None


class TestLatencyModels:
    def _message(self):
        return Message("A", "B", MessageType.QUERY, {})

    def test_constant_latency(self):
        assert ConstantLatency(2.5).delay_for(self._message()) == 2.5

    def test_constant_latency_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1)

    def test_uniform_latency_within_bounds_and_deterministic(self):
        model = UniformLatency(1.0, 2.0, seed=42)
        message = self._message()
        delay = model.delay_for(message)
        assert 1.0 <= delay <= 2.0
        assert model.delay_for(message) == delay

    def test_uniform_latency_validates_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(3.0, 1.0)

    def test_per_hop_latency_override(self):
        model = PerHopLatency(base=1.0, overrides={("A", "B"): 5.0})
        assert model.delay_for(self._message()) == 5.0
        assert model.delay_for(Message("B", "A", MessageType.QUERY, {})) == 1.0


class TestDiscoveryService:
    def test_publish_lookup_withdraw(self):
        service = DiscoveryService()
        service.publish(Advertisement("A", ("pub",)))
        assert service.lookup("A").shared_relations == ("pub",)
        service.withdraw("A")
        assert service.lookup("A") is None

    def test_peers_by_group(self):
        service = DiscoveryService()
        service.publish_all(
            [Advertisement("A", group="g1"), Advertisement("B", group="g2")]
        )
        assert service.peers("g1") == ("A",)
        assert set(service.peers()) == {"A", "B"}

    def test_peers_sharing_relation(self):
        service = DiscoveryService()
        service.publish(Advertisement("A", ("pub", "work")))
        service.publish(Advertisement("B", ("work",)))
        assert set(service.peers_sharing("work")) == {"A", "B"}
        assert service.peers_sharing("nope") == ()

    def test_advertisement_attributes(self):
        ad = Advertisement("A", attributes=(("version", "1"),))
        assert ad.attribute("version") == "1"
        assert ad.attribute("missing", "default") == "default"
