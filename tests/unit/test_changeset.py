"""Unit tests for per-run change sets and the shared structural digest.

Covers the three pieces of :mod:`repro.coordination.changeset`: the
:class:`ChangeSet` eligibility rules for the delta-driven update path, the
worker-side :class:`ChangeAccumulator` that folds shipped sync deltas between
runs, and the :class:`StructuralDigest` that is now the *single* fingerprint
behind both the ``Session.update`` strategy-memo cache and the warm pools'
:class:`~repro.sharding.pool.WorldMirror`.
"""

from repro.api import ScenarioSpec, Session
from repro.coordination.changeset import (
    ChangeAccumulator,
    ChangeSet,
    rules_fingerprint,
    structural_digest,
)
from repro.coordination.rule import rule_from_text
from repro.sharding.multiproc import _worlds_from_system
from repro.sharding.planner import ShardPlanner
from repro.sharding.pool import SyncDelta, WorldMirror
from repro.workloads.scenarios import (
    paper_example_data,
    paper_example_rules,
    paper_example_schemas,
)


def _paper_session() -> Session:
    return Session.from_spec(
        ScenarioSpec.of(
            paper_example_schemas(),
            paper_example_rules(),
            paper_example_data(),
            super_peer="A",
        )
    )


class TestChangeSet:
    def test_empty_change_set(self):
        changes = ChangeSet()
        assert changes.empty
        assert changes.incremental_ok  # a no-op incremental run is legitimate
        assert changes.inserted_rows == 0

    def test_pure_inserts_are_incremental_ok(self):
        changes = ChangeSet(inserts={"A": {"item": (("x", "y"),)}})
        assert not changes.empty
        assert changes.incremental_ok
        assert changes.inserted_rows == 1

    def test_removals_disqualify(self):
        assert not ChangeSet(removals=True).incremental_ok

    def test_rule_changes_disqualify(self):
        assert not ChangeSet(rule_changes=True).incremental_ok

    def test_from_sync_delta(self):
        rule = rule_from_text("r1", "B: item(X, Y) -> A: item(X, Y)")
        delta = SyncDelta(
            add_rules=(rule,),
            inserts={"B": {"item": (("1", "2"),)}},
        )
        changes = ChangeSet.from_sync_delta(delta)
        assert changes.inserts == {"B": {"item": (("1", "2"),)}}
        assert changes.rule_changes
        assert not changes.removals
        assert not changes.incremental_ok

    def test_from_sync_delta_replaces_read_as_removals(self):
        delta = SyncDelta(replaces={"A": {"item": (object(), (("1", "2"),))}})
        changes = ChangeSet.from_sync_delta(delta)
        assert changes.removals
        assert not changes.incremental_ok


class TestChangeAccumulator:
    def test_folds_inserts_across_payloads(self):
        accumulator = ChangeAccumulator()
        accumulator.note_sync_payload(
            {"inserts": {"A": {"item": [("1", "2")]}}}
        )
        accumulator.note_sync_payload(
            {"inserts": {"A": {"item": [("3", "4")]}, "B": {"tag": [("t",)]}}}
        )
        changes = accumulator.take()
        assert changes.inserts["A"]["item"] == (("1", "2"), ("3", "4"))
        assert changes.inserts["B"]["tag"] == (("t",),)
        assert changes.incremental_ok

    def test_take_resets(self):
        accumulator = ChangeAccumulator()
        accumulator.note_sync_payload({"inserts": {"A": {"item": [("1",)]}}})
        assert not accumulator.take().empty
        assert accumulator.take().empty

    def test_rule_and_replace_flags_stick_until_taken(self):
        accumulator = ChangeAccumulator()
        accumulator.note_sync_payload({"remove_rules": ("r1",)})
        accumulator.note_sync_payload({"inserts": {"A": {"item": [("1",)]}}})
        changes = accumulator.take()
        assert changes.rule_changes
        assert not changes.incremental_ok
        # After take(), a clean insert-only delta is eligible again.
        accumulator.note_sync_payload({"inserts": {"A": {"item": [("2",)]}}})
        assert accumulator.take().incremental_ok

    def test_replaces_flag(self):
        accumulator = ChangeAccumulator()
        accumulator.note_sync_payload({"replaces": {"A": {"item": (None, ())}}})
        assert accumulator.take().removals


class TestStructuralDigest:
    def test_digest_is_hashable_and_order_insensitive(self):
        digest_a = structural_digest(
            {"r1": "text"}, {"A": {"item": frozenset({("1",)})}}
        )
        digest_b = structural_digest(
            {"r1": "text"}, {"A": {"item": frozenset({("1",)})}}
        )
        assert digest_a == digest_b
        assert hash(digest_a) == hash(digest_b)

    def test_insertion_changes_the_digest(self):
        session = _paper_session()
        before = session.system.structural_digest()
        node = sorted(session.system.nodes)[0]
        relation = sorted(session.system.node(node).database.facts())[0]
        arity = len(
            next(
                schema
                for schema in session.system.node(node).database.schema
                if schema.name == relation
            ).attributes
        )
        session.system.node(node).database.relation(relation).insert(
            tuple(f"fresh{i}" for i in range(arity))
        )
        assert session.system.structural_digest() != before

    def test_add_and_delete_link_change_the_digest(self):
        session = _paper_session()
        before = session.system.structural_digest()
        extra = rule_from_text("extra-link", "E: e(X, Y) -> B: b(Y, X)")
        session.system.add_rule(extra)
        with_rule = session.system.structural_digest()
        assert with_rule != before
        session.system.remove_rule("extra-link")
        assert session.system.structural_digest() == before

    def test_session_fingerprint_is_the_shared_digest(self):
        # The memo cache of Session.update and the pool mirror must key off
        # the *same* digest definition — this is the fingerprint unification.
        session = _paper_session()
        assert session._state_fingerprint() == session.system.structural_digest()

    def test_world_mirror_digest_matches_the_live_system(self):
        session = _paper_session()
        system = session.system
        plan = ShardPlanner(2).plan_system(system)
        mirror = WorldMirror(_worlds_from_system(system, plan))
        assert mirror.digest() == system.structural_digest()
        # note_synced after a mutation re-aligns the mirror with the system.
        node = sorted(system.nodes)[0]
        relation = sorted(system.node(node).database.facts())[0]
        arity = len(
            next(
                schema
                for schema in system.node(node).database.schema
                if schema.name == relation
            ).attributes
        )
        system.node(node).database.relation(relation).insert(
            tuple(f"new{i}" for i in range(arity))
        )
        assert mirror.digest() != system.structural_digest()
        mirror.note_synced(system)
        assert mirror.digest() == system.structural_digest()

    def test_rules_fingerprint_reads_edits_as_remove_plus_add(self):
        rule_a = rule_from_text("r1", "B: item(X, Y) -> A: item(X, Y)")
        rule_b = rule_from_text("r1", "B: item(X, Y) -> A: item(Y, X)")
        assert rules_fingerprint([rule_a]) != rules_fingerprint([rule_b])
