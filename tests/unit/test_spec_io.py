"""ScenarioSpec JSON round-trips (checked-in sweep configurations)."""

import json
from pathlib import Path

import pytest

from repro.api import ScenarioSpec, Session
from repro.errors import ReproError
from repro.network.latency import ConstantLatency, PerHopLatency, UniformLatency
from repro.network.transport import SyncTransport
from repro.workloads.scenarios import (
    paper_example_data,
    paper_example_rules,
    paper_example_schemas,
)
from repro.workloads.topologies import tree_topology


def paper_spec(**settings) -> ScenarioSpec:
    return ScenarioSpec.of(
        paper_example_schemas(),
        paper_example_rules(),
        paper_example_data(),
        super_peer="A",
        name="paper",
        **settings,
    )


def assert_specs_equivalent(original: ScenarioSpec, loaded: ScenarioSpec) -> None:
    """Field-wise spec equality (DatabaseSchema has identity equality only)."""
    assert sorted(loaded.schemas) == sorted(original.schemas)
    for node in original.schemas:
        assert (
            loaded.schemas[node].as_mapping() == original.schemas[node].as_mapping()
        )
    assert loaded.rules == original.rules
    assert {
        node: {rel: frozenset(rows) for rel, rows in relations.items()}
        for node, relations in loaded.data.items()
    } == {
        node: {rel: frozenset(rows) for rel, rows in relations.items()}
        for node, relations in original.data.items()
    }
    for field_name in (
        "transport",
        "propagation",
        "super_peer",
        "strategy",
        "max_messages",
        "name",
        "shards",
    ):
        assert getattr(loaded, field_name) == getattr(original, field_name)


class TestSpecRoundTrip:
    def test_paper_example_round_trips_through_text(self):
        original = paper_spec(shards=4)
        loaded = ScenarioSpec.load_json(original.dump_json())
        assert_specs_equivalent(original, loaded)

    def test_round_trip_through_a_file(self, tmp_path):
        original = ScenarioSpec.from_topology(
            tree_topology(2, 2), records_per_node=4, seed=5
        )
        path = tmp_path / "scenario.json"
        original.dump_json(path)
        loaded = ScenarioSpec.load_json(path)
        assert_specs_equivalent(original, loaded)
        # A plain string path works too.
        assert_specs_equivalent(original, ScenarioSpec.load_json(str(path)))

    def test_loaded_spec_replays_to_the_same_fixpoint(self):
        original = ScenarioSpec.from_topology(
            tree_topology(1, 2), records_per_node=4, seed=5
        )
        loaded = ScenarioSpec.load_json(original.dump_json())

        first = Session.from_spec(original)
        first.run("discovery")
        second = Session.from_spec(loaded)
        second.run("discovery")
        assert (
            first.update().ground_databases() == second.update().ground_databases()
        )

    def test_latency_models_round_trip(self):
        constant = paper_spec(latency=ConstantLatency(2.5))
        loaded = ScenarioSpec.load_json(constant.dump_json())
        assert isinstance(loaded.latency, ConstantLatency)
        assert loaded.latency.delay == 2.5

        uniform = paper_spec(latency=UniformLatency(0.5, 2.0, seed=9))
        loaded = ScenarioSpec.load_json(uniform.dump_json())
        assert isinstance(loaded.latency, UniformLatency)
        assert (loaded.latency.low, loaded.latency.high, loaded.latency.seed) == (
            0.5,
            2.0,
            9,
        )

    def test_comparison_rules_survive(self):
        # r4 carries the built-in X != Z; the textual form must reparse.
        original = paper_spec()
        loaded = ScenarioSpec.load_json(original.dump_json())
        r4 = next(rule for rule in loaded.rules if rule.rule_id == "r4")
        assert r4.comparisons


class TestSpecIoErrors:
    def test_transport_instance_does_not_dump(self):
        spec = paper_spec(transport=SyncTransport())
        with pytest.raises(ReproError):
            spec.dump_json()

    def test_unsupported_latency_does_not_dump(self):
        spec = paper_spec(latency=PerHopLatency(1.0))
        with pytest.raises(ReproError):
            spec.dump_json()

    def test_unknown_format_is_rejected(self):
        document = json.loads(paper_spec().dump_json())
        document["format"] = "something-else/9"
        with pytest.raises(ReproError):
            ScenarioSpec.load_json(json.dumps(document))

    def test_invalid_json_is_rejected(self):
        with pytest.raises(ReproError):
            ScenarioSpec.load_json("{not json")

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ScenarioSpec.load_json(Path(tmp_path) / "absent.json")
