"""Unit tests for the statistics collector and the report helpers."""

import pytest

from repro.stats.collector import StatisticsCollector
from repro.stats.report import format_table, series_summary


class TestStatisticsCollector:
    def test_record_message_updates_totals_and_per_node(self):
        stats = StatisticsCollector()
        stats.record_message("query", "A", "B", 100)
        stats.record_message("answer", "B", "A", 300)
        snapshot = stats.snapshot()
        assert snapshot.total_messages == 2
        assert snapshot.messages.total_bytes == 400
        assert snapshot.messages.by_type["query"] == 1
        assert snapshot.nodes["A"].messages_sent == 1
        assert snapshot.nodes["A"].messages_received == 1

    def test_record_query_and_duplicates(self):
        stats = StatisticsCollector()
        stats.record_query("A")
        stats.record_query("A", duplicate=True)
        snapshot = stats.snapshot()
        assert snapshot.total_queries_executed == 2
        assert snapshot.total_duplicate_queries == 1

    def test_record_update_accumulates_tuples(self):
        stats = StatisticsCollector()
        stats.record_update("A", received=10, inserted=4)
        stats.record_update("A", received=5, inserted=0)
        snapshot = stats.snapshot()
        assert snapshot.total_tuples_transferred == 15
        assert snapshot.total_tuples_inserted == 4
        assert snapshot.nodes["A"].updates_applied == 2

    def test_advance_time_is_monotone(self):
        stats = StatisticsCollector()
        stats.advance_time(5.0)
        stats.advance_time(3.0)
        assert stats.simulated_time == 5.0

    def test_snapshot_is_independent_of_later_updates(self):
        stats = StatisticsCollector()
        stats.record_query("A")
        snapshot = stats.snapshot()
        stats.record_query("A")
        assert snapshot.total_queries_executed == 1

    def test_reset_clears_everything(self):
        stats = StatisticsCollector()
        stats.record_message("query", "A", "B", 10)
        stats.advance_time(4.0)
        stats.reset()
        snapshot = stats.snapshot()
        assert snapshot.total_messages == 0
        assert snapshot.simulated_time == 0.0
        assert snapshot.nodes == {}


class TestFormatTable:
    def test_basic_rendering(self):
        table = format_table(["a", "b"], [[1, "xx"], [22, "y"]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_floats_are_rounded(self):
        table = format_table(["v"], [[1.23456]])
        assert "1.235" in table

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestSeriesSummary:
    def test_perfect_line(self):
        fit = series_summary([1, 2, 3, 4], [3, 5, 7, 9])
        assert fit["slope"] == pytest.approx(2.0)
        assert fit["intercept"] == pytest.approx(1.0)
        assert fit["r_squared"] == pytest.approx(1.0)

    def test_constant_series_has_r_squared_one(self):
        fit = series_summary([1, 2, 3], [5, 5, 5])
        assert fit["slope"] == pytest.approx(0.0)
        assert fit["r_squared"] == pytest.approx(1.0)

    def test_noisy_series_reduces_r_squared(self):
        fit = series_summary([1, 2, 3, 4], [3, 9, 4, 10])
        assert fit["r_squared"] < 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            series_summary([1], [1])
        with pytest.raises(ValueError):
            series_summary([1, 2], [1])
        with pytest.raises(ValueError):
            series_summary([2, 2], [1, 3])
