"""Unit tests for the centralized, acyclic and query-time baselines."""

import pytest

from repro.baselines.acyclic import acyclic_update
from repro.baselines.centralized import centralized_update
from repro.baselines.querytime import query_time_answer
from repro.coordination.rule import rule_from_text
from repro.database.nulls import is_null
from repro.database.parser import parse_query
from repro.database.schema import DatabaseSchema, RelationSchema
from repro.errors import ReproError
from repro.workloads.scenarios import (
    paper_example_data,
    paper_example_rules,
    paper_example_schemas,
)


def chain_setup():
    schemas = {
        name: DatabaseSchema([RelationSchema("item", ["x", "y"])])
        for name in ("a", "b", "c")
    }
    rules = [
        rule_from_text("ab", "b: item(X, Y) -> a: item(X, Y)"),
        rule_from_text("bc", "c: item(X, Y) -> b: item(X, Y)"),
    ]
    data = {"c": {"item": [("1", "2"), ("3", "4")]}}
    return schemas, rules, data


class TestCentralized:
    def test_chain_propagates_to_root(self):
        schemas, rules, data = chain_setup()
        result = centralized_update(schemas, rules, data)
        assert result.databases["a"].relation("item").rows() == {("1", "2"), ("3", "4")}
        assert result.rounds >= 2

    def test_fixpoint_is_closed_under_rules(self):
        result = centralized_update(
            paper_example_schemas(), paper_example_rules(), paper_example_data()
        )
        # Re-running from the fix-point adds nothing.
        snapshot = result.snapshot()
        again = centralized_update(
            paper_example_schemas(), paper_example_rules(),
            {node: {rel: list(rows) for rel, rows in rels.items()}
             for node, rels in snapshot.items()},
        )
        assert again.snapshot() == snapshot

    def test_existential_rule_invents_null(self):
        schemas = {
            "a": DatabaseSchema([RelationSchema("a", ["x", "y"])]),
            "b": DatabaseSchema([RelationSchema("b", ["x"])]),
        }
        rules = [rule_from_text("r", "b: b(X) -> a: a(X, Z)")]
        data = {"b": {"b": [("1",)]}}
        result = centralized_update(schemas, rules, data)
        ((x, z),) = result.databases["a"].relation("a").rows()
        assert x == "1" and is_null(z)

    def test_counters(self):
        schemas, rules, data = chain_setup()
        result = centralized_update(schemas, rules, data)
        assert result.tuples_inserted == 4
        assert result.rule_applications >= len(rules)

    def test_empty_rule_set(self):
        schemas, _rules, data = chain_setup()
        result = centralized_update(schemas, [], data)
        assert result.rounds == 1
        assert result.tuples_inserted == 0


class TestAcyclic:
    def test_matches_centralized_on_chain(self):
        schemas, rules, data = chain_setup()
        acyclic = acyclic_update(schemas, rules, data)
        central = centralized_update(schemas, rules, data)
        assert acyclic.snapshot() == central.snapshot()

    def test_refuses_cyclic_network(self):
        with pytest.raises(ReproError):
            acyclic_update(
                paper_example_schemas(), paper_example_rules(), paper_example_data()
            )

    def test_force_runs_single_pass_on_cycle(self):
        result = acyclic_update(
            paper_example_schemas(),
            paper_example_rules(),
            paper_example_data(),
            force=True,
        )
        central = centralized_update(
            paper_example_schemas(), paper_example_rules(), paper_example_data()
        )
        # A single pass over a cyclic network misses data the fix-point has.
        assert result.tuples_inserted <= central.tuples_inserted

    def test_single_round(self):
        schemas, rules, data = chain_setup()
        assert acyclic_update(schemas, rules, data).rounds == 1


class TestQueryTime:
    def test_answers_match_centralized(self):
        schemas, rules, data = chain_setup()
        query = parse_query("q(X, Y) :- item(X, Y)")
        result = query_time_answer(schemas, rules, data, "a", query)
        central = centralized_update(schemas, rules, data)
        assert set(result.answers) == central.databases["a"].query(query)

    def test_messages_are_counted(self):
        schemas, rules, data = chain_setup()
        query = parse_query("q(X, Y) :- item(X, Y)")
        result = query_time_answer(schemas, rules, data, "a", query)
        assert result.messages > 0
        assert result.nodes_contacted == 2

    def test_leaf_node_needs_no_messages(self):
        schemas, rules, data = chain_setup()
        query = parse_query("q(X, Y) :- item(X, Y)")
        result = query_time_answer(schemas, rules, data, "c", query)
        assert result.messages == 0
        assert set(result.answers) == {("1", "2"), ("3", "4")}

    def test_works_on_cyclic_example(self):
        query = parse_query("q(X, Y) :- b(X, Y)")
        result = query_time_answer(
            paper_example_schemas(),
            paper_example_rules(),
            paper_example_data(),
            "B",
            query,
        )
        central = centralized_update(
            paper_example_schemas(), paper_example_rules(), paper_example_data()
        )
        assert set(result.answers) == central.databases["B"].query(query)
