"""Unit tests for the observability layer: tracer, metrics, exporters, logs.

Covers the pieces the integration parity suite takes for granted: span
nesting and ids, mark/export slicing, the worker drain/adopt round trip with
and without clock skew, registry dump/merge semantics, the Prometheus and
Chrome trace-event renderings, the per-phase summary table, logging
configuration idempotence and the null tracer's no-op guarantees.
"""

import io
import json
import logging

import pytest

from repro.obs import (
    CLOCK_SKEW_THRESHOLD,
    NULL_TRACER,
    ChaseProfile,
    MetricsRegistry,
    NullTracer,
    Tracer,
    configure_logging,
    get_logger,
    summarize,
    tracer_of,
)
from repro.obs.export import (
    chrome_trace_summary,
    format_trace_summary,
    metrics_to_json,
    metrics_to_prometheus,
    trace_to_chrome,
    validate_chrome_trace,
    write_chrome_trace,
)


class TestTracer:
    def test_spans_nest_under_the_innermost_open_span(self):
        tracer = Tracer(process="coordinator")
        with tracer.span("run") as run:
            with tracer.span("chase") as chase:
                pass
        records = tracer.export()
        assert [r["name"] for r in records] == ["chase", "run"]
        by_name = {r["name"]: r for r in records}
        assert by_name["run"]["parent_id"] is None
        assert by_name["chase"]["parent_id"] == run.span_id
        assert by_name["chase"]["span_id"] == chase.span_id
        assert all(r["end"] >= r["start"] for r in records)
        assert all(r["process"] == "coordinator" for r in records)
        assert len({r["trace_id"] for r in records}) == 1

    def test_span_ids_embed_the_process_label(self):
        tracer = Tracer(process="shard-3")
        with tracer.span("build"):
            pass
        assert tracer.export()[0]["span_id"].startswith("shard-3-")

    def test_attributes_set_at_open_and_before_close(self):
        tracer = Tracer()
        with tracer.span("merge", shards=4) as span:
            span.set(completion=6.0)
        record = tracer.export()[0]
        assert record["attributes"] == {"shards": 4, "completion": 6.0}

    def test_end_span_merges_final_attributes(self):
        tracer = Tracer()
        span = tracer.start_span("ship")
        tracer.end_span(span, worlds=2)
        assert tracer.export()[0]["attributes"] == {"worlds": 2}

    def test_double_close_records_once(self):
        tracer = Tracer()
        span = tracer.start_span("chase")
        tracer.end_span(span)
        tracer.end_span(span)
        assert len(tracer.export()) == 1

    def test_mark_slices_one_runs_spans(self):
        tracer = Tracer()
        with tracer.span("run"):
            pass
        mark = tracer.mark()
        with tracer.span("run"):
            pass
        assert len(tracer.export()) == 2
        assert len(tracer.export(since=mark)) == 1
        assert tracer.trace(since=mark)["spans"][0]["name"] == "run"

    def test_trace_document_shape(self):
        tracer = Tracer(process="coordinator")
        with tracer.span("run"):
            pass
        document = tracer.trace()
        assert document["trace_id"] == tracer.trace_id
        assert document["process"] == "coordinator"
        assert len(document["spans"]) == 1

    def test_drain_forgets_shipped_spans_but_keeps_open_ones(self):
        tracer = Tracer(process="shard-0")
        open_span = tracer.start_span("chase")
        with tracer.span("sync"):
            pass
        drained = tracer.drain()
        assert [r["name"] for r in drained] == ["sync"]
        assert tracer.export() == []
        tracer.end_span(open_span)
        assert [r["name"] for r in tracer.drain()] == ["chase"]

    def test_closing_spans_feeds_the_duration_histogram(self):
        tracer = Tracer()
        with tracer.span("chase"):
            pass
        histogram = tracer.metrics.histogram("repro_span_seconds", {"name": "chase"})
        assert histogram.count == 1
        assert histogram.sum >= 0.0


class TestAdopt:
    def _worker_records(self, shift: float = 0.0):
        worker = Tracer(trace_id="abc", process="shard-0")
        with worker.span("build"):
            with worker.span("chase"):
                pass
        records = worker.drain()
        for record in records:
            record["start"] += shift
            record["end"] += shift
        return records

    def test_adopted_top_level_spans_reparent_under_the_open_run_span(self):
        coordinator = Tracer(process="coordinator")
        run = coordinator.start_span("run")
        coordinator.adopt(self._worker_records())
        coordinator.end_span(run)
        by_name = {r["name"]: r for r in coordinator.export()}
        assert by_name["build"]["parent_id"] == run.span_id
        # Nested worker spans keep their worker-side parent.
        assert by_name["chase"]["parent_id"] == by_name["build"]["span_id"]
        # Adopted records join the coordinator's trace id.
        assert by_name["build"]["trace_id"] == coordinator.trace_id

    def test_same_host_clock_is_not_shifted_by_queue_latency(self):
        import time as _time

        coordinator = Tracer()
        records = self._worker_records()
        starts = [r["start"] for r in records]
        # The shipped clock lags by a realistic queue transit — far below
        # the skew threshold — and must be ignored.
        coordinator.adopt(records, clock=_time.time() - 0.05)
        assert [r["start"] for r in coordinator.export()] == starts

    def test_cross_machine_skew_is_corrected(self):
        import time as _time

        coordinator = Tracer()
        skew = 10 * CLOCK_SKEW_THRESHOLD
        records = self._worker_records(shift=-skew)
        starts = [r["start"] for r in records]
        coordinator.adopt(records, clock=_time.time() - skew)
        adopted = coordinator.export()
        for before, after in zip(starts, adopted):
            assert after["start"] == pytest.approx(before + skew, abs=0.5)

    def test_adopt_without_open_span_keeps_records_top_level(self):
        coordinator = Tracer()
        coordinator.adopt(self._worker_records())
        assert coordinator.export()[-1]["parent_id"] is None


class TestMetricsRegistry:
    def test_counter_gauge_histogram_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("msgs", {"type": "query"}).inc(3)
        registry.gauge("clock").set(7.5)
        registry.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)

        other = MetricsRegistry()
        other.counter("msgs", {"type": "query"}).inc(2)
        other.gauge("clock").set(5.0)
        other.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        other.merge(registry.dump())

        assert other.counter("msgs", {"type": "query"}).value == 5
        assert other.gauge("clock").value == 7.5  # gauges merge by max
        histogram = other.histogram("lat", buckets=(0.1, 1.0))
        assert histogram.count == 2
        assert histogram.cumulative_counts() == [1, 2, 2]

    def test_dump_is_picklable_plain_data(self):
        import pickle

        registry = MetricsRegistry()
        registry.counter("c", {"node": "A"}).inc()
        registry.histogram("h").observe(0.2)
        assert pickle.loads(pickle.dumps(registry.dump())) == registry.dump()

    def test_merge_with_mismatched_buckets_folds_sum_and_count_only(self):
        coarse = MetricsRegistry()
        coarse.histogram("lat", buckets=(1.0,)).observe(0.5)
        fine = MetricsRegistry()
        fine.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)
        coarse.merge(fine.dump())
        histogram = coarse.histogram("lat", buckets=(1.0,))
        assert histogram.count == 2
        assert histogram.sum == pytest.approx(1.0)
        assert sum(histogram.counts) == 1  # foreign buckets were not folded

    def test_reset_invalidates_cached_handles(self):
        registry = MetricsRegistry()
        stale = registry.counter("c")
        stale.inc()
        registry.reset()
        assert registry.counter("c").value == 0
        assert registry.counter("c") is not stale

    def test_handles_stay_valid_between_calls(self):
        registry = MetricsRegistry()
        assert registry.counter("c", {"a": 1}) is registry.counter("c", {"a": 1})


class TestChaseProfile:
    def test_merge_accepts_profiles_and_mappings(self):
        profile = ChaseProfile(calls=1, wall_seconds=0.5)
        profile.merge(ChaseProfile(calls=2, rows_inserted=3))
        profile.merge({"calls": 1, "wall_seconds": 0.25})
        assert profile.calls == 4
        assert profile.rows_inserted == 3
        assert profile.wall_seconds == pytest.approx(0.75)

    def test_delta_attributes_are_prefixed_and_relative(self):
        profile = ChaseProfile(calls=5, projection_checks=2)
        before = profile.snapshot()
        profile.calls += 3
        deltas = profile.delta_attributes(before)
        assert deltas["a6_calls"] == 3
        assert deltas["a6_projection_checks"] == 0


class TestExport:
    def _trace(self):
        tracer = Tracer(process="coordinator")
        with tracer.span("run"):
            with tracer.span("chase", delivered=10):
                pass
        worker = Tracer(trace_id=tracer.trace_id, process="shard-0")
        with worker.span("build"):
            pass
        document = tracer.trace()
        document["spans"].extend(worker.drain())
        return document

    def test_chrome_trace_is_valid_and_json_serialisable(self):
        chrome = trace_to_chrome(self._trace())
        assert validate_chrome_trace(chrome) == []
        json.dumps(chrome)  # must not raise

    def test_chrome_trace_names_each_process_track(self):
        chrome = trace_to_chrome(self._trace())
        metadata = [e for e in chrome["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in metadata}
        assert names == {"coordinator", "shard-0"}
        # Distinct processes, distinct pids.
        assert len({e["pid"] for e in metadata}) == 2

    def test_chrome_trace_preserves_span_attributes(self):
        chrome = trace_to_chrome(self._trace())
        chase = [e for e in chrome["traceEvents"] if e["name"] == "chase"][0]
        assert chase["args"]["delivered"] == 10
        assert "span_id" in chase["args"]

    def test_validate_flags_malformed_documents(self):
        assert validate_chrome_trace([]) == ["document is not a JSON object"]
        assert validate_chrome_trace({}) == ["missing traceEvents list"]
        problems = validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "name": "x", "pid": 1, "ts": 0, "dur": -1}]}
        )
        assert any("negative duration" in p for p in problems)

    def test_write_chrome_trace_round_trips(self, tmp_path):
        path = write_chrome_trace(self._trace(), tmp_path / "t.json")
        document = json.loads(path.read_text())
        assert validate_chrome_trace(document) == []
        summary = chrome_trace_summary(document)
        assert set(summary) == {"run", "chase", "build"}

    def test_summary_table_orders_phases_and_shows_share(self):
        table = format_trace_summary(summarize(self._trace()))
        lines = table.splitlines()
        phase_rows = [line.split("|")[0].strip() for line in lines[3:]]
        assert phase_rows == ["run", "build", "chase"]
        assert "share" in lines[1]
        assert "-" in lines[3]  # the run row carries no share

    def test_summarize_aggregates_per_name(self):
        records = [
            {"name": "chase", "start": 0.0, "end": 1.0},
            {"name": "chase", "start": 2.0, "end": 5.0},
        ]
        summary = summarize(records)
        assert summary["chase"]["count"] == 2
        assert summary["chase"]["total"] == pytest.approx(4.0)
        assert summary["chase"]["mean"] == pytest.approx(2.0)
        assert summary["chase"]["max"] == pytest.approx(3.0)

    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.describe("repro_messages_total", "Messages delivered.")
        registry.counter("repro_messages_total", {"type": "query"}).inc(4)
        registry.gauge("repro_clock_seconds").set(2.5)
        registry.histogram("repro_span_seconds", buckets=(0.1, 1.0)).observe(0.5)
        text = metrics_to_prometheus(registry)
        assert "# HELP repro_messages_total Messages delivered." in text
        assert "# TYPE repro_messages_total counter" in text
        assert 'repro_messages_total{type="query"} 4' in text
        assert "repro_clock_seconds 2.5" in text
        assert 'repro_span_seconds_bucket{le="1"} 1' in text
        assert 'repro_span_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_span_seconds_count 1" in text
        assert text.endswith("\n")

    def test_metrics_json_uses_cumulative_histogram_counts(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        document = metrics_to_json(registry)
        assert document["histograms"][0]["counts"] == [1, 2, 2]


class TestLogging:
    def test_get_logger_names_children_of_the_obs_root(self):
        assert get_logger("pool").name == "repro.obs.pool"

    def test_configure_logging_is_idempotent(self):
        root = configure_logging(verbose=True)
        configure_logging(verbose=True)
        marked = [h for h in root.handlers if getattr(h, "_repro_obs", False)]
        assert len(marked) == 1
        assert root.level == logging.DEBUG
        configure_logging(verbose=False)
        assert root.level == logging.WARNING

    def test_verbose_streams_debug_records(self):
        stream = io.StringIO()
        configure_logging(verbose=True, stream=stream)
        get_logger("test").debug("hello from %s", "worker")
        configure_logging(verbose=False)  # restore the quiet default
        assert "hello from worker" in stream.getvalue()
        assert "repro.obs.test" in stream.getvalue()


class TestNullTracer:
    def test_tracer_of_defaults_to_the_shared_null_tracer(self):
        class Bare:
            pass

        system = Bare()
        assert tracer_of(system) is NULL_TRACER
        system.tracer = None
        assert tracer_of(system) is NULL_TRACER
        real = Tracer()
        system.tracer = real
        assert tracer_of(system) is real

    def test_null_operations_record_nothing(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        with tracer.span("run", phase="update") as span:
            span.set(anything=1)
        tracer.end_span(tracer.start_span("chase"))
        tracer.adopt([{"name": "x"}], clock=0.0)
        assert tracer.export() == []
        assert tracer.mark() == 0
