"""Unit tests for the DBLP generator, topologies and data distributions."""

import pytest

from repro.coordination.depgraph import DependencyGraph
from repro.errors import ReproError
from repro.workloads.dblp import (
    SCHEMA_VARIANTS,
    DblpGenerator,
    rows_for_variant,
    schema_for_variant,
    variant_for_node_index,
)
from repro.workloads.distributions import distribute_records, overlap_statistics
from repro.workloads.topologies import (
    chain_topology,
    clique_topology,
    coordination_rules_for,
    layered_topology,
    random_topology,
    single_relation_rules_for,
    star_topology,
    tree_topology,
)


class TestDblpGenerator:
    def test_deterministic_in_seed_and_index(self):
        first = DblpGenerator(seed=3).generate(5)
        second = DblpGenerator(seed=3).generate(5)
        assert first == second

    def test_different_seed_changes_records(self):
        assert DblpGenerator(seed=1).generate(5) != DblpGenerator(seed=2).generate(5)

    def test_start_index_offsets_keys(self):
        base = DblpGenerator().generate(3)
        offset = DblpGenerator().generate(3, start_index=3)
        assert {r.key for r in base}.isdisjoint({r.key for r in offset})

    def test_record_shape(self):
        (record,) = DblpGenerator().generate(1)
        assert record.as_tuple() == (
            record.key,
            record.title,
            record.author,
            record.year,
            record.venue,
        )
        assert 1994 <= record.year <= 2004


class TestSchemaVariants:
    @pytest.mark.parametrize("variant", SCHEMA_VARIANTS)
    def test_schema_and_rows_are_consistent(self, variant):
        schema = schema_for_variant(variant)
        records = DblpGenerator().generate(4)
        rows = rows_for_variant(records, variant)
        assert set(rows) == set(schema.relation_names)
        for relation_name, relation_rows in rows.items():
            arity = schema.get(relation_name).arity
            assert all(len(row) == arity for row in relation_rows)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ReproError):
            schema_for_variant("nope")
        with pytest.raises(ReproError):
            rows_for_variant([], "nope")

    def test_variant_round_robin(self):
        assert variant_for_node_index(0) == "wide"
        assert variant_for_node_index(1) == "split"
        assert variant_for_node_index(2) == "norm"
        assert variant_for_node_index(3) == "wide"


class TestTopologies:
    def test_tree_counts(self):
        spec = tree_topology(3, fanout=2)
        assert spec.node_count == 15
        assert spec.edge_count == 14
        assert spec.depth == 3

    def test_tree_depth_zero(self):
        spec = tree_topology(0)
        assert spec.node_count == 1
        assert spec.edge_count == 0

    def test_chain_and_star(self):
        assert chain_topology(4).edge_count == 3
        star = star_topology(5)
        assert star.edge_count == 5
        assert all(edge[0] == star.nodes[0] for edge in star.edges)

    def test_clique_edges(self):
        spec = clique_topology(4)
        assert spec.edge_count == 12

    def test_layered_topology_is_acyclic(self):
        spec = layered_topology(3, width=3, seed=1)
        rules = coordination_rules_for(spec)
        assert DependencyGraph.from_rules(rules).is_acyclic()

    def test_random_topology_is_acyclic_and_seeded(self):
        first = random_topology(8, 0.4, seed=5)
        second = random_topology(8, 0.4, seed=5)
        assert first.edges == second.edges
        rules = coordination_rules_for(first)
        assert DependencyGraph.from_rules(rules).is_acyclic()

    def test_invalid_parameters(self):
        with pytest.raises(ReproError):
            tree_topology(-1)
        with pytest.raises(ReproError):
            clique_topology(0)
        with pytest.raises(ReproError):
            random_topology(3, 1.5)

    def test_coordination_rules_translate_between_variants(self):
        spec = chain_topology(3)  # variants: wide <- split <- norm
        rules = coordination_rules_for(spec)
        # The wide importer gets 1 rule, the split importer gets 2.
        by_target = {}
        for rule in rules:
            by_target.setdefault(rule.target, []).append(rule)
        assert len(by_target[spec.nodes[0]]) == 1
        assert len(by_target[spec.nodes[1]]) == 2

    def test_single_relation_rules(self):
        spec = chain_topology(3)
        rules = single_relation_rules_for(spec, relation="item", arity=2)
        assert len(rules) == 2
        assert all(rule.head.relation == "item" for rule in rules)


class TestDistributions:
    def test_disjoint_distribution(self):
        spec = tree_topology(2, fanout=2)
        assignment = distribute_records(spec, 10, overlap_probability=0.0, seed=1)
        stats = overlap_statistics(assignment, spec)
        assert stats["mean_edge_overlap"] == 0.0
        assert stats["total_records"] == spec.node_count * 10

    def test_overlap_distribution_creates_intersections(self):
        spec = tree_topology(2, fanout=2)
        assignment = distribute_records(
            spec, 20, overlap_probability=1.0, overlap_fraction=0.5, seed=1
        )
        stats = overlap_statistics(assignment, spec)
        assert stats["edges_with_overlap"] == spec.edge_count
        assert stats["mean_edge_overlap"] == pytest.approx(0.5, abs=0.1)

    def test_overlap_probability_half_is_partial(self):
        # A layered DAG keeps edges one-directional, so the per-edge overlap
        # statistic is not inflated by the reverse edge as it would be on a
        # clique.
        spec = layered_topology(3, width=3, seed=2)
        assignment = distribute_records(
            spec, 10, overlap_probability=0.5, seed=3
        )
        stats = overlap_statistics(assignment, spec)
        assert 0 < stats["edges_with_overlap"] < spec.edge_count

    def test_deterministic_in_seed(self):
        spec = tree_topology(2, fanout=2)
        first = distribute_records(spec, 10, overlap_probability=0.5, seed=7)
        second = distribute_records(spec, 10, overlap_probability=0.5, seed=7)
        assert first == second

    def test_invalid_parameters(self):
        spec = tree_topology(1)
        with pytest.raises(ReproError):
            distribute_records(spec, -1)
        with pytest.raises(ReproError):
            distribute_records(spec, 1, overlap_probability=2.0)


class TestWorkloadsPassStaticAnalysis:
    """Every generator must emit rules whose atoms match the declared schemas.

    This is the regression net of the PR-6 schema audit: the static analyzer
    (docs/analysis.md) cross-checks every generated rule atom — relation name
    and arity — against each peer's schema variant, so drift between
    ``_BODY_BY_VARIANT``/``_HEADS_BY_VARIANT`` and ``schema_for_variant``
    can no longer ship silently.
    """

    @pytest.mark.parametrize(
        "spec",
        [
            tree_topology(2, fanout=2),
            layered_topology(2, width=3, seed=1),
            clique_topology(4),
            chain_topology(5),
            star_topology(4),
        ],
        ids=lambda spec: spec.name,
    )
    def test_dblp_workload_is_schema_consistent(self, spec):
        from repro.analysis import Severity, analyze_parts
        from repro.workloads.scenarios import dblp_workload_parts

        rules, _assignment, schemas, data = dblp_workload_parts(
            spec, records_per_node=2, seed=5
        )
        report = analyze_parts(schemas, rules, data, scenario=spec.name)
        assert report.ok, report.render()
        # Loaded workloads are also free of dead rules and unused peers.
        assert not report.by_severity(Severity.WARNING), report.render()

    def test_single_relation_rules_are_schema_consistent(self):
        from repro.analysis import analyze_parts
        from repro.database.schema import DatabaseSchema, RelationSchema

        spec = clique_topology(4)
        rules = single_relation_rules_for(spec)
        schemas = {
            node: DatabaseSchema([RelationSchema("item", ["x", "y"])])
            for node in spec.nodes
        }
        data = {node: {"item": [("1", "2")]} for node in spec.nodes}
        report = analyze_parts(schemas, rules, data)
        assert report.ok, report.render()
