"""Unit tests for the execution façade: builder, spec, registry, results."""

import subprocess
import sys

import pytest

from repro.api import (
    AsyncEngine,
    NetworkBuilder,
    RunResult,
    ScenarioSpec,
    Session,
    SyncEngine,
    available_strategies,
    engine_for,
    get_strategy,
    register_strategy,
)
from repro.api.result import diff_snapshots
from repro.cli import build_parser
from repro.core.system import P2PSystem
from repro.database.schema import DatabaseSchema, RelationSchema
from repro.errors import ReproError
from repro.network.transport import AsyncTransport, SyncTransport
from repro.workloads.scenarios import (
    paper_example_data,
    paper_example_rules,
    paper_example_schemas,
)


def small_builder() -> NetworkBuilder:
    return (
        NetworkBuilder("unit")
        .node("a", RelationSchema("item", ["x", "y"]))
        .node("b", RelationSchema("item", ["x", "y"]))
        .rule("ab: b: item(X, Y) -> a: item(X, Y)")
        .data("b", "item", [("1", "2"), ("3", "4")])
        .super_peer("a")
    )


class TestNetworkBuilder:
    def test_builds_spec_with_all_parts(self):
        spec = small_builder().build()
        assert spec.name == "unit"
        assert spec.node_count == 2
        assert len(spec.rules) == 1
        assert spec.data["b"]["item"] == (("1", "2"), ("3", "4"))
        assert spec.super_peer == "a"

    def test_duplicate_node_rejected(self):
        builder = small_builder()
        with pytest.raises(ReproError):
            builder.node("a", RelationSchema("other", ["x"]))

    def test_empty_network_rejected(self):
        with pytest.raises(ReproError):
            NetworkBuilder().build()

    def test_bad_rule_text_rejected(self):
        with pytest.raises(ReproError):
            NetworkBuilder().node("a", RelationSchema("item", ["x"])).rule("nonsense")

    def test_session_runs_update(self):
        session = small_builder().session()
        session.run("discovery")
        result = session.update()
        assert result.deltas["a"]["item"] == frozenset({("1", "2"), ("3", "4")})


class TestScenarioSpec:
    def test_of_coerces_loose_parts(self):
        spec = ScenarioSpec.of(
            {"a": [RelationSchema("item", ["x"])], "b": RelationSchema("item", ["x"])},
            ["ab: b: item(X) -> a: item(X)"],
            {"b": {"item": [("1",)]}},
        )
        assert all(isinstance(s, DatabaseSchema) for s in spec.schemas.values())
        assert spec.rules[0].rule_id == "ab"

    def test_with_overrides_settings(self):
        spec = small_builder().build().with_(transport="async", strategy="centralized")
        assert spec.transport == "async"
        assert spec.strategy == "centralized"

    def test_build_system_assembles_p2psystem(self):
        system = small_builder().build().build_system()
        assert isinstance(system, P2PSystem)
        assert set(system.nodes) == {"a", "b"}

    def test_from_topology_packages_dblp_workload(self):
        from repro.workloads.topologies import tree_topology

        topology = tree_topology(1, 2)
        spec = ScenarioSpec.from_topology(topology, records_per_node=3)
        assert spec.node_count == 3
        assert spec.super_peer == topology.nodes[0]
        assert len(spec.rules) > 0
        assert any(spec.data.values())


class TestStrategyRegistry:
    def test_four_paper_strategies_registered(self):
        assert set(available_strategies()) >= {
            "distributed",
            "centralized",
            "acyclic",
            "querytime",
        }

    def test_unknown_strategy_lists_available(self):
        with pytest.raises(ReproError, match="distributed"):
            get_strategy("does-not-exist")

    def test_duplicate_registration_needs_replace(self):
        strategy = get_strategy("centralized")
        with pytest.raises(ReproError):
            register_strategy(strategy)
        assert register_strategy(strategy, replace=True) is strategy

    def test_nameless_strategy_rejected(self):
        class Nameless:
            def run(self, session, **kwargs):  # pragma: no cover
                raise AssertionError

        with pytest.raises(ReproError):
            register_strategy(Nameless())

    def test_unknown_option_rejected_per_strategy(self):
        session = small_builder().session()
        for name in ("distributed", "centralized", "acyclic", "querytime"):
            with pytest.raises(ReproError):
                session.update(name, bogus_option=1)


class TestEngines:
    def test_engine_for_matches_transport(self):
        assert isinstance(engine_for(SyncTransport()), SyncEngine)
        assert isinstance(engine_for(AsyncTransport()), AsyncEngine)

    def test_sync_engine_rejects_async_transport(self):
        session = Session.of(
            small_builder().build().with_(transport="async").build_system()
        )
        with pytest.raises(ReproError):
            SyncEngine().run(session.system, "discovery")

    def test_unknown_phase_rejected(self):
        session = small_builder().session()
        with pytest.raises(ReproError, match="phase"):
            session.run("teleportation")


class TestRunResult:
    def test_uniform_result_for_all_registered_strategies(self):
        # The acceptance criterion: Session.from_spec(...).update(strategy=s)
        # returns a uniform RunResult for all four registered strategies.
        spec = ScenarioSpec.of(
            paper_example_schemas(),
            paper_example_rules(),
            paper_example_data(),
            super_peer="A",
        )
        for name in ("distributed", "centralized", "acyclic", "querytime"):
            session = Session.from_spec(spec)
            options = {"force": True} if name == "acyclic" else {}
            result = session.update(strategy=name, **options)
            assert isinstance(result, RunResult)
            assert result.phase == "update"
            assert result.strategy == name
            assert result.completion_time >= 0.0
            assert result.stats.total_messages >= 0
            assert isinstance(result.databases, dict)
            assert isinstance(result.deltas, dict)
            assert result.tuples_added > 0, name

    def test_diff_snapshots_reports_only_new_rows(self):
        before = {"a": {"item": frozenset({("1",)})}}
        after = {"a": {"item": frozenset({("1",), ("2",)}), "other": frozenset()}}
        assert diff_snapshots(before, after) == {"a": {"item": frozenset({("2",)})}}

    def test_label_and_repr(self):
        session = small_builder().session()
        result = session.update("centralized")
        assert result.label == "update/centralized"
        assert "centralized" in repr(result)


class TestSystemSubstrate:
    def test_load_data_unknown_node_raises_repro_error(self):
        system = small_builder().build().build_system()
        with pytest.raises(ReproError, match="ghost"):
            system.load_data({"ghost": {"item": [("1", "2")]}})

    def test_deprecated_shims_still_work_and_warn(self):
        system = small_builder().build().build_system()
        with pytest.warns(DeprecationWarning):
            completion = system.run_discovery()
        assert completion > 0


class TestCliStrategyFlag:
    def test_strategy_flag_accepts_registered_names(self):
        args = build_parser().parse_args(["run", "E3", "--strategy", "centralized"])
        assert args.strategy == "centralized"

    def test_strategy_flag_defaults_to_distributed(self):
        args = build_parser().parse_args(["run", "E1"])
        assert args.strategy == "distributed"

    def test_unregistered_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E3", "--strategy", "wishful"])


class TestPythonDashM:
    def test_python_m_repro_list_works(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "E1" in result.stdout and "E10" in result.stdout
