"""Unit tests for coordination rules."""

import pytest

from repro.coordination.rule import CoordinationRule, rule_from_text
from repro.database.parser import parse_atom
from repro.database.query import Variable
from repro.errors import RuleError


class TestConstruction:
    def test_rule_from_text_single_source(self):
        rule = rule_from_text("r1", "E: e(X, Y) -> B: b(X, Y)")
        assert rule.rule_id == "r1"
        assert rule.target == "B"
        assert rule.sources == ("E",)
        assert rule.source == "E"

    def test_rule_from_text_with_comparison(self):
        rule = rule_from_text("r4", "B: b(X, Y), b(X, Z), X != Z -> A: a(X, Y)")
        assert len(rule.comparisons) == 1
        assert rule.target == "A"

    def test_multi_source_rule(self):
        rule = rule_from_text("m", "B: b(X, Y), D: d(Y, Z) -> C: c(X, Z)")
        assert rule.sources == ("B", "D")
        with pytest.raises(RuleError):
            _ = rule.source

    def test_empty_body_rejected(self):
        with pytest.raises(RuleError):
            CoordinationRule("r", "A", parse_atom("a(X)"), [])

    def test_empty_rule_id_rejected(self):
        with pytest.raises(RuleError):
            CoordinationRule("", "A", parse_atom("a(X)"), [("B", parse_atom("b(X)"))])

    def test_body_at_target_rejected(self):
        with pytest.raises(RuleError):
            CoordinationRule("r", "A", parse_atom("a(X)"), [("A", parse_atom("b(X)"))])

    def test_str_contains_arrow(self):
        rule = rule_from_text("r1", "E: e(X, Y) -> B: b(X, Y)")
        assert "->" in str(rule)
        assert "r1" in str(rule)


class TestDerivedProperties:
    def test_distinguished_and_existential_variables(self):
        rule = rule_from_text("r", "B: b(X, Y) -> A: a(X, Z)")
        assert rule.distinguished_variables == (Variable("X"),)
        assert rule.existential_variables == (Variable("Z"),)

    def test_dependency_edges_point_from_target_to_sources(self):
        rule = rule_from_text("m", "B: b(X, Y), D: d(Y, Z) -> C: c(X, Z)")
        assert set(rule.dependency_edges) == {("C", "B"), ("C", "D")}

    def test_body_query_for_source(self):
        rule = rule_from_text("m", "B: b(X, Y), D: d(Y, Z), X != Z -> C: c(X, Z)")
        at_b = rule.body_query_for("B")
        assert [atom.relation for atom in at_b.body] == ["b"]
        # The X != Z comparison spans both fragments, so it stays out of B's.
        assert at_b.comparisons == ()

    def test_body_query_for_source_keeps_local_comparisons(self):
        rule = rule_from_text("m", "B: b(X, Y), X != Y -> C: c(X, Y)")
        at_b = rule.body_query_for("B")
        assert len(at_b.comparisons) == 1

    def test_body_query_for_unknown_node(self):
        rule = rule_from_text("r", "B: b(X, Y) -> A: a(X, Y)")
        with pytest.raises(RuleError):
            rule.body_query_for("Z")

    def test_body_relations_at(self):
        rule = rule_from_text(
            "m", "B: b(X, Y), b(Y, Z), D: d(Z, W) -> C: c(X, W)"
        )
        assert rule.body_relations_at("B") == ("b",)
        assert rule.body_relations_at("D") == ("d",)

    def test_query_property_round_trips_head_and_body(self):
        rule = rule_from_text("r2", "B: b(X, Y), b(Y, Z) -> C: c(X, Z)")
        query = rule.query
        assert query.head.relation == "c"
        assert len(query.body) == 2
