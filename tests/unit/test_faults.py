"""Units of the fault-injection subsystem: plans, injectors, retry, reconcile.

Everything here runs in-process with no engines: the JSON round-trip and
validation of :class:`FaultPlan`/:class:`FaultSpec`, the arming/firing state
machine of the coordinator and worker injectors against fake pools, the
retry-with-backoff helper, and the change-log arithmetic the reconciliation
pass builds on.  The end-to-end behaviour (real engines, real processes)
lives in ``tests/chaos/``.
"""

import pytest

from repro.coordination.changeset import ChangeSet
from repro.errors import FaultError, NetworkError, PartitionError
from repro.faults import (
    NULL_INJECTOR,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    WorkerFrameInjector,
    injector_of,
    retry_call,
)
from repro.obs.metrics import MetricsRegistry


class FakePool:
    """The minimum pool surface the coordinator injector fires against."""

    def __init__(self, shard_count=2, hosts=None):
        self.shard_count = shard_count
        self.killed = []
        self._hosts = hosts
        if hosts is not None:
            self.host_of = lambda shard: hosts[shard % len(hosts)]

    def kill_worker(self, shard):
        self.killed.append(shard)


class TestFaultSpecValidation:
    def test_rejects_unknown_kind_and_phase(self):
        with pytest.raises(FaultError):
            FaultSpec(kind="meteor_strike")
        with pytest.raises(FaultError):
            FaultSpec(kind="kill_worker", phase="lunch")

    def test_frame_faults_only_fire_in_chase(self):
        with pytest.raises(FaultError):
            FaultSpec(kind="drop_frame", phase="sync")
        FaultSpec(kind="drop_frame", phase="chase")  # fine

    def test_rejects_negative_counts_and_delays(self):
        with pytest.raises(FaultError):
            FaultSpec(kind="kill_worker", run_index=-1)
        with pytest.raises(FaultError):
            FaultSpec(kind="delay_frame", count=0)
        with pytest.raises(FaultError):
            FaultSpec(kind="delay_frame", delay=-0.1)

    def test_plan_validates_budgets(self):
        with pytest.raises(FaultError):
            FaultPlan(max_cold_reruns=-1)
        with pytest.raises(FaultError):
            FaultPlan(send_retries=-2)
        with pytest.raises(FaultError):
            FaultPlan(backoff=-0.5)


class TestFaultPlanJson:
    def test_round_trip_preserves_everything(self):
        plan = FaultPlan(
            seed=42,
            max_cold_reruns=2,
            send_retries=3,
            backoff=0.125,
            faults=[
                FaultSpec(kind="kill_worker", phase="sync", shard=1, run_index=2),
                FaultSpec(kind="drop_frame", phase="chase", count=4, delay=0.01),
                FaultSpec(kind="partition", phase="quiescence", heal_after=None),
            ],
        )
        assert FaultPlan.from_json_dict(plan.to_json_dict()) == plan

    def test_dump_and_load_paths(self, tmp_path):
        plan = FaultPlan(seed=7, faults=[FaultSpec(kind="kill_worker")])
        path = tmp_path / "plan.json"
        plan.dump_json(path)
        assert FaultPlan.load_json(path) == plan
        assert FaultPlan.load_json(path.read_text(encoding="utf-8")) == plan

    def test_rejects_unknown_fields_and_bad_format(self):
        good = FaultPlan(seed=1).to_json_dict()
        with pytest.raises(FaultError):
            FaultPlan.from_json_dict({**good, "surprise": 1})
        with pytest.raises(FaultError):
            FaultPlan.from_json_dict({**good, "format": "repro-faults/99"})
        with pytest.raises(FaultError):
            FaultSpec.from_json_dict({"kind": "kill_worker", "oops": True})
        with pytest.raises(FaultError):
            FaultSpec.from_json_dict({"phase": "chase"})  # kind is required


class TestNullInjector:
    def test_discovery_falls_back_to_the_null_injector(self):
        class Bare:
            pass

        assert injector_of(Bare()) is NULL_INJECTOR

        class WithInjector:
            fault_injector = "sentinel"

        assert injector_of(WithInjector()) == "sentinel"

    def test_null_injector_is_inert(self):
        NULL_INJECTOR.start_run()
        NULL_INJECTOR.fire("chase", FakePool())
        NULL_INJECTOR.check_partition("h:1")
        assert not NULL_INJECTOR.enabled
        assert NULL_INJECTOR.should_rerun(NetworkError("x")) is False
        assert NULL_INJECTOR.worker_plan() is None
        assert NULL_INJECTOR.retry_policy is None


class TestFaultInjector:
    def test_fires_only_armed_run_and_phase(self):
        plan = FaultPlan(
            faults=[
                FaultSpec(kind="kill_worker", phase="chase", shard=1, run_index=1)
            ]
        )
        injector = FaultInjector(plan, MetricsRegistry())
        pool = FakePool()
        injector.start_run()  # run 0: not armed
        injector.fire("chase", pool)
        assert pool.killed == []
        injector.start_run()  # run 1: armed, but only for its phase
        injector.fire("sync", pool)
        assert pool.killed == []
        injector.fire("chase", pool)
        assert pool.killed == [1]
        injector.fire("chase", pool)  # consumed at fire time
        assert pool.killed == [1]

    def test_random_victim_is_seeded(self):
        def victim(seed):
            plan = FaultPlan(
                seed=seed, faults=[FaultSpec(kind="kill_worker", phase="chase")]
            )
            injector = FaultInjector(plan, MetricsRegistry())
            pool = FakePool(shard_count=8)
            injector.start_run()
            injector.fire("chase", pool)
            return pool.killed[0]

        assert victim(123) == victim(123)
        assert any(victim(seed) != victim(123) for seed in range(10))

    def test_shard_out_of_range_is_loud(self):
        plan = FaultPlan(faults=[FaultSpec(kind="kill_worker", shard=5)])
        injector = FaultInjector(plan, MetricsRegistry())
        injector.start_run()
        with pytest.raises(FaultError):
            injector.fire("chase", FakePool(shard_count=2))

    def test_partition_needs_a_socket_pool(self):
        plan = FaultPlan(faults=[FaultSpec(kind="partition", phase="chase")])
        injector = FaultInjector(plan, MetricsRegistry())
        injector.start_run()
        with pytest.raises(FaultError, match="socket"):
            injector.fire("chase", FakePool())

    def test_partition_blocks_then_heals(self):
        plan = FaultPlan(
            faults=[
                FaultSpec(kind="partition", phase="chase", heal_after=0.05)
            ]
        )
        registry = MetricsRegistry()
        injector = FaultInjector(plan, registry)
        pool = FakePool(shard_count=1, hosts=["h:1"])
        injector.start_run()
        injector.fire("chase", pool)
        with pytest.raises(PartitionError, match="h:1"):
            injector.check_partition("h:1")
        injector.check_partition("other:2")  # unpartitioned hosts pass
        import time

        time.sleep(0.06)
        injector.check_partition("h:1")  # deadline passed: heals, no raise
        assert registry.total("repro_fault_partition_heals_total") == 1

    def test_heal_all_lifts_permanent_partitions(self):
        plan = FaultPlan(
            faults=[FaultSpec(kind="partition", phase="chase", heal_after=None)]
        )
        injector = FaultInjector(plan, MetricsRegistry())
        pool = FakePool(shard_count=1, hosts=["h:1"])
        injector.start_run()
        injector.fire("chase", pool)
        with pytest.raises(PartitionError):
            injector.check_partition("h:1")
        injector.heal_all()
        injector.check_partition("h:1")

    def test_rerun_budget_depletes(self):
        plan = FaultPlan(max_cold_reruns=2)
        registry = MetricsRegistry()
        injector = FaultInjector(plan, registry)
        error = NetworkError("boom")
        assert injector.should_rerun(error) is True
        assert injector.should_rerun(error) is True
        assert injector.should_rerun(error) is False
        assert registry.total("repro_fault_detected_total") == 3
        assert registry.total("repro_fault_cold_reruns_total") == 2

    def test_retry_policy_reflects_the_plan(self):
        assert FaultInjector(FaultPlan(), MetricsRegistry()).retry_policy is None
        policy = FaultInjector(
            FaultPlan(send_retries=3, backoff=0.2), MetricsRegistry()
        ).retry_policy
        assert policy is not None
        assert policy.attempts == 3
        assert policy.backoff == 0.2


class TestWorkerPlanRebase:
    def test_worker_plan_rebases_to_the_current_run(self):
        plan = FaultPlan(
            faults=[
                FaultSpec(kind="drop_frame", phase="chase", run_index=0),
                FaultSpec(kind="delay_frame", phase="chase", run_index=1),
                FaultSpec(kind="kill_worker", phase="chase", run_index=1),
            ]
        )
        injector = FaultInjector(plan, MetricsRegistry())
        injector.start_run()  # run 0
        shipped = injector.worker_plan()
        assert [spec.run_index for spec in shipped.faults] == [0, 1]
        injector.start_run()  # run 1: the run-0 drop is behind us
        shipped = injector.worker_plan()
        assert [(spec.kind, spec.run_index) for spec in shipped.faults] == [
            ("delay_frame", 0)
        ]
        injector.start_run()  # run 2: no frame faults left
        assert injector.worker_plan() is None

    def test_worker_plan_is_none_without_frame_faults(self):
        plan = FaultPlan(faults=[FaultSpec(kind="kill_worker")])
        injector = FaultInjector(plan, MetricsRegistry())
        injector.start_run()
        assert injector.worker_plan() is None


class TestWorkerFrameInjector:
    def test_consumes_counted_faults_in_order(self):
        plan = FaultPlan(
            faults=[
                FaultSpec(kind="drop_frame", phase="chase", count=2, delay=0.5),
                FaultSpec(kind="delay_frame", phase="chase", count=1, delay=0.25),
            ]
        )
        registry = MetricsRegistry()
        injector = WorkerFrameInjector(plan, 0, registry)
        injector.start_run()
        assert [injector.frame_fault() for _ in range(4)] == [0.5, 0.5, 0.25, 0.0]
        assert registry.total("repro_fault_frames_dropped_total") == 2
        assert registry.total("repro_fault_frames_delayed_total") == 1

    def test_filters_by_shard(self):
        plan = FaultPlan(
            faults=[FaultSpec(kind="drop_frame", phase="chase", shard=1)]
        )
        other = WorkerFrameInjector(plan, 0, MetricsRegistry())
        other.start_run()
        assert other.frame_fault() == 0.0
        target = WorkerFrameInjector(plan, 1, MetricsRegistry())
        target.start_run()
        assert target.frame_fault() > 0.0


class TestRetryCall:
    def test_returns_on_first_success_without_sleeping(self):
        policy = RetryPolicy(attempts=3, backoff=10.0)  # would be felt if slept
        assert retry_call(lambda: "ok", policy=policy) == "ok"

    def test_retries_then_succeeds(self):
        attempts = []
        noted = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise NetworkError("not yet")
            return "done"

        policy = RetryPolicy(attempts=4, backoff=0.001)
        result = retry_call(
            flaky, policy=policy, on_retry=lambda e: noted.append(e)
        )
        assert result == "done"
        assert len(attempts) == 3
        assert len(noted) == 2

    def test_exhausted_budget_reraises_the_last_error(self):
        policy = RetryPolicy(attempts=2, backoff=0.001)
        with pytest.raises(NetworkError, match="always"):
            retry_call(
                lambda: (_ for _ in ()).throw(NetworkError("always")),
                policy=policy,
            )

    def test_non_retryable_errors_pass_through_immediately(self):
        calls = []

        def bad():
            calls.append(1)
            raise ValueError("not a network problem")

        with pytest.raises(ValueError):
            retry_call(bad, policy=RetryPolicy(attempts=5, backoff=0.001))
        assert len(calls) == 1

    def test_backoff_schedule_grows_and_caps(self):
        policy = RetryPolicy(
            attempts=5, backoff=0.1, factor=2.0, max_backoff=0.3
        )
        assert policy.delays() == [0.1, 0.2, 0.3, 0.3, 0.3]

    def test_policy_validation(self):
        with pytest.raises(FaultError):
            RetryPolicy(attempts=-1)
        with pytest.raises(FaultError):
            RetryPolicy(attempts=1, backoff=-1.0)
        # Zero attempts is a valid no-retry policy: one call, no sleeps.
        assert RetryPolicy(attempts=0).delays() == []


class TestChangeSetUnion:
    def test_union_merges_and_canonicalises(self):
        left = ChangeSet(inserts={"a": {"r": (("1",), ("2",))}})
        right = ChangeSet(inserts={"a": {"r": (("2",), ("3",))}, "b": {"s": (("9",),)}})
        merged = left.union(right)
        assert merged.inserts["a"]["r"] == (("1",), ("2",), ("3",))
        assert merged.inserts["b"]["s"] == (("9",),)
        assert left.union(right) == right.union(left)
        assert merged.union(merged) == merged

    def test_union_ors_the_flags(self):
        flagged = ChangeSet(removals=True).union(ChangeSet(rule_changes=True))
        assert flagged.removals and flagged.rule_changes
        assert not flagged.incremental_ok


class TestMetricsRegistryTotal:
    def test_total_sums_across_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("hits", {"kind": "a"}).inc(2)
        registry.counter("hits", {"kind": "b"}).inc(3)
        registry.counter("other").inc(10)
        assert registry.total("hits") == 5
        assert registry.total("missing") == 0
