"""Session-level memoization of the reference fix-points (ROADMAP item)."""

from repro.api import ScenarioSpec, Session
from repro.coordination.rule import rule_from_text
from repro.workloads.topologies import tree_topology


def tree_session(**settings) -> Session:
    spec = ScenarioSpec.from_topology(tree_topology(2, 2), records_per_node=6, seed=3)
    return Session.from_spec(spec, **settings)


class TestStrategyCache:
    def test_second_reference_update_is_served_from_cache(self):
        session = tree_session()
        first = session.update("centralized")
        second = session.update("centralized")
        assert "cache_hit" not in first.extras
        assert second.extras["cache_hit"] is True
        assert second.ground_databases() == first.ground_databases()
        assert session.cache_info()["hits"] == 1
        assert session.cache_info()["misses"] == 1

    def test_different_strategies_cache_separately(self):
        session = tree_session()
        session.update("centralized")
        acyclic = session.update("acyclic")
        assert "cache_hit" not in acyclic.extras
        assert session.cache_info()["size"] == 2

    def test_different_options_cache_separately(self):
        session = tree_session()
        session.update("querytime", node="n00")
        miss = session.update("querytime", node="n01")
        hit = session.update("querytime", node="n00")
        assert "cache_hit" not in miss.extras
        assert hit.extras["cache_hit"] is True

    def test_distributed_strategy_never_caches(self):
        session = tree_session()
        session.run("discovery")
        session.update()
        second = session.update()
        assert "cache_hit" not in second.extras
        assert session.cache_info()["size"] == 0

    def test_data_change_invalidates(self):
        session = tree_session()
        session.update("centralized")
        # A distributed run materialises imports, changing the data
        # fingerprint; the next reference update must recompute.
        session.run("discovery")
        session.update()
        recomputed = session.update("centralized")
        assert "cache_hit" not in recomputed.extras

    def test_add_rule_invalidates(self):
        # addLink installs a rule at run time (Section 4); the rules part of
        # the fingerprint changes, so cached fix-points are never served
        # against the new rule set.
        session = tree_session()
        session.update("centralized")
        session.system.add_rule(
            rule_from_text(
                "extra", "n03: pub(K, TI, AU, YR, VE) -> n00: pub(K, TI, AU, YR, VE)"
            )
        )
        recomputed = session.update("centralized")
        assert "cache_hit" not in recomputed.extras

    def test_remove_rule_invalidates(self):
        session = tree_session()
        session.update("centralized")
        rule_id = session.rules()[0].rule_id
        session.system.remove_rule(rule_id)
        recomputed = session.update("centralized")
        assert "cache_hit" not in recomputed.extras

    def test_cache_can_be_disabled(self):
        session = tree_session(cache_strategies=False)
        session.update("centralized")
        second = session.update("centralized")
        assert "cache_hit" not in second.extras
        assert session.cache_info()["size"] == 0

    def test_clear_strategy_cache(self):
        session = tree_session()
        session.update("centralized")
        session.clear_strategy_cache()
        recomputed = session.update("centralized")
        assert "cache_hit" not in recomputed.extras

    def test_cache_is_bounded(self):
        session = tree_session()
        session._CACHE_LIMIT = 2
        session.update("querytime", node="n00")
        session.update("querytime", node="n01")
        session.update("querytime", node="n02")
        assert session.cache_info()["size"] == 2
        # n00 was evicted (LRU); n02 is still warm.
        hit = session.update("querytime", node="n02")
        assert hit.extras["cache_hit"] is True
        miss = session.update("querytime", node="n00")
        assert "cache_hit" not in miss.extras
