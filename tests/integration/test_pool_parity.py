"""State parity of the persistent worker pool against the synchronous reference.

The pooled engine's acceptance bar extends the multiproc one: whatever the
partitioning, however many runs share the warm workers, and whatever changes
between those runs (new facts, ``addLink``, ``deleteLink``), the
:class:`~repro.sharding.pool.PooledEngine` must keep every run's final
per-node ground state identical to a :class:`~repro.api.engine.SyncEngine`
session executing the *same sequence* on the paper's three topology
families and the Section 2 example, at K=1 (one persistent worker) and K=4
(real cross-process traffic).  On top of parity, warmth itself is asserted:
worker PIDs stay stable across runs and only deltas are re-shipped.

These tests spawn real worker processes (``multiprocessing`` spawn), so each
pool pays interpreter start-up once; topologies are kept small and runs are
batched onto one warm pool wherever possible.
"""

import pytest

from repro.api import ScenarioSpec, Session
from repro.coordination.rule import rule_from_text
from repro.core.fixpoint import ground_part
from repro.workloads.scenarios import (
    paper_example_data,
    paper_example_rules,
    paper_example_schemas,
)
from repro.workloads.topologies import (
    clique_topology,
    layered_topology,
    tree_topology,
)

TOPOLOGIES = {
    "tree": lambda: tree_topology(2, 2),  # 7 nodes
    "layered": lambda: layered_topology(2, 3, seed=1),  # 9 nodes
    "clique": lambda: clique_topology(4),  # 12 import edges, cyclic
}


def _run(spec: ScenarioSpec):
    session = Session.from_spec(spec)
    session.run("discovery")
    result = session.update()
    return session, result


def _filler_rows(system, node, relation, count=2, tag="warm"):
    """Well-typed new rows for one relation of one node."""
    arity = len(
        next(
            schema for schema in system.node(node).database.schema
            if schema.name == relation
        ).attributes
    )
    return [
        tuple(f"{tag}-{i}-{k}" for k in range(arity)) for i in range(count)
    ]


def _cross_rule(system, rule_id="warm-add"):
    """A new rule importing the last node's first relation into the first node."""
    nodes = sorted(system.nodes)
    target, source = nodes[0], nodes[-1]
    source_relation = sorted(system.node(source).database.facts())[0]
    arity = len(
        next(
            schema for schema in system.node(source).database.schema
            if schema.name == source_relation
        ).attributes
    )
    target_relation, head_arity = next(
        (schema.name, len(schema.attributes))
        for schema in system.node(target).database.schema
        if len(schema.attributes) <= arity
    )
    body = ", ".join(f"V{i}" for i in range(arity))
    head = ", ".join(f"V{i}" for i in range(head_arity))
    return rule_from_text(
        rule_id,
        f"{source}: {source_relation}({body}) -> {target}: {target_relation}({head})",
    )


class TestPooledParity:
    @pytest.mark.parametrize("family", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("shards", [1, 4])
    def test_pooled_matches_sync_on_dblp_topologies(self, family, shards):
        spec = ScenarioSpec.from_topology(
            TOPOLOGIES[family](), records_per_node=5, seed=7
        )
        _sync_session, sync_result = _run(spec)
        pooled_spec = spec.with_(transport="pooled", shards=shards)
        with Session.from_spec(pooled_spec) as session:
            session.run("discovery")
            pooled_result = session.update()
            assert pooled_result.engine == "pooled"
            assert (
                pooled_result.ground_databases() == sync_result.ground_databases()
            )
            traffic = pooled_result.stats.sharding
            assert traffic is not None
            if shards == 1:
                assert traffic.cross_shard_messages == 0
            else:
                assert traffic.cross_shard_messages > 0

    @pytest.mark.parametrize("shards", [1, 4])
    def test_pooled_matches_sync_on_the_paper_example(self, shards):
        # Cyclic, with labelled nulls invented in one process and compared in
        # another — and here additionally chased twice over the same warm
        # workers, which must not mint spurious new witnesses.
        spec = ScenarioSpec.of(
            paper_example_schemas(),
            paper_example_rules(),
            paper_example_data(),
            super_peer="A",
        )
        _sync_session, sync_result = _run(spec)
        pooled_spec = spec.with_(transport="pooled", shards=shards)
        with Session.from_spec(pooled_spec) as session:
            session.run("discovery")
            session.update()
            repeat = session.update()
            assert repeat.ground_databases() == sync_result.ground_databases()

    @pytest.mark.parametrize("shards", [1, 4])
    def test_warm_runs_stay_in_parity_across_link_changes(self, shards):
        """addLink / deleteLink / inserts between runs on one warm pool.

        The sequence — update, insert new facts, update, addLink, update,
        deleteLink, update — is mirrored step by step on a sync session, and
        every step's ground state must match.  The pool must survive the
        whole sequence warm (modulo a re-plan restart, which is allowed but
        must stay invisible in the results).
        """
        spec = ScenarioSpec.from_topology(
            tree_topology(2, 2), records_per_node=3, seed=1
        )
        sync_session = Session.from_spec(spec)
        with Session.from_spec(spec.with_(transport="pooled", shards=shards)) as pooled:
            def step(mutate=None):
                for session in (sync_session, pooled):
                    if mutate is not None:
                        mutate(session.system)
                    session.update()
                assert ground_part(pooled.databases()) == ground_part(
                    sync_session.databases()
                )

            sync_session.run("discovery")
            pooled.run("discovery")
            step()

            leaf = sorted(spec.schemas)[-1]
            relation = sorted(spec.data[leaf])[0]
            rows = _filler_rows(sync_session.system, leaf, relation)
            step(lambda system: system.load_data({leaf: {relation: rows}}))

            rule = _cross_rule(sync_session.system)
            step(lambda system: system.add_rule(rule))

            step(lambda system: system.remove_rule(rule.rule_id))

    def test_workers_stay_warm_across_runs(self):
        """Repeat runs reuse the same worker processes (that is the point)."""
        spec = ScenarioSpec.from_topology(
            tree_topology(2, 2), records_per_node=3, seed=0
        ).with_(transport="pooled", shards=2)
        with Session.from_spec(spec, capture_deltas=False) as session:
            session.run("update")
            pids = session.engine.pool.worker_pids
            session.run("update")
            session.run("update")
            assert session.engine.pool.worker_pids == pids
            assert session.engine.pool.alive

    def test_completion_times_stay_monotone_across_warm_runs(self):
        # Worker virtual clocks persist like the in-process transports', so
        # consecutive runs report non-decreasing simulated completion times.
        spec = ScenarioSpec.from_topology(
            tree_topology(2, 2), records_per_node=3, seed=0
        ).with_(transport="pooled", shards=2)
        with Session.from_spec(spec, capture_deltas=False) as session:
            first = session.run("update")
            second = session.run("update")
            assert second.completion_time >= first.completion_time

    def test_pooled_reaches_closure_and_satisfies_rules(self):
        from repro.core.fixpoint import all_nodes_closed, satisfies_all_rules

        spec = ScenarioSpec.from_topology(
            tree_topology(2, 2), records_per_node=5, seed=7
        ).with_(transport="pooled", shards=4)
        with Session.from_spec(spec) as session:
            session.run("discovery")
            session.update()
            assert all_nodes_closed(session.system)
            assert satisfies_all_rules(session.system)

    def test_spec_round_trips_the_pooled_transport(self, tmp_path):
        spec = ScenarioSpec.from_topology(
            tree_topology(1, 2), records_per_node=2, seed=0
        ).with_(transport="pooled", shards=2)
        path = tmp_path / "spec.json"
        spec.dump_json(path)
        loaded = ScenarioSpec.load_json(path)
        assert loaded.transport == "pooled"
        assert loaded.shards == 2
        with Session.from_spec(loaded) as session:
            result = session.run("update")
            assert result.engine == "pooled"
