"""State parity of the sharded engine against the synchronous reference.

The acceptance bar of the sharding subsystem: whatever the partitioning,
``ShardedEngine`` must drive the update protocol to the same per-node
relation state as ``SyncEngine`` (compared on the null-free ground part, the
same notion every other parity suite uses) on the paper's three topology
families, at K=1 (degenerate single shard) and K=4 (real cross-shard
traffic).
"""

import pytest

from repro.api import ScenarioSpec, Session
from repro.workloads.scenarios import (
    paper_example_data,
    paper_example_rules,
    paper_example_schemas,
)
from repro.workloads.topologies import (
    clique_topology,
    layered_topology,
    tree_topology,
)

TOPOLOGIES = {
    "tree": lambda: tree_topology(2, 2),  # 7 nodes
    "layered": lambda: layered_topology(2, 3, seed=1),  # 9 nodes
    "clique": lambda: clique_topology(4),  # 12 import edges, cyclic
}


def _run(spec: ScenarioSpec):
    session = Session.from_spec(spec)
    session.run("discovery")
    result = session.update()
    return session, result


class TestShardedParity:
    @pytest.mark.parametrize("family", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("shards", [1, 4])
    def test_sharded_matches_sync_on_dblp_topologies(self, family, shards):
        spec = ScenarioSpec.from_topology(
            TOPOLOGIES[family](), records_per_node=5, seed=7
        )
        _sync_session, sync_result = _run(spec)
        sharded_session, sharded_result = _run(spec.with_(shards=shards))

        assert sharded_result.engine == "sharded"
        assert sync_result.engine == "sync"
        assert (
            sharded_result.ground_databases() == sync_result.ground_databases()
        )
        traffic = sharded_result.stats.sharding
        assert traffic is not None
        assert traffic.shard_count == min(
            shards, len(sharded_session.system.nodes)
        )
        if shards == 1:
            assert traffic.cross_shard_messages == 0

    @pytest.mark.parametrize("shards", [1, 4])
    def test_sharded_matches_sync_on_the_paper_example(self, shards):
        # The Section 2 example is cyclic and generates labelled nulls, so it
        # exercises the chase across the cut.
        spec = ScenarioSpec.of(
            paper_example_schemas(),
            paper_example_rules(),
            paper_example_data(),
            super_peer="A",
        )
        _sync_session, sync_result = _run(spec)
        _sharded_session, sharded_result = _run(spec.with_(shards=shards))
        assert (
            sharded_result.ground_databases() == sync_result.ground_databases()
        )

    def test_all_nodes_reach_closure_under_sharding(self):
        from repro.core.fixpoint import all_nodes_closed, satisfies_all_rules

        spec = ScenarioSpec.from_topology(
            tree_topology(2, 2), records_per_node=5, seed=7, shards=4
        )
        session, _result = _run(spec)
        assert all_nodes_closed(session.system)
        assert satisfies_all_rules(session.system)

    def test_discovery_parity_under_sharding(self):
        # Topology discovery also runs over the sharded transport; the Paths
        # relations it materialises must match the synchronous run.
        spec = ScenarioSpec.of(
            paper_example_schemas(),
            paper_example_rules(),
            paper_example_data(),
            super_peer="A",
        )
        sync_session = Session.from_spec(spec)
        sync_session.run("discovery")
        sharded_session = Session.from_spec(spec.with_(shards=3))
        sharded_session.run("discovery")
        sync_paths = {
            node_id: node.state.maximal_paths()
            for node_id, node in sync_session.system.nodes.items()
        }
        sharded_paths = {
            node_id: node.state.maximal_paths()
            for node_id, node in sharded_session.system.nodes.items()
        }
        assert sharded_paths == sync_paths
