"""Integration tests of the protocols over the asyncio transport."""

import asyncio

from repro.core.fixpoint import ground_part
from repro.core.superpeer import SuperPeer
from repro.core.system import P2PSystem
from repro.coordination.rule import rule_from_text
from repro.database.schema import DatabaseSchema, RelationSchema
from repro.network.latency import UniformLatency
from repro.workloads.scenarios import build_paper_example


def run(coro):
    return asyncio.run(coro)


class TestAsyncUpdate:
    def test_paper_example_async_matches_sync(self):
        async def async_run():
            system = build_paper_example(
                transport="async", propagation="once",
                latency=UniformLatency(0.2, 2.0, seed=11),
            )
            await system.run_discovery_async(origins=["A"])
            await system.run_global_update_async()
            return system.databases()

        async_result = run(async_run())

        sync_system = build_paper_example(propagation="once")
        SuperPeer(sync_system, "A").run_discovery()
        sync_system.run_global_update()

        assert ground_part(async_result) == ground_part(sync_system.databases())

    def test_async_chain_update(self):
        async def scenario():
            schemas = {
                name: DatabaseSchema([RelationSchema("item", ["x", "y"])])
                for name in ("a", "b", "c")
            }
            rules = [
                rule_from_text("ab", "b: item(X, Y) -> a: item(X, Y)"),
                rule_from_text("bc", "c: item(X, Y) -> b: item(X, Y)"),
            ]
            data = {"c": {"item": [("1", "2")]}}
            system = P2PSystem.build(
                schemas, rules, data,
                transport="async",
                latency=UniformLatency(0.1, 1.0, seed=3),
            )
            snapshot = await system.run_global_update_async()
            return system, snapshot

        system, snapshot = run(scenario())
        assert system.node("a").database.relation("item").rows() == {("1", "2")}
        assert snapshot.total_messages > 0

    def test_async_discovery_populates_paths(self):
        async def scenario():
            system = build_paper_example(transport="async", with_data=False)
            await system.run_discovery_async(origins=["A"])
            return {"".join(p) for p in system.node("A").state.maximal_paths()}

        assert run(scenario()) == {"ABE", "ABCA", "ABCB", "ABCDA"}

    def test_async_statistics_recorded(self):
        async def scenario():
            system = build_paper_example(transport="async")
            await system.run_global_update_async()
            return system.snapshot_stats()

        snapshot = run(scenario())
        assert snapshot.total_messages > 0
        assert snapshot.total_tuples_inserted > 0
