"""Integration tests: the serving front-end over real sockets and warm pools.

One module-scoped server hosts two warm (pooled) tenants; the tests drive it
the way a deployment would — concurrent closed-loop clients over HTTP, the
WebSocket event channel, the Prometheus exposition — and pin the serving
contract: interleaved concurrent updates and queries end at the *same*
ground fix-point a sequential session reaches, warm insert-only updates take
the incremental path (visible in ``repro_incremental_*`` counters), and
overload rejects typed 429s instead of hanging.
"""

import json
import threading

import pytest

from repro.api.session import Session
from repro.api.spec import ScenarioSpec
from repro.experiments import serving
from repro.serve import ServeClient, ServeError, ServerConfig, ServerHandle
from repro.workloads.scenarios import (
    paper_example_data,
    paper_example_rules,
    paper_example_schemas,
)
from repro.workloads.topologies import tree_topology


def paper_spec() -> ScenarioSpec:
    return ScenarioSpec.of(
        paper_example_schemas(),
        paper_example_rules(),
        paper_example_data(),
        super_peer="A",
        name="paper-example",
    )


def tree_spec() -> ScenarioSpec:
    return ScenarioSpec.from_topology(
        tree_topology(2, 2), records_per_node=2, seed=7
    )


@pytest.fixture(scope="module")
def server():
    with ServerHandle(ServerConfig(port=0, queue_depth=64)) as handle:
        client = ServeClient(handle.host, handle.port)
        client.create_tenant("paper", json.loads(paper_spec().dump_json()))
        client.create_tenant("tree", json.loads(tree_spec().dump_json()))
        yield handle, client
        client.close()


class TestServing:
    def test_tenants_are_warm_pooled(self, server):
        _handle, client = server
        for name in ("paper", "tree"):
            status = client.status(name)
            assert status["state"] == "ready"
            assert status["engine"] == "pooled"

    def test_concurrent_interleaved_load_matches_sequential_fixpoint(
        self, server
    ):
        """The acceptance bar: N clients × updates+queries, zero 5xx, parity."""
        handle, client = server
        clients, operations = 8, 3
        inserted: list[tuple[str, str]] = []
        failures: list[str] = []
        lock = threading.Lock()

        def loop(client_id: int) -> None:
            own = ServeClient(handle.host, handle.port)
            try:
                for op in range(operations):
                    row = (f"c{client_id}", f"op{op}")
                    try:
                        outcome = own.update(
                            "paper", inserts={"E": {"e": [list(row)]}}
                        )
                        assert outcome["mode"] == "incremental", outcome
                        answers = own.query(
                            "paper", "B", "q(X, Y) :- b(X, Y)"
                        )
                        assert answers["count"] >= 7
                        with lock:
                            inserted.append(row)
                    except ServeError as error:
                        if error.status >= 500:
                            with lock:
                                failures.append(str(error))
                        elif error.status == 429:
                            # Bounded-queue rejections are allowed; the row
                            # was not applied, so don't record it.
                            pass
                        else:
                            with lock:
                                failures.append(str(error))
            finally:
                own.close()

        threads = [
            threading.Thread(target=loop, args=(i,)) for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures
        assert len(inserted) == clients * operations  # depth-64 queue: no 429s

        served = handle.app.manager.get("paper").session.system.databases()

        with Session.from_spec(paper_spec()) as sequential:
            sequential.run("update")
            for row in sorted(inserted):
                sequential.system.node("E").database.relation("e").insert(row)
            sequential.run("update")
            reference = sequential.system.databases()
        assert served == reference

    def test_incremental_counters_in_metrics(self, server):
        _handle, client = server
        client.update("tree", inserts=_tree_insert(client, tag="metrics"))
        text = client.metrics()
        lines = [
            line
            for line in text.splitlines()
            if line.startswith("repro_incremental_seed_rows_total")
        ]
        assert any('tenant="paper"' in line for line in lines), text[:2000]
        assert any('tenant="tree"' in line for line in lines)
        assert 'repro_serve_requests_total{' in text
        assert 'repro_serve_tenants{state="ready"} 2' in text

    def test_event_channel_streams_runs(self, server):
        handle, client = server
        with client.events("paper") as events:
            hello = events.next_event()
            assert hello["type"] == "hello"
            outcome = client.update(
                "paper", inserts={"E": {"e": [["ws-x", "ws-y"]]}}
            )
            assert outcome["mode"] == "incremental"
            event = events.next_event()
            assert event["tenant"] == "paper"
            assert event["type"] == "run"
            assert event["outcome"] == "ok"
            assert event["mode"] == "incremental"
            assert event["spans"], "run events carry the tracer's spans"

    def test_healthz_and_typed_errors_over_the_wire(self, server):
        _handle, client = server
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["tenants"]["ready"] == 2
        with pytest.raises(ServeError) as excinfo:
            client.status("ghost")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "unknown_tenant"
        with pytest.raises(ServeError) as excinfo:
            client.update("paper", inserts={"E": {"e": [["wrong"]]}})
        assert excinfo.value.status == 400

    def test_tenant_close_and_reload_lifecycle(self, server):
        handle, client = server
        spec_doc = json.loads(paper_spec().dump_json())
        client.create_tenant("ephemeral", spec_doc)
        assert client.status("ephemeral")["state"] == "ready"
        closed = client.close_tenant("ephemeral")
        assert closed["state"] == "closed"
        with pytest.raises(ServeError) as excinfo:
            client.status("ephemeral")
        assert excinfo.value.status == 404
        # The name is free again after a close.
        client.create_tenant("ephemeral", spec_doc)
        client.close_tenant("ephemeral")


def _tree_insert(client: ServeClient, *, tag: str) -> dict:
    """An insert document for the tree tenant's first single-body rule site."""
    spec = tree_spec()
    node, relation, arity = serving.feeding_site(spec)
    return {node: {relation: [[f"{tag}-{i}" for i in range(arity)]]}}


class TestServingExperiment:
    def test_e12_smoke(self, capsys):
        rows = serving.run_serving_sweep(
            records_per_node=2, clients=2, operations=2
        )
        assert [row.tenant for row in rows] == ["paper", "tree"]
        for row in rows:
            assert row.ok, row
            assert row.updates == 4
            assert row.incremental == 4
        table = serving.main(records_per_node=2, clients=2, operations=1)
        assert "E12" in table
        assert "incremental" in table
