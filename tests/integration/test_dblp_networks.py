"""Integration tests on the DBLP workload networks (the Section 5 configuration)."""

from repro.core.fixpoint import all_nodes_closed, verify_against_centralized
from repro.core.superpeer import SuperPeer
from repro.database.parser import parse_query
from repro.workloads.scenarios import build_dblp_network
from repro.workloads.topologies import (
    clique_topology,
    layered_topology,
    star_topology,
    tree_topology,
)


def run_network(spec, **kwargs):
    network = build_dblp_network(spec, **kwargs)
    super_peer = SuperPeer(network.system)
    super_peer.run_discovery()
    super_peer.run_global_update()
    return network


class TestTreeNetwork:
    def test_small_tree_matches_centralized(self):
        network = run_network(tree_topology(2, 2), records_per_node=10)
        report = verify_against_centralized(
            network.system, network.schemas(), network.rules, network.initial_data()
        )
        assert report.ok
        assert all_nodes_closed(network.system)

    def test_root_accumulates_every_publication(self):
        spec = tree_topology(2, 2)
        network = run_network(spec, records_per_node=10)
        root = spec.nodes[0]  # wide variant
        answers = network.system.local_query(
            root, parse_query("q(K) :- pub(K, T, A, Y, V)")
        )
        distinct_keys = {
            record.key for records in network.assignment.values() for record in records
        }
        assert len(answers) == len(distinct_keys)

    def test_leaves_keep_only_their_own_records(self):
        spec = tree_topology(2, 2)
        network = run_network(spec, records_per_node=10)
        leaf = spec.nodes[-1]
        leaf_keys_before = {record.key for record in network.assignment[leaf]}
        variant = spec.variant_of(leaf)
        relation = {"wide": "pub", "split": "article", "norm": "work"}[variant]
        rows = network.system.node(leaf).database.relation(relation).rows()
        assert len(rows) == len(leaf_keys_before)


class TestOtherTopologies:
    def test_star_network(self):
        network = run_network(star_topology(4), records_per_node=10)
        report = verify_against_centralized(
            network.system, network.schemas(), network.rules, network.initial_data()
        )
        assert report.ok

    def test_layered_network(self):
        network = run_network(layered_topology(2, width=2, seed=1), records_per_node=10)
        report = verify_against_centralized(
            network.system, network.schemas(), network.rules, network.initial_data()
        )
        assert report.ok

    def test_small_clique_every_node_gets_everything(self):
        spec = clique_topology(4)
        network = run_network(spec, records_per_node=8)
        distinct_keys = {
            record.key for records in network.assignment.values() for record in records
        }
        for node in spec.nodes:
            variant = spec.variant_of(node)
            relation = {"wide": "pub", "split": "article", "norm": "work"}[variant]
            rows = network.system.node(node).database.relation(relation).rows()
            assert len(rows) == len(distinct_keys)
        assert all_nodes_closed(network.system)

    def test_tree_of_31_nodes(self):
        # The paper's headline size; runs in about a second, so it stays in
        # the default gate (the registered `slow` marker is reserved for the
        # minutes-to-hours pathological cases excluded via pytest.ini).
        network = run_network(tree_topology(4, 2), records_per_node=15)
        assert all_nodes_closed(network.system)
        report = verify_against_centralized(
            network.system, network.schemas(), network.rules, network.initial_data()
        )
        assert report.ok


class TestOverlapDistribution:
    def test_overlap_reduces_inserted_tuples(self):
        spec = tree_topology(2, 2)
        disjoint = run_network(spec, records_per_node=20, overlap_probability=0.0)
        overlapping = run_network(
            spec, records_per_node=20, overlap_probability=1.0, overlap_fraction=0.5
        )
        inserted_disjoint = disjoint.system.snapshot_stats().total_tuples_inserted
        inserted_overlap = overlapping.system.snapshot_stats().total_tuples_inserted
        assert inserted_overlap < inserted_disjoint

    def test_overlap_network_still_correct(self):
        network = run_network(
            tree_topology(2, 2), records_per_node=10, overlap_probability=0.5
        )
        report = verify_against_centralized(
            network.system, network.schemas(), network.rules, network.initial_data()
        )
        assert report.ok
