"""Integration tests for dynamic network changes (Section 4, Theorems 2-3)."""

import pytest

from repro.coordination.rule import rule_from_text
from repro.core.dynamics import (
    AddLink,
    DeleteLink,
    NetworkChange,
    apply_change_interleaved,
    apply_change_operation,
    complete_envelope,
    is_complete_answer,
    is_separated_under_change,
    is_sound_answer,
    sound_envelope,
)
from repro.core.system import P2PSystem
from repro.database.schema import DatabaseSchema, RelationSchema
from repro.errors import ChangeError
from repro.experiments.dynamic_changes import run_dynamic_changes
from repro.experiments.separation import run_separation


def item_schemas(*names):
    return {
        name: DatabaseSchema([RelationSchema("item", ["x", "y"])]) for name in names
    }


def chain_setup():
    schemas = item_schemas("a", "b", "c")
    rules = [
        rule_from_text("ab", "b: item(X, Y) -> a: item(X, Y)"),
        rule_from_text("bc", "c: item(X, Y) -> b: item(X, Y)"),
    ]
    data = {"b": {"item": [("b1", "b2")]}, "c": {"item": [("c1", "c2")]}}
    return schemas, rules, data


class TestNetworkChangeObject:
    def test_building_and_lengths(self):
        change = NetworkChange()
        change.add_link(rule_from_text("x", "b: item(X, Y) -> a: item(X, Y)"))
        change.delete_link("a", "b", "ab")
        assert len(change) == 2
        assert len(change.added_rules) == 1
        assert change.deleted_rule_ids == ["ab"]

    def test_initial_subchange(self):
        change = NetworkChange()
        change.delete_link("a", "b", "r1").delete_link("a", "b", "r2")
        assert len(change.initial_subchange(1)) == 1
        with pytest.raises(ChangeError):
            change.initial_subchange(5)

    def test_subchange_for_nodes(self):
        change = NetworkChange()
        change.delete_link("a", "b", "r1").delete_link("x", "y", "r2")
        relevant = change.subchange_for(["a"])
        assert len(relevant) == 1
        assert relevant.deleted_rule_ids == ["r1"]

    def test_involved_nodes(self):
        add = AddLink(rule_from_text("x", "b: item(X, Y) -> a: item(X, Y)"))
        assert add.involved_nodes == frozenset({"a", "b"})
        delete = DeleteLink("a", "b", "r")
        assert delete.involved_nodes == frozenset({"a", "b"})


class TestApplyingChanges:
    def test_add_link_during_quiescence_triggers_import(self):
        schemas, rules, data = chain_setup()
        system = P2PSystem.build(schemas, rules, data)
        system.run_global_update()
        # New rule: a also imports directly from c.
        new_rule = rule_from_text("ac", "c: item(X, Y) -> a: item(Y, X)")
        apply_change_operation(system, AddLink(new_rule))
        system.transport.run()
        assert ("c2", "c1") in system.node("a").database.relation("item").rows()

    def test_delete_link_keeps_already_imported_data(self):
        schemas, rules, data = chain_setup()
        system = P2PSystem.build(schemas, rules, data)
        system.run_global_update()
        apply_change_operation(system, DeleteLink("a", "b", "ab"))
        system.transport.run()
        # Data imported through the deleted rule stays (Definition 9 allows it).
        assert ("b1", "b2") in system.node("a").database.relation("item").rows()
        assert "ab" not in system.registry

    def test_delete_mismatching_link_rejected(self):
        schemas, rules, data = chain_setup()
        system = P2PSystem.build(schemas, rules, data)
        with pytest.raises(ChangeError):
            apply_change_operation(system, DeleteLink("a", "c", "ab"))

    def test_interleaved_change_is_sound_and_complete(self):
        schemas, rules, data = chain_setup()
        system = P2PSystem.build(schemas, rules, data)
        change = (
            NetworkChange()
            .add_link(rule_from_text("ac", "c: item(X, Y) -> a: item(X, Y)"))
            .delete_link("b", "c", "bc")
        )
        for node_id in sorted(system.nodes):
            system.node(node_id).update.start()
        apply_change_interleaved(system, change, steps_between=2)

        measured = system.databases()
        upper = sound_envelope(schemas, rules, change, data)
        lower = complete_envelope(schemas, rules, change, data)
        assert is_sound_answer(measured, upper)
        assert is_complete_answer(measured, lower)
        assert system.transport.pending == 0

    def test_envelopes_are_ordered(self):
        schemas, rules, data = chain_setup()
        change = (
            NetworkChange()
            .add_link(rule_from_text("ac", "c: item(X, Y) -> a: item(X, Y)"))
            .delete_link("b", "c", "bc")
        )
        upper = sound_envelope(schemas, rules, change, data)
        lower = complete_envelope(schemas, rules, change, data)
        # The complete envelope is always contained in the sound envelope.
        assert is_sound_answer(lower, upper)


class TestSeparationUnderChange:
    def test_static_separation_helper(self):
        schemas, rules, data = chain_setup()
        change = NetworkChange().delete_link("a", "b", "ab")
        assert is_separated_under_change(["c"], ["a"], rules, change)
        assert not is_separated_under_change(["a"], ["c"], rules, change)

    def test_adding_a_link_can_break_separation(self):
        rules = [rule_from_text("ab", "b: item(X, Y) -> a: item(X, Y)")]
        change = NetworkChange().add_link(
            rule_from_text("bz", "z: item(X, Y) -> b: item(X, Y)")
        )
        assert not is_separated_under_change(["a"], ["z"], rules, change)
        assert is_separated_under_change(["z"], ["a"], rules, change)


class TestExperimentLevelTheorems:
    def test_theorem2_experiment(self):
        result = run_dynamic_changes(records_per_node=8, depth=2)
        assert result.theorem2_holds

    def test_theorem3_experiment(self):
        result = run_separation(records_per_node=6, clique_size=3, churn_rounds=4)
        assert result.theorem3_holds
        assert all(
            [result.separated, result.a_terminated, result.a_matches_isolated_run]
        )
