"""Integration tests of the update protocol on controlled small networks."""

import time

import pytest

from repro.analysis import analyze_parts, is_weakly_acyclic
from repro.baselines.centralized import centralized_update
from repro.coordination.rule import rule_from_text
from repro.core.fixpoint import (
    all_nodes_closed,
    ground_part,
    verify_against_centralized,
)
from repro.core.system import P2PSystem
from repro.core.update import join_fragments
from repro.database.nulls import is_null
from repro.database.schema import DatabaseSchema, RelationSchema
from repro.network.message import MessageType


def item_schemas(*names):
    return {
        name: DatabaseSchema([RelationSchema("item", ["x", "y"])]) for name in names
    }


class TestChainPropagation:
    def test_data_reaches_the_root(self, chain_system):
        chain_system.run_global_update()
        assert chain_system.node("a").database.relation("item").rows() == {
            ("1", "2"),
            ("3", "4"),
        }

    def test_all_nodes_close(self, chain_system):
        chain_system.run_global_update()
        assert all_nodes_closed(chain_system)

    def test_message_counts_are_bounded(self, chain_system):
        chain_system.run_global_update()
        stats = chain_system.snapshot_stats()
        # 2 rules, each needs at least one query+answer; pushes and re-pull
        # rounds stay within a small constant factor.
        assert stats.messages.by_type[MessageType.QUERY.value] >= 2
        assert stats.total_messages <= 40

    def test_leaf_node_unchanged(self, chain_system):
        chain_system.run_global_update()
        assert chain_system.node("c").database.relation("item").rows() == {
            ("1", "2"),
            ("3", "4"),
        }


class TestCyclicTwoNodeNetwork:
    def build(self):
        schemas = item_schemas("a", "b")
        rules = [
            rule_from_text("ab", "b: item(X, Y) -> a: item(X, Y)"),
            rule_from_text("ba", "a: item(X, Y) -> b: item(X, Y)"),
        ]
        data = {"a": {"item": [("a1", "a2")]}, "b": {"item": [("b1", "b2")]}}
        return P2PSystem.build(schemas, rules, data), schemas, rules, data

    def test_both_nodes_get_both_facts(self):
        system, schemas, rules, data = self.build()
        system.run_global_update()
        expected = {("a1", "a2"), ("b1", "b2")}
        assert system.node("a").database.relation("item").rows() == expected
        assert system.node("b").database.relation("item").rows() == expected

    def test_cycle_terminates_and_closes(self):
        system, *_ = self.build()
        system.run_global_update()
        assert all_nodes_closed(system)

    def test_matches_centralized(self):
        system, schemas, rules, data = self.build()
        system.run_global_update()
        assert verify_against_centralized(system, schemas, rules, data).ok


class TestMultiSourceRule:
    def build(self):
        schemas = {
            "a": DatabaseSchema([RelationSchema("joined", ["x", "z"])]),
            "b": DatabaseSchema([RelationSchema("left", ["x", "y"])]),
            "c": DatabaseSchema([RelationSchema("right", ["y", "z"])]),
        }
        rules = [
            rule_from_text("j", "b: left(X, Y), c: right(Y, Z) -> a: joined(X, Z)")
        ]
        data = {
            "b": {"left": [("1", "k"), ("2", "m")]},
            "c": {"right": [("k", "9"), ("k", "8")]},
        }
        return P2PSystem.build(schemas, rules, data), schemas, rules, data

    def test_cross_peer_join(self):
        system, *_ = self.build()
        system.run_global_update()
        assert system.node("a").database.relation("joined").rows() == {
            ("1", "9"),
            ("1", "8"),
        }

    def test_matches_centralized(self):
        system, schemas, rules, data = self.build()
        system.run_global_update()
        assert verify_against_centralized(system, schemas, rules, data).ok

    def test_join_fragments_requires_all_sources(self):
        rule = rule_from_text(
            "j", "b: left(X, Y), c: right(Y, Z) -> a: joined(X, Z)"
        )
        only_left = {"b": {("1", "k")}}
        assert join_fragments(rule, only_left) == set()
        both = {"b": {("1", "k")}, "c": {("k", "9")}}
        assert join_fragments(rule, both) == {("1", "9")}


class TestExistentialRules:
    def test_existential_chain_terminates(self):
        schemas = {
            "a": DatabaseSchema([RelationSchema("person", ["name", "org"])]),
            "b": DatabaseSchema([RelationSchema("author", ["name"])]),
        }
        rules = [rule_from_text("r", "b: author(X) -> a: person(X, O)")]
        data = {"b": {"author": [("ada",), ("bob",)]}}
        system = P2PSystem.build(schemas, rules, data)
        system.run_global_update()
        rows = system.node("a").database.relation("person").rows()
        assert len(rows) == 2
        assert all(is_null(org) for _name, org in rows)
        assert all_nodes_closed(system)

    @pytest.mark.slow
    def test_existential_cycle_terminates(self):
        # a imports from b and b imports from a, both inventing unknown values;
        # the projection check of A6 prevents an infinite chase.  The rotated
        # head (item(Y, Z)) keeps the chase alive for many rounds before the
        # projection check catches up, so this runs for >20 minutes — see the
        # bounded variant below for the seconds-scale version under the CI
        # gate.  The semi-naive incremental mode (docs/incremental.md) does
        # not rescue it either, so it stays slow-marked: this is a single
        # *cold* run whose cost is the pure derivation of genuinely new rows
        # round after round — every round's frontier is the whole previous
        # round's output, so "join only against the delta" is already what
        # the run amounts to, and there is no converged prior fix-point for
        # a warm delta-driven repeat to start from.
        schemas = item_schemas("a", "b")
        rules = [
            rule_from_text("ab", "b: item(X, Y) -> a: item(Y, Z)"),
            rule_from_text("ba", "a: item(X, Y) -> b: item(Y, Z)"),
        ]
        data = {"a": {"item": [("x0", "x1")]}}
        system = P2PSystem.build(schemas, rules, data)
        system.run_global_update()
        assert all_nodes_closed(system)
        # Ground part matches the centralized chase with the same check.
        reference = centralized_update(schemas, rules, data).snapshot()
        assert ground_part(system.databases()) == ground_part(reference)

    def test_existential_cycle_statically_classified_non_terminating(self):
        # The fast guard for the pathological network above: the static
        # analyzer classifies it as not weakly acyclic (diagnostic T001) in
        # well under a second, so the >20-minute slow test is no longer the
        # only thing standing between that rule shape and a hung run.
        schemas = item_schemas("a", "b")
        rules = [
            rule_from_text("ab", "b: item(X, Y) -> a: item(Y, Z)"),
            rule_from_text("ba", "a: item(X, Y) -> b: item(Y, Z)"),
        ]
        started = time.perf_counter()
        assert not is_weakly_acyclic(rules)
        report = analyze_parts(schemas, rules, {"a": {"item": [("x0", "x1")]}})
        assert time.perf_counter() - started < 1.0
        assert [d.code for d in report.errors] == ["T001"]

    def test_existential_cycle_bounded_terminates(self):
        # The bounded-size cycle: both rules keep the key in the universal
        # (first) position, so the A6 projection check rejects re-derivations
        # after one round trip and the mutual-import chase closes in a
        # handful of messages instead of the pathological variant's hours.
        schemas = item_schemas("a", "b")
        rules = [
            rule_from_text("ab", "b: item(X, Y) -> a: item(X, Z)"),
            rule_from_text("ba", "a: item(X, Y) -> b: item(X, Z)"),
        ]
        # The analyzer agrees this variant is safe to chase: weakly acyclic,
        # no termination diagnostics — the static twin of the run below.
        assert is_weakly_acyclic(rules)
        assert analyze_parts(schemas, rules).ok
        data = {"a": {"item": [("x0", "x1"), ("y0", "y1")]}}
        system = P2PSystem.build(schemas, rules, data)
        system.run_global_update()
        assert all_nodes_closed(system)
        b_rows = system.node("b").database.relation("item").rows()
        assert {row[0] for row in b_rows} == {"x0", "y0"}
        assert all(is_null(value) for _key, value in b_rows)
        reference = centralized_update(schemas, rules, data).snapshot()
        assert ground_part(system.databases()) == ground_part(reference)


class TestBuiltinsInRules:
    def test_inequality_filters_imported_tuples(self):
        schemas = item_schemas("a", "b")
        rules = [rule_from_text("r", "b: item(X, Y), X != Y -> a: item(X, Y)")]
        data = {"b": {"item": [("1", "1"), ("1", "2")]}}
        system = P2PSystem.build(schemas, rules, data)
        system.run_global_update()
        assert system.node("a").database.relation("item").rows() == {("1", "2")}

    def test_ordering_builtin(self):
        schemas = {
            "a": DatabaseSchema([RelationSchema("recent", ["k", "y"])]),
            "b": DatabaseSchema([RelationSchema("pub", ["k", "y"])]),
        }
        rules = [rule_from_text("r", "b: pub(K, Y), Y >= 2000 -> a: recent(K, Y)")]
        data = {"b": {"pub": [("p1", 1998), ("p2", 2003)]}}
        system = P2PSystem.build(schemas, rules, data)
        system.run_global_update()
        assert system.node("a").database.relation("recent").rows() == {("p2", 2003)}


class TestNodesWithoutRules:
    def test_isolated_node_closes_without_messages(self):
        schemas = item_schemas("a", "b", "lonely")
        rules = [rule_from_text("ab", "b: item(X, Y) -> a: item(X, Y)")]
        data = {"b": {"item": [("1", "2")]}, "lonely": {"item": [("9", "9")]}}
        system = P2PSystem.build(schemas, rules, data)
        system.run_global_update()
        assert system.node("lonely").is_update_closed
        assert system.node("lonely").database.relation("item").rows() == {("9", "9")}

    def test_mediator_node_with_empty_database(self):
        # b holds no data of its own but relays from c to a (the paper's
        # "node acts as a mediator" case: LDB may be absent, DBS must exist).
        system = P2PSystem.build(
            item_schemas("a", "b", "c"),
            [
                rule_from_text("ab", "b: item(X, Y) -> a: item(X, Y)"),
                rule_from_text("bc", "c: item(X, Y) -> b: item(X, Y)"),
            ],
            {"c": {"item": [("1", "2")]}},
        )
        system.run_global_update()
        assert system.node("a").database.relation("item").rows() == {("1", "2")}
