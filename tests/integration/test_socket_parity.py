"""State parity of the socket-backed engines against the synchronous reference.

The acceptance bar for the cross-machine engines mirrors the pool's:
whatever the partitioning (K=1 and K=4), however the shards are spread over
the hosts (two hosts, so K=4 co-hosts two workers per host *and* routes real
cross-host traffic through the coordinator), and whatever changes between
runs (new facts, ``addLink``, ``deleteLink``), both
:class:`~repro.sharding.sockets.SocketEngine` (one-shot) and
:class:`~repro.sharding.sockets.PooledSocketEngine` (warm) must keep every
run's final per-node ground state identical to a
:class:`~repro.api.engine.SyncEngine` session executing the same sequence on
the paper's three topology families and the Section 2 example.

Hosts are real ``python -m repro.shardhost`` subprocesses, shared
module-wide so the whole suite pays interpreter start-up twice; one test
additionally exercises the no-hosts auto-spawn path end to end.
"""

import pytest

from repro.api import ScenarioSpec, Session
from repro.coordination.rule import rule_from_text
from repro.core.fixpoint import ground_part
from repro.sharding.sockets import LocalHostCluster
from repro.workloads.scenarios import (
    paper_example_data,
    paper_example_rules,
    paper_example_schemas,
)
from repro.workloads.topologies import (
    clique_topology,
    layered_topology,
    tree_topology,
)

TOPOLOGIES = {
    "tree": lambda: tree_topology(2, 2),  # 7 nodes
    "layered": lambda: layered_topology(2, 3, seed=1),  # 9 nodes
    "clique": lambda: clique_topology(4),  # 12 import edges, cyclic
}


@pytest.fixture(scope="module")
def cluster():
    """Two real shard-host subprocesses shared by the whole module."""
    with LocalHostCluster(2) as cluster:
        yield cluster


def socketed(spec: ScenarioSpec, cluster, shards: int, **extra) -> ScenarioSpec:
    return spec.with_(
        transport="socket",
        shards=shards,
        hosts=tuple(cluster.addresses),
        **extra,
    )


def _run(spec: ScenarioSpec):
    session = Session.from_spec(spec)
    session.run("discovery")
    result = session.update()
    return session, result


def _filler_rows(system, node, relation, count=2, tag="warm"):
    """Well-typed new rows for one relation of one node."""
    arity = len(
        next(
            schema for schema in system.node(node).database.schema
            if schema.name == relation
        ).attributes
    )
    return [
        tuple(f"{tag}-{i}-{k}" for k in range(arity)) for i in range(count)
    ]


def _cross_rule(system, rule_id="warm-add"):
    """A new rule importing the last node's first relation into the first node."""
    nodes = sorted(system.nodes)
    target, source = nodes[0], nodes[-1]
    source_relation = sorted(system.node(source).database.facts())[0]
    arity = len(
        next(
            schema for schema in system.node(source).database.schema
            if schema.name == source_relation
        ).attributes
    )
    target_relation, head_arity = next(
        (schema.name, len(schema.attributes))
        for schema in system.node(target).database.schema
        if len(schema.attributes) <= arity
    )
    body = ", ".join(f"V{i}" for i in range(arity))
    head = ", ".join(f"V{i}" for i in range(head_arity))
    return rule_from_text(
        rule_id,
        f"{source}: {source_relation}({body}) -> {target}: {target_relation}({head})",
    )


class TestSocketParity:
    @pytest.mark.parametrize("family", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("shards", [1, 4])
    def test_socket_matches_sync_on_dblp_topologies(
        self, cluster, family, shards
    ):
        spec = ScenarioSpec.from_topology(
            TOPOLOGIES[family](), records_per_node=5, seed=7
        )
        _sync_session, sync_result = _run(spec)
        with Session.from_spec(socketed(spec, cluster, shards)) as session:
            session.run("discovery")
            socket_result = session.update()
            assert socket_result.engine == "socket"
            assert (
                socket_result.ground_databases() == sync_result.ground_databases()
            )
            traffic = socket_result.stats.sharding
            assert traffic is not None
            if shards == 1:
                assert traffic.cross_shard_messages == 0
            else:
                assert traffic.cross_shard_messages > 0

    @pytest.mark.parametrize("shards", [1, 4])
    def test_socket_matches_sync_on_the_paper_example(self, cluster, shards):
        # Cyclic, with labelled nulls invented on one host and compared on
        # another — and chased twice over the same fleet, which must not
        # mint spurious new witnesses.
        spec = ScenarioSpec.of(
            paper_example_schemas(),
            paper_example_rules(),
            paper_example_data(),
            super_peer="A",
        )
        _sync_session, sync_result = _run(spec)
        with Session.from_spec(socketed(spec, cluster, shards)) as session:
            session.run("discovery")
            session.update()
            repeat = session.update()
            assert repeat.ground_databases() == sync_result.ground_databases()

    @pytest.mark.parametrize("shards", [1, 4])
    def test_warm_runs_stay_in_parity_across_link_changes(self, cluster, shards):
        """addLink / deleteLink / inserts between runs on one warm socket pool.

        The sequence — update, insert new facts, update, addLink, update,
        deleteLink, update — is mirrored step by step on a sync session, and
        every step's ground state must match.  The pool must survive the
        whole sequence warm (modulo a re-plan restart, which is allowed but
        must stay invisible in the results).
        """
        spec = ScenarioSpec.from_topology(
            tree_topology(2, 2), records_per_node=3, seed=1
        )
        sync_session = Session.from_spec(spec)
        pooled_spec = socketed(spec, cluster, shards, pool=True)
        with Session.from_spec(pooled_spec) as pooled:
            assert pooled.engine.name == "socket-pooled"

            def step(mutate=None):
                for session in (sync_session, pooled):
                    if mutate is not None:
                        mutate(session.system)
                    session.update()
                assert ground_part(pooled.databases()) == ground_part(
                    sync_session.databases()
                )

            sync_session.run("discovery")
            pooled.run("discovery")
            step()

            leaf = sorted(spec.schemas)[-1]
            relation = sorted(spec.data[leaf])[0]
            rows = _filler_rows(sync_session.system, leaf, relation)
            step(lambda system: system.load_data({leaf: {relation: rows}}))

            rule = _cross_rule(sync_session.system)
            step(lambda system: system.add_rule(rule))

            step(lambda system: system.remove_rule(rule.rule_id))

    def test_connections_stay_warm_across_runs(self, cluster):
        """Repeat runs reuse the same pool and connections (that is the point)."""
        spec = socketed(
            ScenarioSpec.from_topology(tree_topology(2, 2), records_per_node=3, seed=0),
            cluster,
            2,
            pool=True,
        )
        with Session.from_spec(spec, capture_deltas=False) as session:
            session.run("update")
            pool = session.engine.pool
            assert pool is not None and pool.alive
            session.run("update")
            session.run("update")
            assert session.engine.pool is pool
            assert pool.alive

    def test_completion_times_stay_monotone_across_runs(self, cluster):
        # Worker virtual clocks restart from the coordinator's simulated
        # time on every (re)ship, so consecutive runs report non-decreasing
        # completion times on the one-shot engine too.
        spec = socketed(
            ScenarioSpec.from_topology(tree_topology(2, 2), records_per_node=3, seed=0),
            cluster,
            2,
        )
        with Session.from_spec(spec, capture_deltas=False) as session:
            first = session.run("update")
            second = session.run("update")
            assert second.completion_time >= first.completion_time

    def test_socket_reaches_closure_and_satisfies_rules(self, cluster):
        from repro.core.fixpoint import all_nodes_closed, satisfies_all_rules

        spec = socketed(
            ScenarioSpec.from_topology(tree_topology(2, 2), records_per_node=5, seed=7),
            cluster,
            4,
        )
        with Session.from_spec(spec) as session:
            session.run("discovery")
            session.update()
            assert all_nodes_closed(session.system)
            assert satisfies_all_rules(session.system)

    def test_spec_round_trips_the_socket_transport(self, cluster, tmp_path):
        spec = socketed(
            ScenarioSpec.from_topology(tree_topology(1, 2), records_per_node=2, seed=0),
            cluster,
            2,
        )
        path = tmp_path / "spec.json"
        spec.dump_json(path)
        loaded = ScenarioSpec.load_json(path)
        assert loaded.transport == "socket"
        assert loaded.shards == 2
        assert loaded.hosts == tuple(cluster.addresses)
        with Session.from_spec(loaded) as session:
            result = session.run("update")
            assert result.engine == "socket"

    def test_auto_spawned_hosts_cover_the_no_cluster_path(self):
        # No hosts given: the engine spawns localhost hosts on first run and
        # the session's close() tears them down — the configuration CI's
        # socket-smoke job and the CLI sweep rely on.
        spec = ScenarioSpec.from_topology(
            tree_topology(1, 2), records_per_node=2, seed=0
        ).with_(transport="socket", shards=2)
        sync_session, sync_result = _run(spec.with_(transport="sync", shards=None))
        with Session.from_spec(spec) as session:
            session.run("discovery")
            result = session.update()
            assert result.ground_databases() == sync_result.ground_databases()
            cluster = session.engine.cluster
            assert cluster is not None and cluster.alive
        assert cluster.host_count == 0  # closed with the session
