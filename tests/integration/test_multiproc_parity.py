"""State parity of the multi-process engine against the synchronous reference.

The acceptance bar of the multiproc subsystem mirrors the sharded one:
whatever the partitioning and however the OS schedules the shard workers,
``MultiprocEngine`` must drive the update protocol to the same per-node
ground state as ``SyncEngine`` on the paper's three topology families and
the Section 2 example, at K=1 (one worker process) and K=4 (real
cross-process traffic).  The cross-shard counters must also stay consistent
with the in-process ``ShardedEngine``'s view of the same shard plan.

These tests spawn real worker processes (``multiprocessing`` spawn), so each
run pays interpreter start-up; topologies are kept small.
"""

import pytest

from repro.api import ScenarioSpec, Session
from repro.workloads.scenarios import (
    paper_example_data,
    paper_example_rules,
    paper_example_schemas,
)
from repro.workloads.topologies import (
    clique_topology,
    layered_topology,
    tree_topology,
)

TOPOLOGIES = {
    "tree": lambda: tree_topology(2, 2),  # 7 nodes
    "layered": lambda: layered_topology(2, 3, seed=1),  # 9 nodes
    "clique": lambda: clique_topology(4),  # 12 import edges, cyclic
}


def _run(spec: ScenarioSpec):
    session = Session.from_spec(spec)
    session.run("discovery")
    result = session.update()
    return session, result


class TestMultiprocParity:
    @pytest.mark.parametrize("family", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("shards", [1, 4])
    def test_multiproc_matches_sync_on_dblp_topologies(self, family, shards):
        spec = ScenarioSpec.from_topology(
            TOPOLOGIES[family](), records_per_node=5, seed=7
        )
        _sync_session, sync_result = _run(spec)
        multiproc_session, multiproc_result = _run(
            spec.with_(transport="multiproc", shards=shards)
        )

        assert multiproc_result.engine == "multiproc"
        assert sync_result.engine == "sync"
        assert (
            multiproc_result.ground_databases() == sync_result.ground_databases()
        )
        traffic = multiproc_result.stats.sharding
        assert traffic is not None
        assert traffic.shard_count == min(
            shards, len(multiproc_session.system.nodes)
        )
        if shards == 1:
            assert traffic.cross_shard_messages == 0
        else:
            assert traffic.cross_shard_messages > 0

    @pytest.mark.parametrize("shards", [1, 4])
    def test_multiproc_matches_sync_on_the_paper_example(self, shards):
        # The Section 2 example is cyclic and generates labelled nulls, so it
        # exercises the chase across process boundaries: nulls invented in
        # one worker must compare equal when they arrive in another.
        spec = ScenarioSpec.of(
            paper_example_schemas(),
            paper_example_rules(),
            paper_example_data(),
            super_peer="A",
        )
        _sync_session, sync_result = _run(spec)
        _multiproc_session, multiproc_result = _run(
            spec.with_(transport="multiproc", shards=shards)
        )
        assert (
            multiproc_result.ground_databases() == sync_result.ground_databases()
        )

    def test_cross_shard_counters_consistent_with_sharded_engine(self):
        # Both partitioned engines plan with the same ShardPlanner, so they
        # agree on the cut; their cross-shard traffic must tell the same
        # story — real traffic crosses the cut, but most deliveries stay
        # local in both views.
        spec = ScenarioSpec.from_topology(
            tree_topology(3, 2), records_per_node=3, seed=0
        )
        sharded_session = Session.from_spec(spec.with_(shards=4), capture_deltas=False)
        sharded_result = sharded_session.run("update")
        multiproc_session = Session.from_spec(
            spec.with_(transport="multiproc", shards=4), capture_deltas=False
        )
        multiproc_result = multiproc_session.run("update")

        sharded_traffic = sharded_result.stats.sharding
        multiproc_traffic = multiproc_result.stats.sharding
        assert sharded_traffic.shard_count == multiproc_traffic.shard_count
        assert multiproc_traffic.cross_shard_messages > 0
        assert multiproc_traffic.cut_ratio < 0.5
        assert sharded_traffic.cut_ratio < 0.5
        # Same fix-point through either partitioned engine.
        from repro.core.fixpoint import ground_part

        assert ground_part(sharded_session.databases()) == ground_part(
            multiproc_session.databases()
        )

    def test_multiproc_reaches_closure_and_satisfies_rules(self):
        from repro.core.fixpoint import all_nodes_closed, satisfies_all_rules

        spec = ScenarioSpec.from_topology(
            tree_topology(2, 2), records_per_node=5, seed=7
        ).with_(transport="multiproc", shards=4)
        session, _result = _run(spec)
        # The merge step folds the workers' closed flags and final relations
        # back into the coordinator system, so the usual fix-point checks
        # work on it unchanged.
        assert all_nodes_closed(session.system)
        assert satisfies_all_rules(session.system)

    def test_spec_round_trips_the_multiproc_transport(self, tmp_path):
        spec = ScenarioSpec.from_topology(
            tree_topology(1, 2), records_per_node=2, seed=0
        ).with_(transport="multiproc", shards=2)
        path = tmp_path / "spec.json"
        spec.dump_json(path)
        loaded = ScenarioSpec.load_json(path)
        assert loaded.transport == "multiproc"
        assert loaded.shards == 2
        _session, result = _run(loaded)
        assert result.engine == "multiproc"
