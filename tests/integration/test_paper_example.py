"""Integration tests on the paper's Section 2 running example (E1/E2)."""

from repro.core.fixpoint import (
    all_nodes_closed,
    satisfies_all_rules,
    verify_against_centralized,
)
from repro.core.state import DiscoveryState, UpdateState
from repro.core.superpeer import SuperPeer
from repro.database.parser import parse_query
from repro.network.message import MessageType
from repro.workloads.scenarios import (
    build_paper_example,
    paper_example_data,
    paper_example_rules,
    paper_example_schemas,
)


class TestDiscoveryOnExample:
    def test_super_peer_learns_all_edges(self, paper_system):
        super_peer = SuperPeer(paper_system, "A")
        super_peer.run_discovery()
        node_a = paper_system.node("A")
        assert node_a.state.state_d == DiscoveryState.CLOSED
        assert {
            ("A", "B"),
            ("B", "C"),
            ("C", "A"),
            ("B", "E"),
            ("C", "D"),
            ("D", "A"),
        } <= node_a.state.edges

    def test_super_peer_paths_match_paper_table(self, paper_system):
        SuperPeer(paper_system, "A").run_discovery()
        paths = {"".join(p) for p in paper_system.node("A").state.maximal_paths()}
        assert paths == {"ABE", "ABCA", "ABCB", "ABCDA"}

    def test_discovery_from_all_origins_gives_each_node_its_paths(self, paper_system):
        paper_system.run_discovery(origins=sorted(paper_system.nodes))
        graph = paper_system.dependency_graph()
        for node_id, node in paper_system.nodes.items():
            expected = set(graph.maximal_dependency_paths(node_id))
            assert set(node.state.maximal_paths()) == expected

    def test_leaf_node_closes_immediately(self, paper_system):
        SuperPeer(paper_system, "A").run_discovery()
        node_e = paper_system.node("E")
        assert node_e.state.state_d == DiscoveryState.CLOSED
        assert node_e.state.finished

    def test_discovery_message_types(self, paper_system):
        SuperPeer(paper_system, "A").run_discovery()
        by_type = paper_system.snapshot_stats().messages.by_type
        assert by_type[MessageType.REQUEST_NODES.value] > 0
        assert by_type[MessageType.DISCOVERY_ANSWER.value] > 0
        assert by_type.get(MessageType.QUERY.value, 0) == 0


class TestUpdateOnExample:
    def test_matches_centralized_fixpoint(self, updated_paper_system):
        report = verify_against_centralized(
            updated_paper_system,
            paper_example_schemas(),
            paper_example_rules(),
            paper_example_data(),
        )
        assert report.ground_equal, (report.missing, report.extra)
        assert report.rules_satisfied

    def test_every_node_reaches_closed(self, updated_paper_system):
        assert all_nodes_closed(updated_paper_system)
        for node in updated_paper_system.nodes.values():
            assert node.state.state_u == UpdateState.CLOSED

    def test_rule_r1_copies_e_into_b(self, updated_paper_system):
        b_rows = updated_paper_system.node("B").database.relation("b").rows()
        assert {("s", "t"), ("t", "z")} <= b_rows

    def test_rule_r4_respects_inequality_builtin(self, updated_paper_system):
        # r4: b(X, Y), b(X, Z), X != Z  ->  a(X, Y): every derived a-fact needs
        # a witness b(X, Z) whose second column differs from X.
        a_rows = updated_paper_system.node("A").database.relation("a").rows()
        b_rows = updated_paper_system.node("B").database.relation("b").rows()
        for x, y in a_rows:
            if (x, y) == ("a1", "a2"):
                continue  # initial fact
            assert (x, y) in b_rows
            assert any(bx == x and bz != x for bx, bz in b_rows)

    def test_local_queries_after_update(self, updated_paper_system):
        answers = updated_paper_system.local_query(
            "C", parse_query("q(X, Y) :- c(X, Y)")
        )
        assert ("m", "p") in answers  # from r2 over b(m,n), b(n,p)

    def test_fixpoint_is_semantic(self, updated_paper_system):
        assert satisfies_all_rules(updated_paper_system)

    def test_second_update_run_changes_nothing(self, updated_paper_system):
        before = updated_paper_system.databases()
        for node in updated_paper_system.nodes.values():
            node.state.reset_update()
        updated_paper_system.run_global_update()
        assert updated_paper_system.databases() == before

    def test_per_path_policy_reaches_same_fixpoint(self):
        once = build_paper_example(propagation="once")
        per_path = build_paper_example(propagation="per_path")
        for system in (once, per_path):
            SuperPeer(system, "A").run_discovery()
            system.run_global_update()
        assert once.databases() == per_path.databases()

    def test_per_path_policy_sends_more_messages(self):
        once = build_paper_example(propagation="once")
        per_path = build_paper_example(propagation="per_path")
        for system in (once, per_path):
            SuperPeer(system, "A").run_discovery()
            system.run_global_update()
        assert (
            per_path.snapshot_stats().total_messages
            > once.snapshot_stats().total_messages
        )
        assert (
            per_path.snapshot_stats().total_duplicate_queries
            > once.snapshot_stats().total_duplicate_queries
        )

    def test_query_dependent_update_only_touches_dependency_closure(self, paper_system):
        # Start the update only at D: its closure is the whole example except
        # nothing flows INTO E, so E's database must stay untouched.
        paper_system.run_global_update(origins=["D"])
        e_rows = paper_system.node("E").database.relation("e").rows()
        assert e_rows == frozenset({("s", "t"), ("t", "z")})
        d_rows = paper_system.node("D").database.relation("d").rows()
        assert len(d_rows) > 2  # D imported something via r6
