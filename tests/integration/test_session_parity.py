"""Strategy and engine parity through the unified Session façade.

Two satellite guarantees of the façade refactor:

* *strategy parity* — ``distributed``, ``centralized`` and (on acyclic
  topologies) ``acyclic`` reach the same ground fix-point on the same
  scenario (Lemma 1's soundness/completeness, now checked through one API),
* *engine parity* — the same scenario converges to the same ground fix-point
  whether the distributed protocol runs on the synchronous discrete-event
  transport or the asyncio transport.
"""

import pytest

from repro.api import ScenarioSpec, Session
from repro.workloads.scenarios import (
    paper_example_data,
    paper_example_rules,
    paper_example_schemas,
)
from repro.workloads.topologies import tree_topology


def paper_spec(**settings) -> ScenarioSpec:
    return ScenarioSpec.of(
        paper_example_schemas(),
        paper_example_rules(),
        paper_example_data(),
        super_peer="A",
        **settings,
    )


def run_strategy(spec: ScenarioSpec, strategy: str) -> dict:
    """One fresh session, discovery (for the live protocol) plus one update."""
    session = Session.from_spec(spec)
    if strategy == "distributed":
        session.run("discovery")
    result = session.update(strategy=strategy)
    return result.ground_databases()


class TestStrategyParity:
    @pytest.mark.parametrize("strategy", ["distributed", "centralized"])
    def test_paper_example_reaches_reference_fixpoint(self, strategy):
        # The paper example is cyclic, so the acyclic baseline is excluded
        # here; the centralized fix-point is the reference (Lemma 1).
        reference = run_strategy(paper_spec(), "centralized")
        measured = run_strategy(paper_spec(), strategy)
        assert measured == reference

    @pytest.mark.parametrize("strategy", ["distributed", "centralized", "acyclic"])
    def test_acyclic_topology_all_strategies_agree(self, strategy):
        spec = ScenarioSpec.from_topology(
            tree_topology(2, 2), records_per_node=6, seed=3
        )
        reference = run_strategy(spec, "centralized")
        measured = run_strategy(spec, strategy)
        assert measured == reference

    def test_querytime_agrees_on_queried_node(self):
        # Query-time answering fetches one node's dependency closure; on that
        # node it must hold the same ground data as the full fix-point.
        spec = paper_spec()
        reference = run_strategy(spec, "centralized")
        session = Session.from_spec(spec)
        result = session.update("querytime", node="A")
        assert result.ground_databases()["A"] == reference["A"]


class TestEngineParity:
    def test_sync_and_async_engines_reach_same_fixpoint(self):
        # Identical seeds and data; only the transport (and hence the engine
        # and delivery interleaving) differs.
        sync_session = Session.from_spec(paper_spec(transport="sync"))
        sync_session.run("discovery")
        sync_result = sync_session.update()

        async_session = Session.from_spec(paper_spec(transport="async"))
        async_session.run("discovery")
        async_result = async_session.update()

        assert sync_result.ground_databases() == async_result.ground_databases()
        assert sync_result.engine == "sync"
        assert async_result.engine == "async"

    def test_dblp_workload_engine_parity_on_identical_seeds(self):
        base = ScenarioSpec.from_topology(
            tree_topology(1, 2), records_per_node=5, seed=11
        )
        results = {}
        for transport in ("sync", "async"):
            session = Session.from_spec(base.with_(transport=transport))
            session.run("discovery")
            results[transport] = session.update().ground_databases()
        assert results["sync"] == results["async"]
