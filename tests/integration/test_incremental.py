"""End-to-end acceptance of the incremental (delta-driven) update mode.

Three guarantees are pinned here (the model is documented in
``docs/incremental.md``):

* **Parity** — a warm repeat whose only change is row insertion produces
  final per-node databases *bit-identical* (labelled nulls included) to a
  naive re-run, on every engine.  The warm pooled engines take the
  delta-driven path for that repeat; the one-shot engines re-run naively;
  all must land on the same fix-point as the synchronous reference
  executing the same sequence.
* **The delta path actually runs** — the ``repro_incremental_*`` counters
  are non-zero exactly when a warm eligible repeat happened, and zero on
  cold or naive runs (no silent fallback in either direction).
* **Work is O(delta)** — a one-row insert into an already-converged larger
  network re-derives only the handful of rows that row entails, not the
  database (asserted through the frontier counters, not wall time).
"""

import pytest

from repro.api import ScenarioSpec, Session
from repro.core.fixpoint import ground_part
from repro.sharding.sockets import LocalHostCluster
from repro.workloads.scenarios import (
    paper_example_data,
    paper_example_rules,
    paper_example_schemas,
)
from repro.workloads.topologies import layered_topology, tree_topology

#: Engine configurations compared against the synchronous reference.  The
#: pooled engines keep worker processes warm across the two updates (the
#: incremental path); the rest re-run naively and double as the control.
ENGINES = ["sync", "async", "sharded", "multiproc", "pooled", "socket-pooled"]


@pytest.fixture(scope="module")
def cluster():
    """Two real shard-host subprocesses shared by the whole module."""
    with LocalHostCluster(2) as cluster:
        yield cluster


def _spec_for(engine: str, spec: ScenarioSpec, cluster) -> ScenarioSpec:
    if engine == "sync":
        return spec
    if engine == "async":
        return spec.with_(transport="async")
    if engine == "sharded":
        return spec.with_(transport="sharded", shards=2)
    if engine == "multiproc":
        return spec.with_(transport="multiproc", shards=2)
    if engine == "pooled":
        return spec.with_(transport="pooled", shards=2)
    if engine == "socket-pooled":
        return spec.with_(
            transport="socket",
            shards=2,
            hosts=tuple(cluster.addresses),
            pool=True,
        )
    raise AssertionError(engine)


def _insert_one_row(system):
    """Insert one well-typed fresh base row at the lexicographically last node."""
    node_id = sorted(system.nodes)[-1]
    node = system.node(node_id)
    relation = sorted(node.database.facts())[0]
    arity = len(
        next(
            schema for schema in node.database.schema if schema.name == relation
        ).attributes
    )
    row = tuple(f"delta{i}" for i in range(arity))
    node.database.relation(relation).insert(row)
    return node_id, relation, row


def _insert_feeding_row(system):
    """Insert one fresh row guaranteed to have downstream consequences.

    Picks the first single-atom-body coordination rule (a plain copy rule,
    which every DBLP topology contains) and inserts a fresh well-typed row
    into its exporter's body relation, so at least the rule's importer must
    derive something from it.
    """
    rule = next(
        rule
        for rule in sorted(system.registry, key=lambda rule: rule.rule_id)
        if len(rule.body) == 1
    )
    exporter, atom = rule.body[0]
    row = tuple(f"delta{i}" for i in range(len(atom.terms)))
    system.node(exporter).database.relation(atom.relation).insert(row)
    return exporter, atom.relation, row


def _converge_insert_converge(spec: ScenarioSpec):
    """Run update, insert one row, run update again; return the session."""
    session = Session.from_spec(spec)
    session.run("discovery")
    session.update()
    _insert_one_row(session.system)
    session.update()
    return session


class TestIncrementalParity:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_warm_insert_repeat_matches_sync_on_the_paper_example(
        self, engine, cluster
    ):
        # The Section 2 example is cyclic and invents labelled nulls, so this
        # asserts the strongest form of parity: the *complete* databases —
        # nulls included — are identical, not just the ground part.  On the
        # pooled engines the second update takes the delta-driven path; on
        # the others it is a naive re-run of the same logical sequence.
        spec = ScenarioSpec.of(
            paper_example_schemas(),
            paper_example_rules(),
            paper_example_data(),
            super_peer="A",
        )
        reference = _converge_insert_converge(spec)
        with _converge_insert_converge(
            _spec_for(engine, spec, cluster)
        ) as session:
            assert session.databases() == reference.databases()

    @pytest.mark.parametrize("engine", ["pooled", "socket-pooled"])
    def test_delta_and_naive_paths_agree_on_one_warm_engine(
        self, engine, cluster
    ):
        # Same engine, same sequence, incremental on vs pinned off: the
        # delta path must change work, never results.  (Sessions run one
        # after the other — the module's two shard hosts serve one warm
        # session at a time.)
        spec = ScenarioSpec.from_topology(
            tree_topology(2, 2), records_per_node=3, seed=5
        )
        engine_spec = _spec_for(engine, spec, cluster)
        with Session.from_spec(engine_spec) as naive:
            naive.engine.incremental = False
            naive.run("discovery")
            naive.update()
            _insert_one_row(naive.system)
            naive.update()
            totals = naive.system.stats.incremental_totals()
            assert all(value == 0 for value in totals.values())
            naive_databases = naive.databases()
        with _converge_insert_converge(engine_spec) as incremental:
            totals = incremental.system.stats.incremental_totals()
            assert totals["repro_incremental_seed_rows_total"] == 1
            assert incremental.databases() == naive_databases


class TestIncrementalWork:
    def test_cold_runs_leave_the_counters_at_zero(self):
        spec = ScenarioSpec.from_topology(
            tree_topology(2, 2), records_per_node=3, seed=5
        ).with_(transport="pooled", shards=2)
        with Session.from_spec(spec) as session:
            session.run("discovery")
            session.update()
            totals = session.system.stats.incremental_totals()
            assert all(value == 0 for value in totals.values())

    def test_warm_one_row_insert_rederives_only_the_delta(self):
        # A converged layered network holds hundreds of derived rows; a
        # single new base row must re-derive only its own consequences.  The
        # bound is on *rows the chase derived* (the frontier counters), so
        # the assertion is about work, independent of machine speed.
        spec = ScenarioSpec.from_topology(
            layered_topology(3, 3, seed=2), records_per_node=8, seed=2
        ).with_(transport="pooled", shards=2)
        with Session.from_spec(spec) as session:
            session.run("discovery")
            session.update()
            total_rows = sum(
                len(rows)
                for relations in session.databases().values()
                for rows in relations.values()
            )
            rows_before = total_rows
            _insert_feeding_row(session.system)
            session.update()
            totals = session.system.stats.incremental_totals()
            assert totals["repro_incremental_seed_rows_total"] == 1
            derived = totals["repro_incremental_rows_derived_total"]
            assert derived >= 1  # the row feeds a copy rule: it must cascade
            # O(delta), not O(db): far fewer rows touched than the database
            # holds (a naive re-pull would re-derive all of them).
            assert derived < total_rows / 10
            # And the consequences actually landed in the merged databases.
            rows_after = sum(
                len(rows)
                for relations in session.databases().values()
                for rows in relations.values()
            )
            assert rows_after >= rows_before + 1 + derived

    def test_warm_noop_repeat_is_message_free(self):
        spec = ScenarioSpec.from_topology(
            tree_topology(2, 2), records_per_node=3, seed=5
        ).with_(transport="pooled", shards=2)
        with Session.from_spec(spec, capture_deltas=False) as session:
            session.run("discovery")
            session.run("update")
            # Coordinator counters are cumulative across runs (like the
            # in-process transports), so the no-op is asserted as a zero
            # *delta* in total messages.
            before = session.snapshot_stats().total_messages
            session.run("update")
            # Nothing changed: the incremental run seeds nothing, pushes
            # nothing, and the final state is still the fix-point.
            assert session.snapshot_stats().total_messages == before
            assert ground_part(session.databases())  # still holds the data
