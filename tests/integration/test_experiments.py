"""Integration tests of the experiment harness (E1-E10) at reduced scale."""

from repro.experiments.baseline_comparison import run_baseline_comparison
from repro.experiments.complexity_growth import run_change_growth, run_clique_growth
from repro.experiments.data_distribution import run_data_distribution
from repro.experiments.depth_linearity import run_depth_linearity
from repro.experiments.message_accounting import run_message_accounting
from repro.experiments.paper_example import main as paper_example_main
from repro.experiments.paper_example import run_paper_example
from repro.experiments.runner import run_dblp_update
from repro.experiments.scalability import run_scalability, run_shard_scalability
from repro.experiments.trace_example import run_trace_example
from repro.workloads.topologies import clique_topology, tree_topology


class TestRunner:
    def test_run_dblp_update_metrics(self):
        network, result = run_dblp_update(
            tree_topology(2, 2), records_per_node=10, check_fixpoint=True
        )
        assert result.node_count == 7
        assert result.update_messages > 0
        assert result.query_messages > 0
        assert result.answer_messages > 0
        assert result.all_closed
        assert result.fixpoint_reached
        assert result.tuples_inserted > 0
        assert set(result.per_node) == set(network.spec.nodes)

    def test_as_row_shape(self):
        _, result = run_dblp_update(tree_topology(1, 2), records_per_node=5)
        assert len(result.as_row()) == 8


class TestE1PaperExample:
    def test_paths_match_static_computation(self):
        result = run_paper_example()
        assert result.paths_match
        assert result.discovery_messages > 0

    def test_main_prints_table(self, capsys):
        table = paper_example_main()
        captured = capsys.readouterr().out
        assert "E1" in captured
        assert "ABCA" in table


class TestE2Trace:
    def test_trace_has_both_phases_in_order(self):
        result = run_trace_example()
        types = [entry.message_type for entry in result.entries]
        assert "request_nodes" in types
        assert "query" in types
        # Discovery messages all precede update messages.
        last_discovery = max(
            i for i, t in enumerate(types) if t in ("request_nodes", "discovery_answer")
        )
        first_update = min(i for i, t in enumerate(types) if t in ("query", "answer"))
        assert last_discovery < first_update

    def test_figure1_nodes_subtrace(self):
        result = run_trace_example()
        sub = result.entries_between(frozenset({"A", "B", "C", "E"}))
        assert len(sub) > 0
        assert all(e.sender in {"A", "B", "C", "E"} for e in sub)


class TestE3Scalability:
    def test_small_sweep_runs_and_scales(self):
        results = run_scalability(
            tree_sizes=(3, 7),
            layered_sizes=(4,),
            clique_sizes=(3,),
            records_per_node=8,
        )
        assert len(results) == 4
        tree_results = [r for r in results if r.label.startswith("tree")]
        assert tree_results[1].update_messages > tree_results[0].update_messages
        assert all(r.all_closed for r in results)


class TestE3ShardSweep:
    def test_sync_and_sharded_agree_at_reduced_scale(self):
        comparisons = run_shard_scalability(
            sizes=(15,), shards=2, records_per_node=3
        )
        assert len(comparisons) == 2  # one tree + one layered DAG
        for comparison in comparisons:
            assert comparison.parity
            assert comparison.shards == 2
            assert comparison.sharded_messages > 0
            assert sum(comparison.messages_by_shard.values()) == (
                comparison.sharded_messages
            )
            assert 0.0 <= comparison.cut_ratio <= 1.0


class TestE4DepthLinearity:
    def test_time_grows_linearly_with_depth(self):
        series = run_depth_linearity(depths=(1, 2, 3, 4), records_per_node=6)
        for family, data in series.items():
            assert data.fit["slope"] > 0, family
            assert data.fit["r_squared"] > 0.9, family
            assert list(data.update_times) == sorted(data.update_times)


class TestE5DataDistribution:
    def test_overlap_inserts_fewer_tuples(self):
        comparisons = run_data_distribution(
            specs=[tree_topology(2, 2)], records_per_node=15, overlap_probability=1.0
        )
        (comparison,) = comparisons
        overlapping, disjoint = comparison.overlapping, comparison.disjoint
        assert overlapping.tuples_inserted < disjoint.tuples_inserted
        assert comparison.insertion_ratio < 1.0


class TestE6MessageAccounting:
    def test_per_path_counts_duplicates(self):
        result = run_message_accounting(clique_size=4, records_per_node=6)
        assert result.per_path.duplicate_queries > result.once.duplicate_queries
        assert result.per_path.total_messages > result.once.total_messages


class TestStrategyThreading:
    """--strategy flows through E4/E5/E6 exactly as it does through E3."""

    def test_depth_linearity_reference_matches_distributed_tuples(self):
        distributed = run_depth_linearity(depths=(1, 2), records_per_node=5)
        reference = run_depth_linearity(
            depths=(1, 2), records_per_node=5, strategy="centralized"
        )
        for family in distributed:
            for dist_run, ref_run in zip(
                distributed[family].results, reference[family].results
            ):
                assert dist_run.tuples_inserted == ref_run.tuples_inserted
                assert ref_run.strategy == "centralized"

    def test_data_distribution_skips_inapplicable_strategy(self, capsys):
        comparisons = run_data_distribution(
            specs=[clique_topology(3)], records_per_node=4, strategy="acyclic"
        )
        assert comparisons == []
        assert "skipping" in capsys.readouterr().out

    def test_message_accounting_reference_column(self):
        result = run_message_accounting(
            clique_size=3, records_per_node=4, strategy="centralized"
        )
        assert result.reference is not None
        assert result.reference.strategy == "centralized"
        assert (
            result.reference.tuples_inserted == result.once.tuples_inserted
        )

    def test_message_accounting_acyclic_on_clique_leaves_column_empty(self):
        result = run_message_accounting(
            clique_size=3, records_per_node=4, strategy="acyclic"
        )
        assert result.reference is None


class TestE9BaselineComparison:
    def test_tree_comparison(self):
        comparison = run_baseline_comparison(
            tree_topology(2, 2), records_per_node=8, queries_in_batch=5
        )
        assert comparison.answers_agree
        assert comparison.acyclic_applicable and comparison.acyclic_matches
        assert comparison.querytime_messages_per_query > 0
        assert comparison.breakeven_queries > 0

    def test_clique_comparison_rejects_acyclic_baseline(self):
        comparison = run_baseline_comparison(
            clique_topology(4), records_per_node=6, queries_in_batch=5
        )
        assert comparison.answers_agree
        assert not comparison.acyclic_applicable


class TestE10ComplexityGrowth:
    def test_per_path_grows_faster_than_once(self):
        points = run_clique_growth(sizes=(2, 3, 4), records_per_node=4)
        per_path = {p.size: p.update_messages for p in points if p.policy == "per_path"}
        once = {p.size: p.update_messages for p in points if p.policy == "once"}
        assert per_path[4] > once[4]
        assert per_path[4] / per_path[2] > once[4] / once[2]

    def test_change_growth_is_monotone(self):
        points = run_change_growth(lengths=(1, 2, 4), records_per_node=6)
        extra = [p.extra_messages for p in points]
        assert extra == sorted(extra)
        assert extra[0] > 0
