"""The example scripts must run end-to-end (they double as acceptance tests)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "portal catalogue" in result.stdout

    def test_paper_example(self):
        result = run_example("paper_example.py")
        assert result.returncode == 0, result.stderr
        assert "matches the centralized fix-point: True" in result.stdout

    def test_dblp_sharing(self):
        result = run_example("dblp_sharing.py", "20")
        assert result.returncode == 0, result.stderr
        assert "answers locally" in result.stdout

    def test_dynamic_network(self):
        result = run_example("dynamic_network.py")
        assert result.returncode == 0, result.stderr
        assert "sound" in result.stdout and "True" in result.stdout

    def test_sharded_network(self):
        result = run_example("sharded_network.py", "3")
        assert result.returncode == 0, result.stderr
        assert "3 shards" in result.stdout
        assert "cross-shard" in result.stdout
        assert "same fix-point: True" in result.stdout

    def test_async_network(self):
        result = run_example("async_network.py")
        assert result.returncode == 0, result.stderr
        assert "same ground fix-point: True" in result.stdout
