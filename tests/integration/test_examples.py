"""Every script in examples/ must run end-to-end at tiny sizes.

The examples double as acceptance tests *and* as the documentation's code —
docs/ and the README point at them — so they are forbidden from rotting
silently: each script is listed in ``EXPECTED`` with the arguments that keep
it small and the output markers that prove it did its job, and
``test_every_example_is_covered`` fails the moment a script is added to
``examples/`` without a matching entry here (or removed while still listed).
The CI ``docs-check`` job runs exactly this module.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

#: script name -> (argv, required stdout markers), sizes kept tiny on purpose.
EXPECTED: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    "quickstart.py": ((), ("portal catalogue",)),
    "paper_example.py": ((), ("matches the centralized fix-point: True",)),
    "dblp_sharing.py": (("20",), ("answers locally",)),
    "dynamic_network.py": ((), ("sound", "True")),
    "sharded_network.py": (
        ("3",),
        ("3 shards", "cross-shard", "same fix-point: True"),
    ),
    "async_network.py": ((), ("same ground fix-point: True",)),
    "pooled_network.py": (
        ("2",),
        (
            "cold first update",
            "warm update after addLink",
            "same ground fix-point as the sync engine: True",
        ),
    ),
    "serve_quickstart.py": (
        (),
        (
            "update took the incremental path",
            "event channel saw the run: run/ok",
            "tenant closed; pool drained",
        ),
    ),
}


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestExamples:
    def test_every_example_is_covered(self):
        on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert on_disk == set(EXPECTED), (
            "examples/ and the smoke-test table diverged; add the new "
            "script to EXPECTED (with tiny-size args and output markers) "
            "or drop the stale entry"
        )

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_example_runs_and_prints_its_markers(self, name):
        args, markers = EXPECTED[name]
        result = run_example(name, *args)
        assert result.returncode == 0, result.stderr
        for marker in markers:
            assert marker in result.stdout, (
                f"{name} no longer prints {marker!r}; stdout was:\n"
                f"{result.stdout}"
            )
