"""Integration tests for P2PSystem assembly and the SuperPeer role."""

import pytest

from repro.coordination.rule import rule_from_text
from repro.core.superpeer import SuperPeer
from repro.core.system import P2PSystem
from repro.database.schema import DatabaseSchema, RelationSchema
from repro.errors import ReproError
from repro.workloads.scenarios import build_paper_example


def item_schemas(*names):
    return {
        name: DatabaseSchema([RelationSchema("item", ["x", "y"])]) for name in names
    }


class TestSystemAssembly:
    def test_build_wires_rules_to_nodes(self, chain_system):
        assert "ab" in chain_system.node("a").incoming_rules
        assert "ab" in chain_system.node("b").outgoing_rules
        assert "bc" in chain_system.node("b").incoming_rules

    def test_build_creates_pipes(self, chain_system):
        assert chain_system.pipes.pipe_for("a", "b") is not None
        assert chain_system.pipes.pipe_for("b", "c") is not None
        assert chain_system.pipes.pipe_for("a", "c") is None

    def test_advertisements_published(self, chain_system):
        assert set(chain_system.discovery_service.peers()) == {"a", "b", "c"}
        sharing = set(chain_system.discovery_service.peers_sharing("item"))
        assert sharing == {"a", "b", "c"}

    def test_duplicate_node_rejected(self, chain_system):
        with pytest.raises(ReproError):
            chain_system.add_node("a", item_schemas("a")["a"])

    def test_rule_with_unknown_node_rejected(self, chain_system):
        with pytest.raises(ReproError):
            chain_system.add_rule(
                rule_from_text("zz", "z: item(X, Y) -> a: item(X, Y)")
            )

    def test_remove_rule_closes_pipe(self, chain_system):
        chain_system.remove_rule("ab")
        assert chain_system.pipes.pipe_for("a", "b").closed
        assert "ab" not in chain_system.node("a").incoming_rules
        assert "ab" not in chain_system.node("b").outgoing_rules

    def test_unknown_transport_kind(self):
        with pytest.raises(ReproError):
            P2PSystem.build(item_schemas("a"), transport="carrier-pigeon")

    def test_super_peer_defaults_to_smallest_id(self, chain_system):
        assert chain_system.super_peer == "a"

    def test_super_peer_setter_validates(self, chain_system):
        chain_system.super_peer = "b"
        assert chain_system.super_peer == "b"
        with pytest.raises(ReproError):
            chain_system.super_peer = "zzz"

    def test_unknown_node_lookup(self, chain_system):
        with pytest.raises(ReproError):
            chain_system.node("zzz")

    def test_sync_methods_require_sync_transport(self):
        system = build_paper_example(transport="async")
        with pytest.raises(ReproError):
            system.run_discovery()
        with pytest.raises(ReproError):
            system.run_global_update()

    def test_dependency_graph_includes_isolated_nodes(self):
        system = P2PSystem.build(
            item_schemas("a", "b", "solo"),
            [rule_from_text("ab", "b: item(X, Y) -> a: item(X, Y)")],
        )
        assert "solo" in system.dependency_graph().nodes


class TestSuperPeer:
    def test_rule_file_broadcast(self):
        system = P2PSystem.build(item_schemas("a", "b", "c"))
        super_peer = SuperPeer(system, "a")
        rule_file = """
        # data flows towards a
        ab: b: item(X, Y) -> a: item(X, Y)
        bc: c: item(X, Y) -> b: item(X, Y)
        """
        installed = super_peer.broadcast_rules(rule_file)
        assert installed == 2
        assert "ab" in system.registry and "bc" in system.registry

    def test_rebroadcast_skips_existing_rules(self, chain_system):
        super_peer = SuperPeer(chain_system)
        installed = super_peer.broadcast_rules(
            "ab: b: item(X, Y) -> a: item(X, Y)\n"
            "new: c: item(X, Y) -> a: item(X, Y)\n"
        )
        assert installed == 1
        assert "new" in chain_system.registry

    def test_statistics_collection_and_reset(self, chain_system):
        super_peer = SuperPeer(chain_system)
        super_peer.run_discovery()
        super_peer.run_global_update()
        snapshot = super_peer.collect_statistics()
        assert snapshot.total_messages > 0
        super_peer.reset_statistics()
        assert super_peer.collect_statistics().total_messages == 0

    def test_reset_protocol_state(self, chain_system):
        super_peer = SuperPeer(chain_system)
        super_peer.run_discovery()
        super_peer.run_global_update()
        super_peer.reset_protocol_state()
        node_a = chain_system.node("a")
        assert not node_a.is_update_closed
        assert node_a.state.edges == set()
        # Data survives a protocol-state reset.
        assert node_a.database.total_rows() > 0

    def test_reset_protocol_state_with_data(self, chain_system):
        super_peer = SuperPeer(chain_system)
        super_peer.run_global_update()
        super_peer.reset_protocol_state(clear_data=True)
        assert chain_system.node("a").database.total_rows() == 0

    def test_run_global_update_everywhere_vs_origin_only(self):
        # With everywhere=False only the super-peer's dependency closure updates.
        schemas = item_schemas("a", "b", "x", "y")
        rules = [
            rule_from_text("ab", "b: item(X, Y) -> a: item(X, Y)"),
            rule_from_text("xy", "y: item(X, Y) -> x: item(X, Y)"),
        ]
        data = {"b": {"item": [("1", "2")]}, "y": {"item": [("3", "4")]}}
        system = P2PSystem.build(schemas, rules, data, super_peer="a")
        SuperPeer(system, "a").run_global_update(everywhere=False)
        assert system.node("a").database.total_rows() == 1
        assert system.node("x").database.total_rows() == 0

        system_full = P2PSystem.build(schemas, rules, data, super_peer="a")
        SuperPeer(system_full, "a").run_global_update(everywhere=True)
        assert system_full.node("x").database.total_rows() == 1

    def test_parse_rule_file_ignores_comments_and_blank_lines(self):
        rules = SuperPeer.parse_rule_file(
            "# comment\n\nr1: b: item(X, Y) -> a: item(X, Y)\n"
        )
        assert len(rules) == 1
        assert rules[0].rule_id == "r1"
