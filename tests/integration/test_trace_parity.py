"""Tracing must be a pure observer: traced and untraced runs are identical.

Two guarantees ride on this suite.  First, opening a session with
``trace=True`` changes *nothing* about a run's outcome on any of the five
engines — same final databases, same statistics — the only difference being
the trace document on ``RunResult.extras["trace"]``.  Second (the other half
of the same refactor), every engine assembles its :class:`StatsSnapshot`
through the one :class:`~repro.obs.metrics.MetricsRegistry` code path, so
engines whose execution is deterministic produce *equal* snapshots, not just
similar ones.

The deterministic engines (sync, sharded) are compared bit-for-bit; the
process-backed engines (multiproc, pooled, socket) schedule deliveries at
the mercy of the OS, so their message accounting legitimately varies between
runs — for those the suite pins the ground state and the convergence
invariant (per-node ``tuples_inserted``) instead.
"""

from dataclasses import replace

import pytest

from repro.api import ScenarioSpec, Session
from repro.core.fixpoint import ground_part
from repro.obs.export import trace_to_chrome, validate_chrome_trace
from repro.workloads.topologies import tree_topology

#: Engine label → spec transform.  Small topology: three of these spawn real
#: OS processes (and "socket" a TCP host fleet) per run.
ENGINES = {
    "sync": lambda spec: spec,
    "sharded": lambda spec: spec.with_(shards=2),
    "multiproc": lambda spec: spec.with_(transport="multiproc", shards=2),
    "pooled": lambda spec: spec.with_(transport="pooled", shards=2),
    "socket": lambda spec: spec.with_(transport="socket", shards=2),
}

#: Engines whose runs are deterministic end to end (single-threaded
#: scheduling), so even the message counters must match exactly.
DETERMINISTIC = ("sync", "sharded")


def base_spec() -> ScenarioSpec:
    return ScenarioSpec.from_topology(tree_topology(2, 2), records_per_node=3, seed=7)


def _run(spec: ScenarioSpec, *, trace: bool):
    with Session.from_spec(spec, capture_deltas=False, trace=trace) as session:
        result = session.run("update")
        return session.databases(), result


def _comparable(snapshot):
    """A snapshot with the run-dependent wall clock zeroed."""
    return replace(snapshot, elapsed_wall_seconds=0.0)


class TestTraceParity:
    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_traced_runs_leave_results_bit_identical(self, engine):
        spec = ENGINES[engine](base_spec())
        plain_dbs, plain = _run(spec, trace=False)
        traced_dbs, traced = _run(spec, trace=True)

        assert "trace" not in plain.extras
        assert ground_part(traced_dbs) == ground_part(plain_dbs)
        if engine in DETERMINISTIC:
            # Deterministic engines: byte-for-byte, nulls and counters too.
            assert traced_dbs == plain_dbs
            assert traced.completion_time == plain.completion_time
            assert _comparable(traced.stats) == _comparable(plain.stats)

        trace = traced.extras["trace"]
        assert validate_chrome_trace(trace_to_chrome(trace)) == []
        names = {span["name"] for span in trace["spans"]}
        assert "run" in names
        assert "chase" in names

    def test_traced_multiproc_nests_worker_spans_under_one_run(self):
        spec = ENGINES["multiproc"](base_spec())
        _dbs, traced = _run(spec, trace=True)
        trace = traced.extras["trace"]
        spans = trace["spans"]

        processes = {span["process"] for span in spans}
        assert "coordinator" in processes
        assert any(process.startswith("shard-") for process in processes)
        assert len({span["trace_id"] for span in spans}) == 1

        # Every span — worker-side ones included — roots at the run span.
        run_spans = [span for span in spans if span["name"] == "run"]
        assert len(run_spans) == 1
        by_id = {span["span_id"]: span for span in spans}
        for span in spans:
            walked = span
            while walked["parent_id"] is not None:
                walked = by_id[walked["parent_id"]]
            assert walked["span_id"] == run_spans[0]["span_id"]

        # The run span carries the A6 chase-profile deltas (satellite of the
        # same PR: the projection check is no longer unprofiled).
        attributes = run_spans[0]["attributes"]
        assert attributes["a6_calls"] > 0
        assert attributes["a6_rows_inserted"] > 0

    def test_run_attributes_name_phase_and_engine(self):
        _dbs, traced = _run(base_spec(), trace=True)
        run_span = [
            span for span in traced.extras["trace"]["spans"] if span["name"] == "run"
        ][0]
        assert run_span["attributes"]["phase"] == "update"
        assert run_span["attributes"]["engine"] == "sync"
        assert run_span["attributes"]["messages"] == sum(
            traced.stats.messages.by_type.values()
        )


class TestOneSnapshotCodePath:
    """All engines assemble their snapshot through the metrics registry."""

    def test_sync_and_sharded_snapshots_are_equal(self):
        _dbs, sync_result = _run(base_spec(), trace=False)
        _dbs, sharded_result = _run(ENGINES["sharded"](base_spec()), trace=False)
        sharded = replace(_comparable(sharded_result.stats), sharding=None)
        assert sharded == _comparable(sync_result.stats)

    def test_async_snapshot_matches_on_everything_but_the_clock(self):
        _dbs, sync_result = _run(base_spec(), trace=False)
        _dbs, async_result = _run(
            base_spec().with_(transport="async"), trace=False
        )
        sync_view = replace(_comparable(sync_result.stats), simulated_time=0.0)
        async_view = replace(_comparable(async_result.stats), simulated_time=0.0)
        assert async_view == sync_view

    @pytest.mark.parametrize("engine", ("multiproc", "pooled", "socket"))
    def test_process_engines_agree_on_tuples_inserted(self, engine):
        _dbs, sync_result = _run(base_spec(), trace=False)
        _dbs, other_result = _run(ENGINES[engine](base_spec()), trace=False)
        inserted = {
            node: stats.tuples_inserted
            for node, stats in other_result.stats.nodes.items()
        }
        assert inserted == {
            node: stats.tuples_inserted
            for node, stats in sync_result.stats.nodes.items()
        }
