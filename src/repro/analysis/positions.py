"""The position-level dependency graph and the weak-acyclicity test.

Termination of the chase — and therefore of the paper's update fix-point over
rules with existential head variables — is undecidable in general, but the
*weak acyclicity* criterion of Fagin, Kolaitis, Miller and Popa ("Data
Exchange: Semantics and Query Answering") is a sound, widely used sufficient
condition, and it is exactly the right granularity for coordination rules:

* the graph's nodes are **positions** — (peer, relation, column index) —
  because a labelled null invented at one position can only ever travel to
  positions downstream of it;
* a **regular edge** ``p → q`` records that a value read from position ``p``
  by some rule body is copied to head position ``q``;
* a **special edge** ``p ⇒ q'`` records that reading position ``p`` makes the
  rule invent a *fresh* labelled null at existential head position ``q'``.

A cycle through a special edge means new nulls can feed the very positions
that triggered their invention — the chase may diverge (this repo's
pathological ``item(X, Y) -> item(Y, Z)`` two-peer cycle runs for >20 minutes
before A6's projection check finally closes it).  No such cycle — *weak
acyclicity* — guarantees the fix-point terminates in polynomially many chase
steps, whatever the data.

The check is static and cheap: building the graph is linear in the total size
of the rules, and the cycle test is one strongly-connected-components pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.coordination.rule import CoordinationRule, NodeId
from repro.database.query import Variable

#: One position: (peer, relation name, 0-based column index).
Position = tuple[NodeId, str, int]


@dataclass(frozen=True)
class PositionEdge:
    """One edge of the position graph, labelled with the rule that adds it."""

    source: Position
    target: Position
    special: bool
    rule_id: str


@dataclass(frozen=True)
class PositionGraph:
    """The position-level dependency graph of a coordination-rule set."""

    positions: frozenset[Position]
    edges: tuple[PositionEdge, ...] = field(default=())

    def successors(self) -> dict[Position, list[PositionEdge]]:
        """Adjacency view: position → outgoing edges."""
        adjacency: dict[Position, list[PositionEdge]] = {}
        for edge in self.edges:
            adjacency.setdefault(edge.source, []).append(edge)
        return adjacency

    @property
    def special_edges(self) -> tuple[PositionEdge, ...]:
        """The existential (null-inventing) edges only."""
        return tuple(edge for edge in self.edges if edge.special)

    def __repr__(self) -> str:
        return (
            f"PositionGraph({len(self.positions)} positions, "
            f"{len(self.edges)} edges, {len(self.special_edges)} special)"
        )


def _variable_positions(
    rule: CoordinationRule,
) -> dict[Variable, list[Position]]:
    """Body positions of every variable of ``rule``, in occurrence order."""
    occurrences: dict[Variable, list[Position]] = {}
    for source_node, atom in rule.body:
        for index, term in enumerate(atom.terms):
            if isinstance(term, Variable):
                position = (source_node, atom.relation, index)
                occurrences.setdefault(term, []).append(position)
    return occurrences


def build_position_graph(rules: Iterable[CoordinationRule]) -> PositionGraph:
    """The position graph of ``rules`` (regular + special edges).

    Following the standard construction: for every rule and every variable
    ``x`` occurring both in the body (at position ``p``) and in the head (at
    position ``q``), add a regular edge ``p → q``; additionally, for every
    such exported ``x`` and every *existential* head variable ``y`` (at
    position ``q'``), add a special edge ``p → q'`` — the binding of ``x`` is
    what triggers inventing a fresh null at ``q'``.
    """
    positions: set[Position] = set()
    edges: list[PositionEdge] = []
    for rule in rules:
        occurrences = _variable_positions(rule)
        positions.update(
            position
            for variable_positions in occurrences.values()
            for position in variable_positions
        )
        head = rule.head
        head_positions: dict[Variable, list[Position]] = {}
        for index, term in enumerate(head.terms):
            if isinstance(term, Variable):
                position = (rule.target, head.relation, index)
                positions.add(position)
                head_positions.setdefault(term, []).append(position)
        existentials = set(rule.existential_variables)
        existential_targets = [
            position
            for variable, variable_positions in head_positions.items()
            if variable in existentials
            for position in variable_positions
        ]
        for variable, targets in head_positions.items():
            if variable in existentials:
                continue
            for body_position in occurrences.get(variable, ()):
                for head_position in targets:
                    edges.append(
                        PositionEdge(
                            body_position, head_position, False, rule.rule_id
                        )
                    )
                for head_position in existential_targets:
                    edges.append(
                        PositionEdge(
                            body_position, head_position, True, rule.rule_id
                        )
                    )
    return PositionGraph(frozenset(positions), tuple(edges))


def _strongly_connected_components(
    nodes: Iterable[Position],
    adjacency: Mapping[Position, list[PositionEdge]],
) -> dict[Position, int]:
    """Tarjan's SCC algorithm, iteratively; returns position → component id."""
    index_of: dict[Position, int] = {}
    low: dict[Position, int] = {}
    component: dict[Position, int] = {}
    stack: list[Position] = []
    on_stack: set[Position] = set()
    counter = 0
    components = 0

    for root in nodes:
        if root in index_of:
            continue
        work: list[tuple[Position, int]] = [(root, 0)]
        while work:
            node, edge_index = work[-1]
            if edge_index == 0:
                index_of[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            outgoing = adjacency.get(node, [])
            advanced = False
            while edge_index < len(outgoing):
                successor = outgoing[edge_index].target
                edge_index += 1
                if successor not in index_of:
                    work[-1] = (node, edge_index)
                    work.append((successor, 0))
                    advanced = True
                    break
                if successor in on_stack:
                    low[node] = min(low[node], index_of[successor])
            if advanced:
                continue
            work.pop()
            if low[node] == index_of[node]:
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component[member] = components
                    if member == node:
                        break
                components += 1
            if work:
                parent, _ = work[-1]
                low[parent] = min(low[parent], low[node])
    return component


def existential_cycles(
    rules: Iterable[CoordinationRule],
) -> tuple[PositionEdge, ...]:
    """The special edges lying on a cycle (empty iff weakly acyclic).

    A special edge whose endpoints share a strongly connected component of
    the position graph closes an existential cycle; the returned edges carry
    the ids of the rules responsible, which is what the ``T001`` diagnostic
    reports.
    """
    graph = build_position_graph(rules)
    adjacency = graph.successors()
    component = _strongly_connected_components(graph.positions, adjacency)
    return tuple(
        edge
        for edge in graph.special_edges
        if component.get(edge.source) == component.get(edge.target)
    )


def is_weakly_acyclic(rules: Iterable[CoordinationRule]) -> bool:
    """True when the rule set is weakly acyclic (chase guaranteed to stop)."""
    return not existential_cycles(rules)
