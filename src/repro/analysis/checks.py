"""The individual static checks behind :func:`repro.analysis.analyze`.

Each check is a pure function from network parts (schemas, rules, data) to a
list of :class:`~repro.analysis.diagnostics.Diagnostic` records.  The codes
are grouped by family — ``T`` termination, ``S`` rule safety, ``C`` schema
consistency, ``R`` reachability, ``P`` shard planning — and documented with
examples in ``docs/analysis.md``.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.positions import existential_cycles
from repro.coordination.depgraph import DependencyGraph
from repro.coordination.rule import CoordinationRule, NodeId
from repro.database.relation import Row
from repro.database.schema import DatabaseSchema
from repro.sharding.planner import ShardPlanner

SchemaMap = Mapping[NodeId, DatabaseSchema]
DataMap = Mapping[NodeId, Mapping[str, Sequence[Row]]]


# ------------------------------------------------------------- T: termination


def check_termination(rules: Sequence[CoordinationRule]) -> list[Diagnostic]:
    """``T001`` — existential cycle (weak acyclicity violated).

    ``T002`` — plain dependency cycle: terminates, but worth knowing about.
    """
    diagnostics: list[Diagnostic] = []
    offending = existential_cycles(rules)
    if offending:
        culprits = sorted({edge.rule_id for edge in offending})
        positions = sorted(
            {
                f"{node}.{relation}[{index}]"
                for edge in offending
                for node, relation, index in (edge.source, edge.target)
            }
        )
        diagnostics.append(
            Diagnostic(
                code="T001",
                severity=Severity.ERROR,
                message=(
                    "existential cycle through positions "
                    f"{', '.join(positions)}: rules {', '.join(culprits)} can "
                    "invent labelled nulls that re-trigger each other, so the "
                    "update fix-point is not guaranteed to terminate (the "
                    "rule set is not weakly acyclic)"
                ),
                rule_id=culprits[0],
                suggestion=(
                    "keep key columns in universal (body-bound) head "
                    "positions, or break the import cycle between the "
                    "offending peers"
                ),
            )
        )
        return diagnostics
    graph = DependencyGraph.from_rules(rules)
    if rules and not graph.is_acyclic():
        diagnostics.append(
            Diagnostic(
                code="T002",
                severity=Severity.INFO,
                message=(
                    "the dependency graph is cyclic; termination is still "
                    "guaranteed (weakly acyclic rules), but the fix-point "
                    "may need several propagation rounds"
                ),
            )
        )
    return diagnostics


# ------------------------------------------------------------ S: rule safety


def check_safety(rules: Sequence[CoordinationRule]) -> list[Diagnostic]:
    """``S001`` — fully existential head; ``S002`` — duplicate rule id."""
    diagnostics: list[Diagnostic] = []
    seen: dict[str, CoordinationRule] = {}
    for rule in rules:
        if not rule.distinguished_variables and rule.head.variables:
            diagnostics.append(
                Diagnostic(
                    code="S001",
                    severity=Severity.WARNING,
                    message=(
                        "no head variable is bound by the body: every body "
                        "match materialises a tuple of fresh labelled nulls "
                        f"at {rule.target!r}, which is almost never intended"
                    ),
                    rule_id=rule.rule_id,
                    node=rule.target,
                    suggestion=(
                        "export at least one body variable through the head"
                    ),
                )
            )
        if rule.rule_id in seen:
            diagnostics.append(
                Diagnostic(
                    code="S002",
                    severity=Severity.ERROR,
                    message=(
                        "duplicate rule id: already used by "
                        f"{seen[rule.rule_id]!s}; the registry requires "
                        "globally unique ids (Definition 8)"
                    ),
                    rule_id=rule.rule_id,
                    node=rule.target,
                    suggestion="rename one of the two rules",
                )
            )
        else:
            seen[rule.rule_id] = rule
    return diagnostics


# ----------------------------------------------------- C: schema consistency


def _check_atom(
    schemas: SchemaMap,
    rule_id: str,
    node: NodeId,
    relation: str,
    arity: int,
    role: str,
) -> list[Diagnostic]:
    """Shared C001/C002/C003/C004 logic for one head or body atom."""
    if node not in schemas:
        return [
            Diagnostic(
                code="C001",
                severity=Severity.ERROR,
                message=(
                    f"{role} refers to peer {node!r}, which declares no "
                    "schema in this scenario"
                ),
                rule_id=rule_id,
                node=node,
                suggestion="declare the peer (with its relations) in the spec",
            )
        ]
    schema = schemas[node]
    if relation not in schema:
        code = "C002" if role == "head" else "C003"
        declared = ", ".join(schema.relation_names) or "none"
        return [
            Diagnostic(
                code=code,
                severity=Severity.ERROR,
                message=(
                    f"{role} relation {relation!r} is not declared at peer "
                    f"{node!r} (declared: {declared})"
                ),
                rule_id=rule_id,
                node=node,
                suggestion=f"add {relation!r} to the peer's schema or fix the atom",
            )
        ]
    declared_arity = schema.get(relation).arity
    if arity != declared_arity:
        return [
            Diagnostic(
                code="C004",
                severity=Severity.ERROR,
                message=(
                    f"{role} atom {relation}/{arity} does not match the "
                    f"declared arity {declared_arity} at peer {node!r}"
                ),
                rule_id=rule_id,
                node=node,
                suggestion="make the atom's term count match the schema",
            )
        ]
    return []


def check_schemas(
    schemas: SchemaMap, rules: Sequence[CoordinationRule]
) -> list[Diagnostic]:
    """``C001``–``C004`` — every atom against the peers' declared schemas."""
    diagnostics: list[Diagnostic] = []
    for rule in rules:
        diagnostics.extend(
            _check_atom(
                schemas,
                rule.rule_id,
                rule.target,
                rule.head.relation,
                rule.head.arity,
                "head",
            )
        )
        checked: set[tuple[NodeId, str, int]] = set()
        for node, atom in rule.body:
            signature = (node, atom.relation, atom.arity)
            if signature in checked:
                continue
            checked.add(signature)
            diagnostics.extend(
                _check_atom(
                    schemas,
                    rule.rule_id,
                    node,
                    atom.relation,
                    atom.arity,
                    "body",
                )
            )
    return diagnostics


def check_data(schemas: SchemaMap, data: DataMap) -> list[Diagnostic]:
    """``C005`` — initial rows against the declared schemas."""
    diagnostics: list[Diagnostic] = []
    for node, relations in data.items():
        if node not in schemas:
            diagnostics.append(
                Diagnostic(
                    code="C005",
                    severity=Severity.ERROR,
                    message=(
                        "initial data targets an undeclared peer "
                        f"({len(relations)} relation(s))"
                    ),
                    node=node,
                    suggestion="declare the peer in the spec's schemas",
                )
            )
            continue
        schema = schemas[node]
        for relation, rows in relations.items():
            if relation not in schema:
                diagnostics.append(
                    Diagnostic(
                        code="C005",
                        severity=Severity.ERROR,
                        message=(
                            f"initial data targets relation {relation!r}, "
                            f"which peer {node!r} does not declare"
                        ),
                        node=node,
                        suggestion="declare the relation or move the rows",
                    )
                )
                continue
            expected = schema.get(relation).arity
            bad = [row for row in rows if len(row) != expected]
            if bad:
                diagnostics.append(
                    Diagnostic(
                        code="C005",
                        severity=Severity.ERROR,
                        message=(
                            f"{len(bad)} initial row(s) in {relation!r} have "
                            f"the wrong arity (expected {expected}, e.g. "
                            f"{bad[0]!r})"
                        ),
                        node=node,
                        suggestion="fix the row shape to match the schema",
                    )
                )
    return diagnostics


# --------------------------------------------------------- R: reachability


def check_reachability(
    schemas: SchemaMap,
    rules: Sequence[CoordinationRule],
    data: DataMap,
) -> list[Diagnostic]:
    """``R001`` — rules that can never fire; ``R002`` — isolated peers.

    A relation is *possibly non-empty* when it holds initial rows or is the
    head of a rule whose body relations are all possibly non-empty; the
    least fix-point of that rule marks every relation that could ever gain a
    tuple.  A rule reading a provably-forever-empty relation can never fire.
    """
    diagnostics: list[Diagnostic] = []
    populated: set[tuple[NodeId, str]] = {
        (node, relation)
        for node, relations in data.items()
        for relation, rows in relations.items()
        if rows
    }
    pending = [
        rule
        for rule in rules
        if rule.target in schemas
        and all(node in schemas for node, _atom in rule.body)
    ]
    changed = True
    while changed:
        changed = False
        for rule in pending:
            head_key = (rule.target, rule.head.relation)
            if head_key in populated:
                continue
            if all(
                (node, atom.relation) in populated for node, atom in rule.body
            ):
                populated.add(head_key)
                changed = True
    for rule in pending:
        empty = sorted(
            {
                f"{atom.relation}@{node}"
                for node, atom in rule.body
                if (node, atom.relation) not in populated
            }
        )
        if empty:
            diagnostics.append(
                Diagnostic(
                    code="R001",
                    severity=Severity.WARNING,
                    message=(
                        "rule can never fire: body relation(s) "
                        f"{', '.join(empty)} hold no initial rows and no rule "
                        "ever derives into them"
                    ),
                    rule_id=rule.rule_id,
                    node=rule.target,
                    suggestion=(
                        "load initial data, add a feeding rule, or drop the "
                        "dead rule"
                    ),
                )
            )
    mentioned: set[NodeId] = set()
    for rule in rules:
        mentioned.add(rule.target)
        mentioned.update(rule.sources)
    for node in sorted(set(schemas) - mentioned):
        if len(schemas) > 1:
            diagnostics.append(
                Diagnostic(
                    code="R002",
                    severity=Severity.INFO,
                    message=(
                        "peer participates in no coordination rule; it will "
                        "neither import nor export data"
                    ),
                    node=node,
                )
            )
    return diagnostics


# -------------------------------------------------------- P: shard planning


def check_shard_plan(
    schemas: SchemaMap,
    rules: Sequence[CoordinationRule],
    shards: int | None,
    *,
    cut_threshold: float = 0.5,
) -> list[Diagnostic]:
    """``P001`` — the planned cross-shard cut exceeds ``cut_threshold``.

    Only meaningful when the spec asks for a partitioned run (``shards``
    set); every cut rule edge becomes inter-shard traffic at run time, so a
    plan cutting most edges forfeits the locality the planner exists for.
    """
    if not shards or shards <= 1 or not rules:
        return []
    nodes = set(schemas)
    for rule in rules:
        nodes.add(rule.target)
        nodes.update(rule.sources)
    plan = ShardPlanner(shards).plan_rules(rules, nodes)
    fraction = plan.cut_fraction()
    if fraction <= cut_threshold:
        return []
    return [
        Diagnostic(
            code="P001",
            severity=Severity.WARNING,
            message=(
                f"the {plan.shard_count}-shard plan cuts "
                f"{len(plan.cut_edges())} of {len(plan.edges)} rule edges "
                f"({fraction:.0%} > {cut_threshold:.0%}): most coordination "
                "traffic will cross shard boundaries"
            ),
            suggestion=(
                "use fewer shards, or restructure the topology so chatty "
                "peers can be co-located"
            ),
        )
    ]
