"""Diagnostic records and the analysis report.

Diagnostics follow the shape familiar from ruff/flake8: a short stable code
(``T001``, ``C004``, ...), a severity, a location (rule id and/or peer) and a
one-line message, plus an optional suggestion line telling the author how to
fix the network.  :class:`AnalysisReport` aggregates the diagnostics of one
:func:`~repro.analysis.analyzer.analyze` run and renders them for terminals
(the ``lint`` CLI) and errors (the :class:`~repro.api.session.Session`
pre-flight gate).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator


class Severity(enum.Enum):
    """How bad a diagnostic is.

    ``ERROR`` means the run is provably broken (it cannot terminate, or it
    would crash on a schema mismatch) — the pre-flight gate refuses to run.
    ``WARNING`` flags probable mistakes that still execute; ``INFO`` is
    advisory only.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer.

    ``code`` is the stable identifier documented in ``docs/analysis.md``;
    ``rule_id`` and ``node`` locate the finding when it is attached to a
    specific rule and/or peer (either may be ``None`` for network-level
    findings); ``suggestion`` is an optional actionable fix.
    """

    code: str
    severity: Severity
    message: str
    rule_id: str | None = None
    node: str | None = None
    suggestion: str | None = None

    @property
    def location(self) -> str:
        """A compact rendering of where the finding is anchored."""
        parts = []
        if self.rule_id is not None:
            parts.append(f"rule {self.rule_id!r}")
        if self.node is not None:
            parts.append(f"peer {self.node!r}")
        return ", ".join(parts) if parts else "network"

    def render(self) -> str:
        """The one-line (plus optional suggestion) terminal form."""
        line = f"{self.code} [{self.severity}] {self.location}: {self.message}"
        if self.suggestion:
            line += f"\n     fix: {self.suggestion}"
        return line

    def __str__(self) -> str:
        return self.render()


@dataclass(frozen=True)
class AnalysisReport:
    """Every diagnostic one analysis pass produced, with aggregate views."""

    scenario: str
    diagnostics: tuple[Diagnostic, ...] = field(default=())

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def by_severity(self, severity: Severity) -> tuple[Diagnostic, ...]:
        """The diagnostics of one severity, in emission order."""
        return tuple(d for d in self.diagnostics if d.severity is severity)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        """Findings that make the network unsafe to run."""
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        """Probable mistakes that still execute."""
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        """Advisory findings."""
        return self.by_severity(Severity.INFO)

    @property
    def ok(self) -> bool:
        """True when the network has no error-level findings."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """True when the network has no findings at all."""
        return not self.diagnostics

    def codes(self, severity: Severity | None = None) -> tuple[str, ...]:
        """The distinct diagnostic codes present, sorted.

        ``severity`` restricts the view to one level when given.
        """
        found = (
            self.diagnostics
            if severity is None
            else self.by_severity(severity)
        )
        return tuple(sorted({d.code for d in found}))

    def render(self) -> str:
        """The multi-line terminal rendering the ``lint`` CLI prints."""
        header = f"analysis of {self.scenario!r}:"
        if self.clean:
            return f"{header} clean"
        lines = [header]
        lines.extend(f"  {d.render()}" for d in self.diagnostics)
        lines.append(
            f"  {len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} info(s)"
        )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
