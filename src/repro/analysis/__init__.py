"""Static pre-flight analysis of coordination-rule networks.

The paper's update algorithms (A4–A6) always terminate on *well-behaved*
networks, but a pathological rule set — mutually recursive existential
imports — can keep the chase alive for hours before the projection check
catches up.  Running the fix-point is the wrong way to find that out.  This
package is the corresponding "network linter": a purely static pass over a
:class:`~repro.api.spec.ScenarioSpec` that proves termination (weak
acyclicity over a position-level dependency graph), rule safety, schema
consistency, reachability and shard-plan quality *before* any engine spawns
a worker — milliseconds instead of minutes.

Public surface:

* :func:`~repro.analysis.analyzer.analyze` — run every check over a spec and
  return an :class:`~repro.analysis.diagnostics.AnalysisReport`,
* :class:`~repro.analysis.diagnostics.Diagnostic` /
  :class:`~repro.analysis.diagnostics.AnalysisReport` /
  :class:`~repro.analysis.diagnostics.Severity` — the result types,
* :func:`~repro.analysis.positions.build_position_graph` /
  :func:`~repro.analysis.positions.is_weakly_acyclic` — the termination
  machinery, reusable on bare rule lists,
* ``python -m repro lint scenario.json`` — the CLI front end;
  :meth:`Session.from_spec <repro.api.session.Session.from_spec>` runs the
  same checks as a pre-run gate (disable with ``check=False`` or the CLI's
  ``--no-preflight``).

The diagnostic-code reference lives in ``docs/analysis.md``.
"""

from repro.analysis.analyzer import analyze, analyze_parts
from repro.analysis.diagnostics import (
    AnalysisReport,
    Diagnostic,
    Severity,
)
from repro.analysis.positions import (
    PositionGraph,
    build_position_graph,
    existential_cycles,
    is_weakly_acyclic,
)

__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "Severity",
    "PositionGraph",
    "analyze",
    "analyze_parts",
    "build_position_graph",
    "existential_cycles",
    "is_weakly_acyclic",
]
