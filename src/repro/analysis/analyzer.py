"""The analysis entry points: one call runs every static check.

:func:`analyze` takes a :class:`~repro.api.spec.ScenarioSpec` (or a path to a
scenario JSON file) and returns an
:class:`~repro.analysis.diagnostics.AnalysisReport`; :func:`analyze_parts`
is the same pass over loose parts for callers that have no spec object.  The
pass is purely static — nothing is built, no engine starts, no data moves —
so it runs in milliseconds even for networks whose fix-point would take
minutes, which is the whole point of pre-flight checking.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.analysis.checks import (
    DataMap,
    SchemaMap,
    check_data,
    check_reachability,
    check_safety,
    check_schemas,
    check_shard_plan,
    check_termination,
)
from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.coordination.rule import CoordinationRule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (spec imports us)
    from repro.api.spec import ScenarioSpec

#: Severity rank used to sort reports: errors first, then warnings, infos.
_SEVERITY_ORDER = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


def _sorted(diagnostics: list[Diagnostic]) -> tuple[Diagnostic, ...]:
    return tuple(
        sorted(
            diagnostics,
            key=lambda d: (
                _SEVERITY_ORDER[d.severity],
                d.code,
                d.rule_id or "",
                d.node or "",
            ),
        )
    )


def analyze_parts(
    schemas: SchemaMap,
    rules: Sequence[CoordinationRule],
    data: DataMap | None = None,
    *,
    shards: int | None = None,
    scenario: str = "network",
    cut_threshold: float = 0.5,
) -> AnalysisReport:
    """Run every static check over loose network parts."""
    data = data or {}
    diagnostics: list[Diagnostic] = []
    diagnostics.extend(check_schemas(schemas, rules))
    diagnostics.extend(check_data(schemas, data))
    diagnostics.extend(check_safety(rules))
    diagnostics.extend(check_termination(rules))
    diagnostics.extend(check_reachability(schemas, rules, data))
    diagnostics.extend(
        check_shard_plan(schemas, rules, shards, cut_threshold=cut_threshold)
    )
    return AnalysisReport(scenario=scenario, diagnostics=_sorted(diagnostics))


def analyze(
    spec: "ScenarioSpec | str | Path",
    *,
    cut_threshold: float = 0.5,
) -> AnalysisReport:
    """Statically analyze a scenario (a spec object, JSON text or a path).

    Strings and paths are loaded through
    :meth:`~repro.api.spec.ScenarioSpec.load_json` first, so the CLI's
    ``lint`` command and library callers share one code path.
    """
    from repro.api.spec import ScenarioSpec

    if not isinstance(spec, ScenarioSpec):
        spec = ScenarioSpec.load_json(spec)
    return analyze_parts(
        spec.schemas,
        spec.rules,
        spec.data,
        shards=spec.shards,
        scenario=spec.name,
        cut_threshold=cut_threshold,
    )
