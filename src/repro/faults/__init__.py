"""Deterministic fault injection, recovery, and post-heal reconciliation.

The chaos layer of the reproduction (the ROADMAP's "churn, partitions, and
reconciliation scenarios" item): seeded :class:`FaultPlan`s describe worker
kills, frame drops/delays and host partitions; :class:`FaultInjector` fires
them at the engines' phase hook points and owns the recovery budget
(bounded send retries, cold re-runs); :mod:`repro.faults.reconcile` merges
divergent databases after a heal from their :class:`ChangeSet` logs.  See
``docs/faults.md`` for the plan format and the recovery guarantees.
"""

from repro.faults.injector import (
    NULL_INJECTOR,
    FaultInjector,
    NullFaultInjector,
    WorkerFrameInjector,
    injector_of,
)
from repro.faults.plan import (
    FAULT_KINDS,
    FAULT_PHASES,
    FRAME_KINDS,
    FaultPlan,
    FaultSpec,
)
from repro.faults.reconcile import (
    apply_changeset,
    changes_since,
    merge_changesets,
    reconcile,
)
from repro.faults.recovery import RetryPolicy, retry_after_hint, retry_call

__all__ = [
    "FAULT_KINDS",
    "FAULT_PHASES",
    "FRAME_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "NULL_INJECTOR",
    "NullFaultInjector",
    "RetryPolicy",
    "WorkerFrameInjector",
    "apply_changeset",
    "changes_since",
    "injector_of",
    "merge_changesets",
    "reconcile",
    "retry_after_hint",
    "retry_call",
]
