"""Fault injectors: the machinery that arms and fires a :class:`FaultPlan`.

Two injectors exist, one per side of the engine split:

* :class:`FaultInjector` lives on the coordinator (attached to the
  :class:`~repro.core.system.P2PSystem` by the session, discovered by the
  engines through :func:`injector_of`).  It fires kill and partition faults
  at the engines' phase hook points, gates socket sends through the current
  partition set, and owns the cold-rerun recovery budget.
* :class:`WorkerFrameInjector` lives inside each shard worker process,
  rebuilt per spawn from the plan subset shipped with the
  :class:`~repro.sharding.multiproc.ShardWorld`.  It perturbs individual
  cross-shard frames (drop-and-retransmit, delay) on the simulated clock.

Everything is seeded (``random.Random(plan.seed)``) and every action bumps a
``repro_fault_*`` counter on the owning registry, so a chaos run is both
reproducible and observable.  The :data:`NULL_INJECTOR` keeps every hook a
cheap attribute check on fault-free runs.
"""

from __future__ import annotations

import random
import time
from dataclasses import replace
from typing import TYPE_CHECKING, Any

from repro.errors import FaultError, PartitionError
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.recovery import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry


class NullFaultInjector:
    """The do-nothing injector every engine sees on a fault-free run."""

    enabled = False
    plan: FaultPlan | None = None
    retry_policy: RetryPolicy | None = None

    def start_run(self) -> None:
        pass

    def fire(self, phase: str, pool: Any) -> None:
        pass

    def check_partition(self, address: str) -> None:
        pass

    def note_retry(self, error: BaseException) -> None:
        pass

    def should_rerun(self, error: BaseException) -> bool:
        return False

    def worker_plan(self) -> FaultPlan | None:
        return None


#: Shared singleton; engines fall back to it via :func:`injector_of`.
NULL_INJECTOR = NullFaultInjector()


def injector_of(obj: Any) -> "FaultInjector | NullFaultInjector":
    """The fault injector attached to ``obj`` (a system), or the null one."""
    injector = getattr(obj, "fault_injector", None)
    return injector if injector is not None else NULL_INJECTOR


class FaultInjector:
    """Coordinator-side injector: kills, partitions, and the recovery budget.

    One injector serves every run of its session; :meth:`start_run` advances
    the run index and arms the coordinator specs whose ``run_index`` matches.
    Fired specs are consumed immediately, so a cold re-run after a kill
    proceeds fault-free and converges.
    """

    enabled = True

    def __init__(self, plan: FaultPlan, registry: "MetricsRegistry") -> None:
        self.plan = plan
        self.registry = registry
        self._rng = random.Random(plan.seed)
        self._run = -1
        self._armed: list[FaultSpec] = []
        self._reruns_left = plan.max_cold_reruns
        # "HOST:PORT" -> heal deadline (monotonic seconds), None = permanent.
        self._partitions: dict[str, float | None] = {}

    # ------------------------------------------------------------ run control

    @property
    def retry_policy(self) -> RetryPolicy | None:
        if self.plan.send_retries <= 0:
            return None
        return RetryPolicy(
            attempts=self.plan.send_retries, backoff=self.plan.backoff
        )

    def start_run(self) -> None:
        """Advance to the next engine run and arm its coordinator faults."""
        self._run += 1
        self._armed = [
            spec
            for spec in self.plan.coordinator_specs()
            if spec.run_index == self._run
        ]

    def worker_plan(self) -> FaultPlan | None:
        """The frame-fault subset, rebased to the receiving worker generation.

        A plan's ``run_index`` counts the session's engine runs, but workers
        count ``start`` commands since their own spawn — and worlds ship at
        spawn time, which the engines always do *after* :meth:`start_run`.
        Subtracting the current run index makes the two clocks agree for
        every generation: a one-shot engine re-ships each run (base = that
        run), a warm pool ships once (base = the run that spawned it) and
        counts forward, and a post-crash respawn drops the specs its
        predecessor already lived through.
        """
        plan = self.plan.worker_plan()
        if plan is None:
            return None
        base = max(self._run, 0)
        faults = tuple(
            replace(spec, run_index=spec.run_index - base)
            for spec in plan.faults
            if spec.run_index >= base
        )
        if not faults:
            return None
        return plan.with_(faults=faults)

    # ------------------------------------------------------------- fire hooks

    def fire(self, phase: str, pool: Any) -> None:
        """Fire every armed fault declared for ``phase`` against ``pool``.

        ``pool`` must expose ``shard_count`` and ``kill_worker(shard)``;
        partitions additionally need ``host_of(shard)`` (socket pools only).
        """
        armed, self._armed = self._armed, []
        for spec in armed:
            if spec.phase != phase:
                self._armed.append(spec)
                continue
            shard = spec.shard
            if shard is None:
                shard = self._rng.randrange(pool.shard_count)
            elif shard >= pool.shard_count:
                raise FaultError(
                    f"fault targets shard {shard} but the pool has "
                    f"{pool.shard_count} shards"
                )
            if spec.kind == "kill_worker":
                pool.kill_worker(shard)
            elif spec.kind == "partition":
                host_of = getattr(pool, "host_of", None)
                if host_of is None:
                    raise FaultError(
                        "partition faults need a socket engine "
                        "(transport='socket' or 'socket-pooled')"
                    )
                deadline = (
                    None
                    if spec.heal_after is None
                    else time.monotonic() + spec.heal_after
                )
                self._partitions[host_of(shard)] = deadline
                self._count("repro_fault_partitions_total")
            else:  # pragma: no cover - frame kinds never reach the coordinator
                raise FaultError(f"cannot fire {spec.kind} on the coordinator")
            self._count(
                "repro_fault_injected_total",
                {"kind": spec.kind, "phase": phase},
            )

    # ---------------------------------------------------------- partition gate

    def check_partition(self, address: str) -> None:
        """Raise :class:`PartitionError` while ``address`` is partitioned.

        Called by every socket link before a write.  A deadline that has
        passed heals the partition (and counts the heal) instead of raising.
        """
        if address not in self._partitions:
            return
        deadline = self._partitions[address]
        if deadline is not None and time.monotonic() >= deadline:
            del self._partitions[address]
            self._count("repro_fault_partition_heals_total")
            return
        raise PartitionError(
            f"host {address} is partitioned from the coordinator"
        )

    def heal_all(self) -> None:
        """Lift every remaining partition (used by reconciliation drivers)."""
        healed = len(self._partitions)
        self._partitions.clear()
        if healed:
            self._count("repro_fault_partition_heals_total", amount=healed)

    # ------------------------------------------------------------- recovery

    def note_retry(self, error: BaseException) -> None:
        self._count("repro_fault_retries_total")

    def should_rerun(self, error: BaseException) -> bool:
        """Record a detected failure; grant a cold re-run if budget remains."""
        self._count("repro_fault_detected_total")
        if self._reruns_left <= 0:
            return False
        self._reruns_left -= 1
        self._count("repro_fault_cold_reruns_total")
        return True

    # -------------------------------------------------------------- plumbing

    def _count(
        self,
        name: str,
        labels: dict[str, str] | None = None,
        amount: float = 1,
    ) -> None:
        # Get-or-create on every bump: the collector resets its registry
        # between runs, so cached handles would go stale.
        self.registry.counter(name, labels).inc(amount)


class WorkerFrameInjector:
    """Worker-side injector: perturbs this shard's outgoing cross-shard frames.

    Rebuilt from ``world.fault_plan`` on every worker (re)spawn; ``start_run``
    is called on each ``start`` command, re-arming the specs whose
    ``run_index`` matches the number of runs *this worker generation* has
    seen (worlds ship once per spawn, so a cold re-run counts from zero —
    which is exactly the "the re-run is fault-free unless re-declared"
    semantics the recovery tests rely on).
    """

    def __init__(
        self, plan: FaultPlan, shard_index: int, registry: "MetricsRegistry"
    ) -> None:
        self.plan = plan
        self.shard_index = shard_index
        self.registry = registry
        self._run = -1
        # Armed entries are mutable [spec, remaining_count] pairs.
        self._armed: list[list[Any]] = []

    def start_run(self) -> None:
        self._run += 1
        self._armed = [
            [spec, spec.count]
            for spec in self.plan.frame_specs()
            if spec.run_index == self._run
            and (spec.shard is None or spec.shard == self.shard_index)
        ]

    def frame_fault(self) -> float:
        """Extra simulated latency for the next cross-shard frame.

        Consumes at most one armed fault.  A dropped frame is modelled as
        drop-plus-retransmit: the frame still arrives exactly once (keeping
        the cumulative-counter barrier balanced) but pays the retransmit
        delay, and both the drop and the retry are counted.
        """
        if not self._armed:
            return 0.0
        entry = self._armed[0]
        spec: FaultSpec = entry[0]
        entry[1] -= 1
        if entry[1] <= 0:
            self._armed.pop(0)
        registry = self.registry
        registry.counter(
            "repro_fault_injected_total", {"kind": spec.kind}
        ).inc()
        if spec.kind == "drop_frame":
            registry.counter("repro_fault_frames_dropped_total").inc()
            registry.counter("repro_fault_retries_total").inc()
        else:
            registry.counter("repro_fault_frames_delayed_total").inc()
        return spec.delay
