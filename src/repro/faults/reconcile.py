"""Log-based reconciliation of divergent node databases after a heal.

While a partition is up, the two sides of a network accept different base
inserts and chase them to different fix-points.  Reconciliation treats each
side's divergence as a *change log* — a
:class:`~repro.coordination.changeset.ChangeSet` computed against the common
pre-partition baseline — merges the logs with :meth:`ChangeSet.union`
(idempotent, commutative, associative; see
``tests/property/test_property_reconcile.py``), replays the merged log into
every side, and re-runs the update protocol so the coordination rules close
over the merged base facts.  Because the chase is monotone and confluent
(Lemma 1), the reconciled sides converge to the *same* fix-point the network
would have reached had the partition never happened — which is exactly what
the chaos suite asserts via :func:`~repro.coordination.changeset.digest_system`.

The model is insert-only: logs that record removals or rule edits cannot be
merged order-insensitively (retraction is not monotone) and raise a typed
:class:`~repro.errors.FaultError` instead of guessing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.coordination.changeset import ChangeSet
from repro.coordination.rule import NodeId
from repro.database.relation import Row
from repro.errors import FaultError

if TYPE_CHECKING:  # pragma: no cover
    from repro.api.session import Session
    from repro.core.system import P2PSystem

#: The database-snapshot shape produced by ``P2PSystem.databases()``.
Snapshot = Mapping[NodeId, Mapping[str, frozenset[Row]]]


def changes_since(baseline: Snapshot, current: Snapshot) -> ChangeSet:
    """The change log that takes ``baseline`` to ``current``.

    Rows present in ``current`` but not in ``baseline`` become inserts (in
    canonical sorted order); any row or relation that *disappeared* sets the
    ``removals`` flag, which :func:`reconcile` then refuses to merge.
    """
    inserts: dict[NodeId, dict[str, tuple[Row, ...]]] = {}
    removals = False
    for node_id, relations in current.items():
        base_relations = baseline.get(node_id, {})
        for relation_name, rows in relations.items():
            base_rows = base_relations.get(relation_name, frozenset())
            new_rows = set(rows) - set(base_rows)
            if set(base_rows) - set(rows):
                removals = True
            if new_rows:
                inserts.setdefault(node_id, {})[relation_name] = tuple(
                    sorted(new_rows, key=repr)
                )
    for node_id, relations in baseline.items():
        current_relations = current.get(node_id, {})
        for relation_name, rows in relations.items():
            if rows and relation_name not in current_relations:
                removals = True
        if relations and node_id not in current:
            removals = True
    return ChangeSet(
        inserts={
            node_id: dict(sorted(relations.items()))
            for node_id, relations in sorted(inserts.items())
        },
        removals=removals,
    )


def merge_changesets(*logs: ChangeSet) -> ChangeSet:
    """Fold any number of change logs into one canonical merged log."""
    merged = ChangeSet()
    for log in logs:
        merged = merged.union(log)
    return merged


def apply_changeset(system: "P2PSystem", changes: ChangeSet) -> int:
    """Insert the log's rows into ``system``; returns rows genuinely new.

    Only touches nodes and relations the system actually has — a log may
    legitimately mention rows a side already derived on its own.
    """
    applied = 0
    for node_id, relations in changes.inserts.items():
        if node_id not in system.nodes:
            raise FaultError(
                f"reconciliation log mentions unknown node {node_id!r}"
            )
        database = system.nodes[node_id].database
        for relation_name, rows in relations.items():
            if relation_name not in database:
                raise FaultError(
                    f"reconciliation log mentions unknown relation "
                    f"{relation_name!r} on node {node_id!r}"
                )
            for row in rows:
                if database.insert(relation_name, row):
                    applied += 1
    return applied


def reconcile(
    sessions: "list[Session]",
    baseline: Snapshot,
    *,
    run: bool = True,
) -> ChangeSet:
    """Merge the sessions' divergence logs and bring every side up to date.

    ``baseline`` is the common pre-partition snapshot.  Each session's log is
    derived with :func:`changes_since`, the logs are merged, the merged base
    rows are replayed into every session's system (counted as
    ``repro_fault_reconciled_rows_total``), and — unless ``run=False`` —
    each session re-runs the update protocol to close the fix-point.
    Returns the merged log.
    """
    logs = [
        changes_since(baseline, session.system.databases()) for session in sessions
    ]
    merged = merge_changesets(*logs)
    if merged.removals or merged.rule_changes:
        raise FaultError(
            "log-based reconciliation is insert-only: the divergence logs "
            "record removals or rule changes, which cannot be merged "
            "order-insensitively"
        )
    for session in sessions:
        applied = apply_changeset(session.system, merged)
        if applied:
            session.system.stats.registry.counter(
                "repro_fault_reconciled_rows_total"
            ).inc(applied)
        if run:
            session.update()
    return merged
