"""Bounded retry-with-backoff for transient transport failures.

The socket links use :func:`retry_call` around connects and frame writes when
a fault plan grants a retry budget: a partition that heals within the budget
is ridden out transparently, one that does not re-raises the last (typed)
error.  The policy is deliberately tiny — attempts, an exponential backoff,
and a cap — because the quiescence barrier above already bounds total stall
time at :data:`~repro.sharding.multiproc._WORKER_TIMEOUT`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.errors import FaultError, NetworkError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How often, and how patiently, to retry a failed call."""

    attempts: int
    backoff: float = 0.05
    factor: float = 2.0
    max_backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.attempts < 0:
            raise FaultError(f"retry attempts must be >= 0, got {self.attempts}")
        if self.backoff < 0 or self.max_backoff < 0 or self.factor < 1.0:
            raise FaultError(
                "retry backoff/max_backoff must be >= 0 and factor >= 1.0"
            )

    def delays(self) -> list[float]:
        """The sleep before each retry (length == ``attempts``)."""
        delays = []
        delay = self.backoff
        for _ in range(self.attempts):
            delays.append(min(delay, self.max_backoff))
            delay *= self.factor
        return delays


def retry_after_hint(policy: RetryPolicy) -> float:
    """Seconds a caller should wait once ``policy``'s budget is spent.

    The serving front-end puts this on ``Retry-After`` headers when a run
    fails through the whole retry schedule (e.g. an unhealed partition):
    retrying sooner than the schedule's last backoff step would just replay
    the same failure, so that step is the honest hint.  A zero-attempt
    policy falls back to the base backoff.
    """
    delays = policy.delays()
    return delays[-1] if delays else max(policy.backoff, 0.05)


def retry_call(
    fn: Callable[[], T],
    *,
    policy: RetryPolicy,
    retryable: tuple[type[BaseException], ...] = (NetworkError,),
    on_retry: Callable[[BaseException], None] | None = None,
) -> T:
    """Call ``fn``, retrying up to ``policy.attempts`` times on ``retryable``.

    ``on_retry`` is invoked with the error before each sleep (the injector
    hooks it to bump ``repro_fault_retries_total``).  The final failure
    re-raises unchanged so callers keep the typed cause.
    """
    schedule: list[float | None] = [*policy.delays(), None]
    for delay in schedule:
        try:
            return fn()
        except retryable as error:
            if delay is None:
                raise
            if on_retry is not None:
                on_retry(error)
            time.sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
