"""Declarative, seeded fault plans.

A :class:`FaultPlan` is the serialisable description of *what goes wrong* in a
chaos run: which fault kinds fire, in which engine phase, against which shard,
and with which recovery budget.  Plans are plain frozen dataclasses with a
versioned JSON round-trip (mirroring :class:`~repro.api.spec.ScenarioSpec`),
picklable so the frame-fault subset can ride inside the shipped
:class:`~repro.sharding.multiproc.ShardWorld`s, and deterministic: every
random choice an injector makes is drawn from ``random.Random(plan.seed)``,
so a failing chaos run reproduces byte-for-byte from its plan file.

The plan is inert data.  The machinery that arms and fires it lives in
:mod:`repro.faults.injector`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.errors import FaultError

#: Fault kinds a plan may request.
#:
#: ``kill_worker``  — terminate one shard worker mid-phase (coordinator-side).
#: ``drop_frame``   — drop one cross-shard frame and retransmit it after
#:                    ``delay`` simulated seconds (worker-side; counted so the
#:                    quiescence barrier stays balanced).
#: ``delay_frame``  — delay one cross-shard frame by ``delay`` simulated
#:                    seconds (worker-side).
#: ``partition``    — cut the coordinator's link to the host owning ``shard``;
#:                    heal it after ``heal_after`` wall seconds (socket only).
FAULT_KINDS: tuple[str, ...] = (
    "kill_worker",
    "drop_frame",
    "delay_frame",
    "partition",
)

#: Engine phases a fault can be armed for.  ``ship`` covers spawn/world
#: shipping, ``sync`` the warm-pool delta sync, ``chase`` the main fix-point
#: drive, and ``quiescence`` the window between the barrier settling and the
#: result collection.
FAULT_PHASES: tuple[str, ...] = ("ship", "sync", "chase", "quiescence")

#: Kinds injected inside worker processes (they act on individual frames).
FRAME_KINDS: tuple[str, ...] = ("drop_frame", "delay_frame")

_PLAN_FORMAT = "repro-faults/1"


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject.

    ``shard`` of ``None`` means "pick a victim with the plan's seeded RNG";
    ``run_index`` counts engine runs on one session (0 = first run), letting a
    warm-pool plan target the second, delta-synced run.  ``count`` repeats a
    frame fault that many times within the run.  ``heal_after`` of ``None``
    makes a partition permanent (the run must then fail loudly within its
    retry budget).
    """

    kind: str
    phase: str = "chase"
    shard: int | None = None
    run_index: int = 0
    count: int = 1
    delay: float = 0.05
    heal_after: float | None = 0.5

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.phase not in FAULT_PHASES:
            raise FaultError(
                f"unknown fault phase {self.phase!r}; "
                f"expected one of {FAULT_PHASES}"
            )
        if self.shard is not None and self.shard < 0:
            raise FaultError(f"fault shard must be >= 0, got {self.shard}")
        if self.run_index < 0:
            raise FaultError(f"fault run_index must be >= 0, got {self.run_index}")
        if self.count < 1:
            raise FaultError(f"fault count must be >= 1, got {self.count}")
        if self.delay < 0:
            raise FaultError(f"fault delay must be >= 0, got {self.delay}")
        if self.heal_after is not None and self.heal_after < 0:
            raise FaultError(
                f"fault heal_after must be >= 0 or null, got {self.heal_after}"
            )
        if self.kind in FRAME_KINDS and self.phase != "chase":
            raise FaultError(
                f"{self.kind} faults act on chase-phase traffic; "
                f"got phase {self.phase!r}"
            )

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "phase": self.phase,
            "shard": self.shard,
            "run_index": self.run_index,
            "count": self.count,
            "delay": self.delay,
            "heal_after": self.heal_after,
        }

    @classmethod
    def from_json_dict(cls, document: Mapping[str, Any]) -> "FaultSpec":
        if not isinstance(document, Mapping):
            raise FaultError(
                f"each fault must be a JSON object, got {type(document).__name__}"
            )
        unknown = set(document) - {
            "kind",
            "phase",
            "shard",
            "run_index",
            "count",
            "delay",
            "heal_after",
        }
        if unknown:
            raise FaultError(f"unknown fault fields: {sorted(unknown)}")
        if "kind" not in document:
            raise FaultError("a fault needs a 'kind' field")
        kwargs = dict(document)
        return cls(**kwargs)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of faults plus the recovery budget allowed against them.

    ``max_cold_reruns`` lets the engines degrade a failed (killed/partitioned)
    run to a cold re-run that many times before re-raising; ``send_retries``
    plus ``backoff`` configure bounded retry-with-backoff on the socket
    transports.  All budgets default to zero so an *undeclared* fault still
    fails loudly — recovery is always opt-in, per plan.
    """

    seed: int = 0
    faults: tuple[FaultSpec, ...] = ()
    max_cold_reruns: int = 0
    send_retries: int = 0
    backoff: float = 0.05

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if not isinstance(fault, FaultSpec):
                raise FaultError(
                    f"plan faults must be FaultSpec instances, "
                    f"got {type(fault).__name__}"
                )
        if self.max_cold_reruns < 0:
            raise FaultError(
                f"max_cold_reruns must be >= 0, got {self.max_cold_reruns}"
            )
        if self.send_retries < 0:
            raise FaultError(f"send_retries must be >= 0, got {self.send_retries}")
        if self.backoff < 0:
            raise FaultError(f"backoff must be >= 0, got {self.backoff}")

    def with_(self, **changes: Any) -> "FaultPlan":
        return replace(self, **changes)

    # ------------------------------------------------------------- selections

    def coordinator_specs(self) -> tuple[FaultSpec, ...]:
        """Faults fired by the coordinator (kills and partitions)."""
        return tuple(f for f in self.faults if f.kind not in FRAME_KINDS)

    def frame_specs(self) -> tuple[FaultSpec, ...]:
        """Faults applied inside worker processes (frame drop/delay)."""
        return tuple(f for f in self.faults if f.kind in FRAME_KINDS)

    def worker_plan(self) -> "FaultPlan | None":
        """The (picklable) subset shipped to workers, or ``None`` if empty."""
        frame = self.frame_specs()
        if not frame:
            return None
        return FaultPlan(seed=self.seed, faults=frame)

    # ------------------------------------------------------------ JSON I/O

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "format": _PLAN_FORMAT,
            "seed": self.seed,
            "max_cold_reruns": self.max_cold_reruns,
            "send_retries": self.send_retries,
            "backoff": self.backoff,
            "faults": [fault.to_json_dict() for fault in self.faults],
        }

    def dump_json(self, path: str | Path | None = None) -> str:
        text = json.dumps(self.to_json_dict(), indent=2, sort_keys=True)
        if path is not None:
            Path(path).write_text(text + "\n", encoding="utf-8")
        return text

    @classmethod
    def from_json_dict(cls, document: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(document, Mapping):
            raise FaultError(
                f"a fault plan must be a JSON object, "
                f"got {type(document).__name__}"
            )
        fmt = document.get("format")
        if fmt != _PLAN_FORMAT:
            raise FaultError(
                f"unsupported fault-plan format {fmt!r}; expected {_PLAN_FORMAT!r}"
            )
        unknown = set(document) - {
            "format",
            "seed",
            "max_cold_reruns",
            "send_retries",
            "backoff",
            "faults",
        }
        if unknown:
            raise FaultError(f"unknown fault-plan fields: {sorted(unknown)}")
        raw_faults = document.get("faults", [])
        if not isinstance(raw_faults, Sequence) or isinstance(raw_faults, str):
            raise FaultError("'faults' must be a JSON array")
        return cls(
            seed=int(document.get("seed", 0)),
            max_cold_reruns=int(document.get("max_cold_reruns", 0)),
            send_retries=int(document.get("send_retries", 0)),
            backoff=float(document.get("backoff", 0.05)),
            faults=tuple(FaultSpec.from_json_dict(f) for f in raw_faults),
        )

    @classmethod
    def load_json(cls, source: str | Path) -> "FaultPlan":
        """Load a plan from a path or a JSON string."""
        text = str(source)
        if not text.lstrip().startswith("{"):
            text = Path(source).read_text(encoding="utf-8")
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            raise FaultError(f"fault plan is not valid JSON: {error}") from error
        return cls.from_json_dict(document)


__all__ = [
    "FAULT_KINDS",
    "FAULT_PHASES",
    "FRAME_KINDS",
    "FaultPlan",
    "FaultSpec",
]
