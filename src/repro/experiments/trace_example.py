"""Experiment E2 — the Figure 1 execution trace.

Figure 1 of the paper shows a sample execution of the discovery and update
algorithms on the example system, as a message sequence between nodes A, B, C
and E: ``requestNodes`` flowing away from A, ``processAnswer`` echoes flowing
back, then ``Query`` / ``Answer`` exchanges of the update phase.

This experiment re-runs both phases on the example with message tracing
enabled and reports the ordered trace restricted to the same four nodes, plus
counts per message type, so the shape of Figure 1 (requests cascade forward,
answers cascade back, updates keep exchanging until the fix-point) can be
checked mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.session import Session
from repro.stats.report import format_table
from repro.workloads.scenarios import build_paper_example


@dataclass(frozen=True)
class TraceEntry:
    """One delivered message in the trace."""

    time: float
    message_type: str
    sender: str
    recipient: str


@dataclass(frozen=True)
class TraceResult:
    """The recorded execution trace and simple aggregates."""

    entries: tuple[TraceEntry, ...]
    counts_by_type: dict[str, int]
    discovery_time: float
    update_time: float

    def entries_between(self, nodes: frozenset[str]) -> tuple[TraceEntry, ...]:
        """The sub-trace involving only the given nodes (Figure 1 uses A, B, C, E)."""
        return tuple(
            entry
            for entry in self.entries
            if entry.sender in nodes and entry.recipient in nodes
        )


def run_trace_example(*, propagation: str = "per_path") -> TraceResult:
    """Run discovery + update on the example with tracing enabled."""
    system = build_paper_example(propagation=propagation)
    system.transport.enable_trace()
    session = Session.of(system)
    discovery_time = session.run("discovery", origins=["A"]).completion_time
    update_time = session.run("update").completion_time

    entries = tuple(
        TraceEntry(
            time=at_time,
            message_type=message.type.value,
            sender=message.sender,
            recipient=message.recipient,
        )
        for at_time, message in system.transport.trace
    )
    counts: dict[str, int] = {}
    for entry in entries:
        counts[entry.message_type] = counts.get(entry.message_type, 0) + 1
    return TraceResult(
        entries=entries,
        counts_by_type=counts,
        discovery_time=discovery_time,
        update_time=update_time,
    )


def main(limit: int = 40) -> str:
    """Print the first ``limit`` trace entries between nodes A, B, C and E."""
    result = run_trace_example()
    figure_nodes = frozenset({"A", "B", "C", "E"})
    rows = [
        [f"{entry.time:.1f}", entry.message_type, entry.sender, entry.recipient]
        for entry in result.entries_between(figure_nodes)[:limit]
    ]
    table = format_table(
        ["t", "message", "from", "to"],
        rows,
        title="E2 — execution trace on the example (nodes A, B, C, E)",
    )
    counts = ", ".join(
        f"{name}={count}" for name, count in sorted(result.counts_by_type.items())
    )
    table += f"\nmessage counts: {counts}"
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
