"""Experiment E3 — scalability with respect to network size.

Section 5: "Up to 31 nodes participated to the preliminary experiments. [...]
about 20000 records about publications (about 1000 per node), organised in 3
different relational schemas. [...] Three types of topologies have been
considered: trees, layered acyclic graphs, and cliques."

This experiment sweeps the number of nodes for each topology family, runs
topology discovery followed by the global update, and reports execution time
(simulated), message counts and data volumes — the quantities the paper's
statistics module collected.  Record counts default to a laptop-friendly value
and can be raised to the paper's 1000 records/node via ``records_per_node``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.api.session import Session
from repro.api.spec import ScenarioSpec
from repro.errors import ReproError
from repro.obs import Tracer
from repro.experiments.runner import UpdateRunResult, run_dblp_update
from repro.stats.report import format_table
from repro.workloads.topologies import (
    TopologySpec,
    clique_topology,
    layered_topology,
    tree_topology,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults import FaultPlan


def tree_specs(sizes: Sequence[int]) -> list[TopologySpec]:
    """Binary trees whose node counts are closest to the requested sizes.

    Sizes follow the usual complete-binary-tree counts 3, 7, 15, 31 — 31 nodes
    being the paper's maximum.
    """
    depth_for_size = {3: 1, 7: 2, 15: 3, 31: 4, 63: 5}
    specs = []
    for size in sizes:
        if size not in depth_for_size:
            raise ValueError(f"no complete binary tree with {size} nodes")
        specs.append(tree_topology(depth_for_size[size], fanout=2))
    return specs


def layered_specs(
    sizes: Sequence[int], width: int = 3, seed: int = 0
) -> list[TopologySpec]:
    """Layered acyclic graphs of the requested (approximate) sizes."""
    specs = []
    for size in sizes:
        depth = max(1, round(size / width) - 1)
        specs.append(layered_topology(depth, width=width, seed=seed))
    return specs


def clique_specs(sizes: Sequence[int]) -> list[TopologySpec]:
    """Cliques of the requested sizes."""
    return [clique_topology(size) for size in sizes]


def run_scalability(
    *,
    tree_sizes: Sequence[int] = (3, 7, 15, 31),
    layered_sizes: Sequence[int] = (6, 9, 12, 15),
    clique_sizes: Sequence[int] = (3, 5, 7, 9),
    records_per_node: int = 50,
    overlap_probability: float = 0.0,
    seed: int = 0,
    strategy: str = "distributed",
) -> list[UpdateRunResult]:
    """Run the scalability sweep over all three topology families.

    ``strategy`` selects the registered update strategy the sweep measures
    (the distributed protocol by default; see :mod:`repro.api.strategies`).
    """
    families = [
        ("tree", tree_specs(tree_sizes)),
        ("layered", layered_specs(layered_sizes, seed=seed)),
        ("clique", clique_specs(clique_sizes)),
    ]
    results: list[UpdateRunResult] = []
    for family, specs in families:
        for spec in specs:
            label = f"{family}/n={spec.node_count}"
            try:
                _, result = run_dblp_update(
                    spec,
                    records_per_node=records_per_node,
                    overlap_probability=overlap_probability,
                    seed=seed,
                    label=label,
                    strategy=strategy,
                )
            except ReproError as error:
                # Reference strategies may be inapplicable (e.g. acyclic on a
                # clique) — skip those rows.  A failure of the distributed
                # protocol itself (divergence, exceeded message bound) is a
                # real error and must not be swallowed.
                if strategy == "distributed":
                    raise
                print(f"skipping {label} ({strategy}): {error}")
                continue
            results.append(result)
    return results


# ------------------------------------------------------- the sharded extension
#
# The paper stopped at 31 peers; the partitioned engines push the same update
# protocol to hundreds or thousands.  This sweep compares the single-queue
# SyncEngine with the in-process ShardedEngine — and, optionally, the
# one-OS-process-per-shard MultiprocEngine, the only configuration whose
# wall-clock can beat the GIL on multi-core hardware.  Topology discovery is
# skipped at these sizes (the update phase does not depend on it, and
# maximal-path enumeration on dense layered graphs is exactly the blow-up the
# paper's complexity section predicts).


@dataclass(frozen=True)
class ShardComparison:
    """One topology run under both engines, plus the shard traffic view.

    The ``multiproc_*`` columns are filled only when the sweep was asked to
    include the multi-process engine (``include_multiproc=True`` /
    ``run E3 --engine multiproc``); the ``pooled_*`` columns only for the
    repeat-run pooled sweep (``include_pooled=True`` /
    ``run E3 --engine pooled``), where ``multiproc_repeat_wall`` is the mean
    wall-clock of *cold* multiproc runs (spawn + world ship every time) and
    ``pooled_warm_wall`` the mean of the warm pool's second-and-later runs —
    their gap is the amortised fixed overhead.
    """

    label: str
    node_count: int
    shards: int
    sync_time: float
    sync_wall: float
    sync_messages: int
    sharded_time: float
    sharded_wall: float
    sharded_messages: int
    cross_shard_messages: int
    cut_ratio: float
    messages_by_shard: dict[int, int]
    parity: bool
    multiproc_time: float | None = None
    multiproc_wall: float | None = None
    multiproc_messages: int | None = None
    multiproc_cross_shard: int | None = None
    multiproc_cut_ratio: float | None = None
    multiproc_parity: bool | None = None
    multiproc_repeat_wall: float | None = None
    pooled_first_wall: float | None = None
    pooled_warm_wall: float | None = None
    pooled_parity: bool | None = None
    socket_time: float | None = None
    socket_wall: float | None = None
    socket_messages: int | None = None
    socket_cross_shard: int | None = None
    socket_parity: bool | None = None

    @property
    def per_shard_column(self) -> str:
        """Per-shard delivery counts rendered ``a/b/c/d`` in shard order."""
        return "/".join(
            str(count) for _shard, count in sorted(self.messages_by_shard.items())
        )


def shard_sweep_specs(
    sizes: Sequence[int] = (127, 511),
    *,
    max_imports: int = 2,
    seed: int = 0,
) -> list[TopologySpec]:
    """Large topologies for the sharded sweep: one tree + one layered DAG per size.

    Trees are the complete binary trees closest to each requested size.
    Layered DAGs take a wide-and-shallow shape (depth ≈ log2(size), width
    sized to match) with each node's fan-in capped at ``max_imports`` —
    uncapped layered graphs are quadratic in the width and the per-layer
    re-propagation makes the message count explode long before 500 nodes.
    """
    specs: list[TopologySpec] = []
    for size in sizes:
        depth = max(1, (size + 1).bit_length() - 2)
        specs.append(tree_topology(depth, fanout=2))
    for size in sizes:
        depth = max(2, size.bit_length() - 1)
        width = max(2, round(size / (depth + 1)))
        specs.append(
            layered_topology(depth, width=width, seed=seed, max_imports=max_imports)
        )
    return specs


def run_shard_scalability(
    *,
    sizes: Sequence[int] = (127, 511),
    shards: int = 4,
    records_per_node: int = 3,
    max_imports: int = 2,
    seed: int = 0,
    check_parity: bool = True,
    include_multiproc: bool = False,
    include_pooled: bool = False,
    include_socket: bool = False,
    hosts: Sequence[str] | None = None,
    repeats: int = 3,
    tracer: Tracer | None = None,
    faults: "FaultPlan | None" = None,
) -> list[ShardComparison]:
    """Run the global update under the sync and the partitioned engines side by side.

    Reports, per topology: simulated completion time and wall-clock for each
    engine, per-shard delivery counts, and the cross-shard (cut) traffic the
    planner could not avoid.  ``check_parity`` additionally compares the
    final ground states (the Lemma 1 guarantee, now at scale);
    ``include_multiproc`` adds a third run under the one-process-per-shard
    :class:`~repro.sharding.multiproc.MultiprocEngine`; ``include_pooled``
    (implies multiproc) adds a *repeat-run* comparison — ``repeats`` update
    runs on the cold multiproc session (each paying spawn + world shipping)
    against the same runs on one warm
    :class:`~repro.sharding.pool.WorkerPool` session (spawn once, deltas
    only), which is where the pool's amortisation shows.  ``include_socket``
    adds a run under the TCP shard-host
    :class:`~repro.sharding.sockets.SocketEngine` — against the ``hosts``
    addresses when given, else against auto-spawned localhost hosts.
    ``tracer`` (usually built by :func:`shard_main` for ``--trace``) is
    shared across every session of the sweep, so all engines' runs land in
    one timeline — worker-process spans included.  ``faults`` (the CLI's
    ``--faults plan.json``) injects the same seeded
    :class:`~repro.faults.FaultPlan` into every partitioned-engine session
    of the sweep — the sync baseline stays fault-free, so the parity columns
    double as the convergence check.
    """
    from repro.core.fixpoint import ground_part

    if include_pooled:
        include_multiproc = True
        if repeats < 2:
            raise ReproError("the pooled repeat-run sweep needs repeats >= 2")
    comparisons: list[ShardComparison] = []
    for spec in shard_sweep_specs(sizes, max_imports=max_imports, seed=seed):
        scenario = ScenarioSpec.from_topology(
            spec, records_per_node=records_per_node, seed=seed
        )
        label = f"{spec.name}/n={spec.node_count}"

        started = time.perf_counter()
        sync_session = Session.from_spec(
            scenario, capture_deltas=False, tracer=tracer
        )
        sync_result = sync_session.run("update")
        sync_wall = time.perf_counter() - started

        started = time.perf_counter()
        sharded_session = Session.from_spec(
            scenario.with_(shards=shards), capture_deltas=False, tracer=tracer
        )
        sharded_result = sharded_session.run("update")
        sharded_wall = time.perf_counter() - started

        traffic = sharded_result.stats.sharding
        assert traffic is not None  # the sharded engine always attaches it
        parity = True
        sync_ground = ground_part(sync_session.databases()) if check_parity else None
        if check_parity:
            parity = sync_ground == ground_part(sharded_session.databases())

        multiproc_columns: dict = {}
        if include_multiproc:
            started = time.perf_counter()
            multiproc_session = Session.from_spec(
                scenario.with_(transport="multiproc", shards=shards, faults=faults),
                capture_deltas=False,
                tracer=tracer,
            )
            multiproc_result = multiproc_session.run("update")
            multiproc_wall = time.perf_counter() - started
            multiproc_traffic = multiproc_result.stats.sharding
            assert multiproc_traffic is not None
            multiproc_parity = True
            if check_parity:
                multiproc_parity = sync_ground == ground_part(
                    multiproc_session.databases()
                )
            multiproc_columns = dict(
                multiproc_time=multiproc_result.completion_time,
                multiproc_wall=multiproc_wall,
                multiproc_messages=multiproc_result.stats.total_messages,
                multiproc_cross_shard=multiproc_traffic.cross_shard_messages,
                multiproc_cut_ratio=multiproc_traffic.cut_ratio,
                multiproc_parity=multiproc_parity,
            )

            if include_pooled:
                # Cold repeats: every further run on the plain multiproc
                # session respawns workers and re-ships the worlds.
                cold_walls = [multiproc_wall]
                for _ in range(repeats - 1):
                    started = time.perf_counter()
                    multiproc_session.run("update")
                    cold_walls.append(time.perf_counter() - started)
                with Session.from_spec(
                    scenario.with_(transport="pooled", shards=shards, faults=faults),
                    capture_deltas=False,
                    tracer=tracer,
                ) as pooled_session:
                    started = time.perf_counter()
                    pooled_session.run("update")
                    pooled_first = time.perf_counter() - started
                    warm_walls = []
                    for _ in range(repeats - 1):
                        started = time.perf_counter()
                        pooled_session.run("update")
                        warm_walls.append(time.perf_counter() - started)
                    pooled_parity = True
                    if check_parity:
                        pooled_parity = sync_ground == ground_part(
                            pooled_session.databases()
                        )
                multiproc_columns.update(
                    multiproc_repeat_wall=sum(cold_walls) / len(cold_walls),
                    pooled_first_wall=pooled_first,
                    pooled_warm_wall=sum(warm_walls) / len(warm_walls),
                    pooled_parity=pooled_parity,
                )

        socket_columns: dict = {}
        if include_socket:
            started = time.perf_counter()
            with Session.from_spec(
                scenario.with_(
                    transport="socket",
                    shards=shards,
                    hosts=tuple(hosts) if hosts else None,
                    faults=faults,
                ),
                capture_deltas=False,
                tracer=tracer,
            ) as socket_session:
                socket_result = socket_session.run("update")
                socket_wall = time.perf_counter() - started
                socket_traffic = socket_result.stats.sharding
                assert socket_traffic is not None
                socket_parity = True
                if check_parity:
                    socket_parity = sync_ground == ground_part(
                        socket_session.databases()
                    )
            socket_columns = dict(
                socket_time=socket_result.completion_time,
                socket_wall=socket_wall,
                socket_messages=socket_result.stats.total_messages,
                socket_cross_shard=socket_traffic.cross_shard_messages,
                socket_parity=socket_parity,
            )

        comparisons.append(
            ShardComparison(
                label=label,
                node_count=spec.node_count,
                shards=traffic.shard_count,
                sync_time=sync_result.completion_time,
                sync_wall=sync_wall,
                sync_messages=sync_result.stats.total_messages,
                sharded_time=sharded_result.completion_time,
                sharded_wall=sharded_wall,
                sharded_messages=sharded_result.stats.total_messages,
                cross_shard_messages=traffic.cross_shard_messages,
                cut_ratio=traffic.cut_ratio,
                messages_by_shard=dict(traffic.messages_by_shard),
                parity=parity,
                **multiproc_columns,
                **socket_columns,
            )
        )
    return comparisons


def shard_main(
    records_per_node: int = 3,
    shards: int = 4,
    sizes: Sequence[int] = (127, 511),
    engine: str = "sharded",
    repeats: int = 3,
    hosts: Sequence[str] | None = None,
    trace_path: str | None = None,
    faults: "FaultPlan | None" = None,
) -> str:
    """Print the engine-comparison sweep table.

    ``run E3 --engine sharded`` compares sync vs the in-process sharded
    engine; ``run E3 --engine multiproc`` adds the one-process-per-shard
    engine as a third column group; ``run E3 --engine pooled`` additionally
    re-runs the update ``repeats`` times on a cold multiproc session and on
    a warm worker pool, so the amortised spawn/ship overhead is visible as
    the gap between the ``mp repeat wall`` and ``pool warm wall`` columns;
    ``run E3 --engine socket`` instead adds the TCP shard-host engine,
    dialing ``--hosts`` when given and auto-spawned localhost hosts
    otherwise.  ``trace_path`` (the CLI's ``--trace out.json``) traces every
    run of the sweep into one timeline, writes it as Chrome trace-event JSON
    (open it at https://ui.perfetto.dev) and appends the per-phase summary
    table to the output.
    """
    include_multiproc = engine in ("multiproc", "pooled")
    include_pooled = engine == "pooled"
    include_socket = engine == "socket"
    tracer = Tracer(process="coordinator") if trace_path else None
    comparisons = run_shard_scalability(
        sizes=sizes,
        shards=shards,
        records_per_node=records_per_node,
        include_multiproc=include_multiproc,
        include_pooled=include_pooled,
        include_socket=include_socket,
        hosts=hosts,
        repeats=repeats,
        tracer=tracer,
        faults=faults,
    )
    headers = [
        "topology",
        "nodes",
        "sync time",
        "sync wall s",
        "sync msgs",
        "sharded time",
        "sharded wall s",
        "msgs/shard",
        "cross-shard",
        "cut ratio",
        "parity",
    ]
    rows = []
    for c in comparisons:
        row = [
            c.label,
            c.node_count,
            c.sync_time,
            f"{c.sync_wall:.2f}",
            c.sync_messages,
            c.sharded_time,
            f"{c.sharded_wall:.2f}",
            c.per_shard_column,
            c.cross_shard_messages,
            f"{c.cut_ratio:.3f}",
            c.parity,
        ]
        if include_multiproc:
            row += [
                c.multiproc_time,
                f"{c.multiproc_wall:.2f}",
                c.multiproc_cross_shard,
                f"{c.multiproc_cut_ratio:.3f}",
                c.multiproc_parity,
            ]
        if include_pooled:
            row += [
                f"{c.multiproc_repeat_wall:.2f}",
                f"{c.pooled_first_wall:.2f}",
                f"{c.pooled_warm_wall:.3f}",
                c.pooled_parity,
            ]
        if include_socket:
            row += [
                c.socket_time,
                f"{c.socket_wall:.2f}",
                c.socket_cross_shard,
                c.socket_parity,
            ]
        rows.append(row)
    if include_multiproc:
        headers += [
            "mp time",
            "mp wall s",
            "mp cross-shard",
            "mp cut ratio",
            "mp parity",
        ]
    if include_pooled:
        headers += [
            "mp repeat wall s",
            "pool first wall s",
            "pool warm wall s",
            "pool parity",
        ]
    if include_socket:
        headers += [
            "socket time",
            "socket wall s",
            "socket cross-shard",
            "socket parity",
        ]
    if include_pooled:
        engines = "sync vs sharded vs multiproc vs pooled"
    elif include_multiproc:
        engines = "sync vs sharded vs multiproc"
    elif include_socket:
        engines = "sync vs sharded vs socket"
    else:
        engines = "sync vs sharded"
    title = (
        f"E3 — {engines} update ({shards} shards, "
        f"{records_per_node} records/node, discovery skipped"
    )
    if include_pooled:
        title += f", {repeats} repeat runs"
    table = format_table(headers, rows, title=title + ")")
    print(table)
    if tracer is not None and trace_path is not None:
        from repro.obs.export import (
            chrome_trace_summary,
            format_trace_summary,
            trace_to_chrome,
            write_chrome_trace,
        )

        document = trace_to_chrome(tracer.trace())
        written = write_chrome_trace(tracer.trace(), trace_path)
        summary = format_trace_summary(chrome_trace_summary(document))
        print(f"\ntrace written to {written} (open at https://ui.perfetto.dev)")
        print(summary)
        table = table + "\n" + summary
    return table


def main(records_per_node: int = 50, strategy: str = "distributed") -> str:
    """Print the scalability table (one row per topology/size)."""
    results = run_scalability(records_per_node=records_per_node, strategy=strategy)
    rows = [
        [
            result.label,
            result.node_count,
            result.depth,
            result.discovery_messages,
            result.update_messages,
            result.update_time,
            result.tuples_inserted,
            result.all_closed,
        ]
        for result in results
    ]
    table = format_table(
        [
            "topology",
            "nodes",
            "depth",
            "discovery msgs",
            "update msgs",
            "update time",
            "tuples inserted",
            "closed",
        ],
        rows,
        title=(
            f"E3 — scalability sweep ({records_per_node} records/node, "
            f"{strategy} strategy)"
        ),
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
