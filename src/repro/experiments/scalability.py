"""Experiment E3 — scalability with respect to network size.

Section 5: "Up to 31 nodes participated to the preliminary experiments. [...]
about 20000 records about publications (about 1000 per node), organised in 3
different relational schemas. [...] Three types of topologies have been
considered: trees, layered acyclic graphs, and cliques."

This experiment sweeps the number of nodes for each topology family, runs
topology discovery followed by the global update, and reports execution time
(simulated), message counts and data volumes — the quantities the paper's
statistics module collected.  Record counts default to a laptop-friendly value
and can be raised to the paper's 1000 records/node via ``records_per_node``.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ReproError
from repro.experiments.runner import UpdateRunResult, run_dblp_update
from repro.stats.report import format_table
from repro.workloads.topologies import (
    TopologySpec,
    clique_topology,
    layered_topology,
    tree_topology,
)


def tree_specs(sizes: Sequence[int]) -> list[TopologySpec]:
    """Binary trees whose node counts are closest to the requested sizes.

    Sizes follow the usual complete-binary-tree counts 3, 7, 15, 31 — 31 nodes
    being the paper's maximum.
    """
    depth_for_size = {3: 1, 7: 2, 15: 3, 31: 4, 63: 5}
    specs = []
    for size in sizes:
        if size not in depth_for_size:
            raise ValueError(f"no complete binary tree with {size} nodes")
        specs.append(tree_topology(depth_for_size[size], fanout=2))
    return specs


def layered_specs(sizes: Sequence[int], width: int = 3, seed: int = 0) -> list[TopologySpec]:
    """Layered acyclic graphs of the requested (approximate) sizes."""
    specs = []
    for size in sizes:
        depth = max(1, round(size / width) - 1)
        specs.append(layered_topology(depth, width=width, seed=seed))
    return specs


def clique_specs(sizes: Sequence[int]) -> list[TopologySpec]:
    """Cliques of the requested sizes."""
    return [clique_topology(size) for size in sizes]


def run_scalability(
    *,
    tree_sizes: Sequence[int] = (3, 7, 15, 31),
    layered_sizes: Sequence[int] = (6, 9, 12, 15),
    clique_sizes: Sequence[int] = (3, 5, 7, 9),
    records_per_node: int = 50,
    overlap_probability: float = 0.0,
    seed: int = 0,
    strategy: str = "distributed",
) -> list[UpdateRunResult]:
    """Run the scalability sweep over all three topology families.

    ``strategy`` selects the registered update strategy the sweep measures
    (the distributed protocol by default; see :mod:`repro.api.strategies`).
    """
    families = [
        ("tree", tree_specs(tree_sizes)),
        ("layered", layered_specs(layered_sizes, seed=seed)),
        ("clique", clique_specs(clique_sizes)),
    ]
    results: list[UpdateRunResult] = []
    for family, specs in families:
        for spec in specs:
            label = f"{family}/n={spec.node_count}"
            try:
                _, result = run_dblp_update(
                    spec,
                    records_per_node=records_per_node,
                    overlap_probability=overlap_probability,
                    seed=seed,
                    label=label,
                    strategy=strategy,
                )
            except ReproError as error:
                # Reference strategies may be inapplicable (e.g. acyclic on a
                # clique) — skip those rows.  A failure of the distributed
                # protocol itself (divergence, exceeded message bound) is a
                # real error and must not be swallowed.
                if strategy == "distributed":
                    raise
                print(f"skipping {label} ({strategy}): {error}")
                continue
            results.append(result)
    return results


def main(records_per_node: int = 50, strategy: str = "distributed") -> str:
    """Print the scalability table (one row per topology/size)."""
    results = run_scalability(records_per_node=records_per_node, strategy=strategy)
    rows = [
        [
            result.label,
            result.node_count,
            result.depth,
            result.discovery_messages,
            result.update_messages,
            result.update_time,
            result.tuples_inserted,
            result.all_closed,
        ]
        for result in results
    ]
    table = format_table(
        [
            "topology",
            "nodes",
            "depth",
            "discovery msgs",
            "update msgs",
            "update time",
            "tuples inserted",
            "closed",
        ],
        rows,
        title=(
            f"E3 — scalability sweep ({records_per_node} records/node, "
            f"{strategy} strategy)"
        ),
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
