"""Experiment E7 — runtime network changes (Theorem 2).

Section 4 models network dynamicity as a sequence of ``addLink`` /
``deleteLink`` operations racing with the update run, and Theorem 2 states
that for a finite change the algorithm terminates and produces an answer that
is *sound* and *complete* in the sense of Definition 9 (bounded between the
"all deletes first" and "all adds first" reference databases).

The experiment starts the global update on a tree, interleaves a change
sequence (a few added rules that graft new branches plus a few deleted rules)
with message delivery, runs the network to quiescence, and checks the measured
databases against the two envelopes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dynamics import (
    NetworkChange,
    apply_change_interleaved,
    complete_envelope,
    is_complete_answer,
    is_sound_answer,
    sound_envelope,
)
from repro.core.fixpoint import all_nodes_closed
from repro.stats.report import format_table
from repro.workloads.scenarios import build_dblp_network
from repro.workloads.topologies import (
    TopologySpec,
    coordination_rules_for,
    tree_topology,
)


@dataclass(frozen=True)
class DynamicChangeResult:
    """Outcome of one interleaved-change run."""

    topology: str
    node_count: int
    change_length: int
    added_rules: int
    deleted_rules: int
    completion_time: float
    total_messages: int
    sound: bool
    complete: bool
    terminated: bool

    @property
    def theorem2_holds(self) -> bool:
        """Termination plus soundness plus completeness (Theorem 2)."""
        return self.terminated and self.sound and self.complete


def build_change_for(spec: TopologySpec, *, deletions: int = 2) -> NetworkChange:
    """A change that grafts reverse edges onto a topology and deletes some rules.

    The added rules reverse a few existing import edges (so new data starts
    flowing in the opposite direction); the deleted rules are taken from the
    end of the original rule list.
    """
    original_rules = coordination_rules_for(spec)
    change = NetworkChange()

    # Reverse the first few edges: importer becomes exporter and vice versa.
    reversed_spec = TopologySpec(
        name=spec.name + "-reversed",
        nodes=spec.nodes,
        edges=tuple((exporter, importer) for importer, exporter in spec.edges[:2]),
        depth=spec.depth,
        variant_by_node=dict(spec.variant_by_node),
    )
    for rule in coordination_rules_for(reversed_spec):
        change.add_link(
            type(rule)(
                rule.rule_id + "+dyn",
                rule.target,
                rule.head,
                rule.body,
                rule.comparisons,
            )
        )

    for rule in original_rules[-deletions:]:
        change.delete_link(rule.target, rule.sources[0], rule.rule_id)
    return change


def run_dynamic_changes(
    *,
    depth: int = 3,
    fanout: int = 2,
    records_per_node: int = 20,
    deletions: int = 2,
    steps_between: int = 10,
    seed: int = 0,
) -> DynamicChangeResult:
    """Run the update on a tree while a change sequence races with it."""
    spec = tree_topology(depth, fanout=fanout)
    network = build_dblp_network(
        spec, records_per_node=records_per_node, seed=seed
    )
    system = network.system
    initial_rules = list(network.rules)
    schemas = network.schemas()
    data = network.initial_data()
    change = build_change_for(spec, deletions=deletions)

    # Start the update at every node, then interleave the change with delivery.
    for node_id in sorted(system.nodes):
        system.node(node_id).update.start()
    completion_time = apply_change_interleaved(
        system, change, steps_between=steps_between
    )

    measured = system.databases()
    upper = sound_envelope(schemas, initial_rules, change, data)
    lower = complete_envelope(schemas, initial_rules, change, data)
    snapshot = system.snapshot_stats()
    return DynamicChangeResult(
        topology=spec.name,
        node_count=spec.node_count,
        change_length=len(change),
        added_rules=len(change.added_rules),
        deleted_rules=len(change.deleted_rule_ids),
        completion_time=completion_time,
        total_messages=snapshot.total_messages,
        sound=is_sound_answer(measured, upper),
        complete=is_complete_answer(measured, lower),
        terminated=all_nodes_closed(system) or system.transport.pending == 0,
    )


def main() -> str:
    """Print the Theorem 2 check for a tree with an interleaved change."""
    result = run_dynamic_changes()
    table = format_table(
        [
            "topology",
            "nodes",
            "change ops",
            "added",
            "deleted",
            "messages",
            "sound",
            "complete",
            "terminated",
        ],
        [
            [
                result.topology,
                result.node_count,
                result.change_length,
                result.added_rules,
                result.deleted_rules,
                result.total_messages,
                result.sound,
                result.complete,
                result.terminated,
            ]
        ],
        title="E7 — update interleaved with addLink/deleteLink (Theorem 2)",
    )
    table += f"\nTheorem 2 holds: {result.theorem2_holds}"
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
