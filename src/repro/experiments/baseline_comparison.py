"""Experiment E9 — materialised update versus the alternatives.

The introduction positions the update algorithm against two alternatives:

* answering queries *at query time*, fetching distributed data on every query
  ("requiring the participation of all nodes at query time"),
* the *global* algorithm of the related work, which assumes a central node
  performing all the computation.

The experiment runs all three on the same workload and reports, for a batch
of user queries issued at a leaf-most node:

* messages paid by the distributed update (once) and per subsequent query
  (zero — queries are answered locally),
* messages paid by query-time answering for every query in the batch,
* the centralized baseline's cost model (no messages, but every database must
  be shipped to / accessible from one site — reported as tuples that would
  need to be centralised).

The acyclic single-pass baseline is also applied where the topology allows it
to show it reaches the same fix-point on trees but fails on cyclic networks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.acyclic import acyclic_update
from repro.baselines.centralized import centralized_update
from repro.baselines.querytime import query_time_answer
from repro.core.fixpoint import ground_part
from repro.database.parser import parse_query
from repro.errors import ReproError
from repro.experiments.runner import run_dblp_update
from repro.stats.report import format_table
from repro.workloads.topologies import TopologySpec, clique_topology, tree_topology


@dataclass(frozen=True)
class BaselineComparison:
    """Costs of the three strategies on one topology."""

    topology: str
    node_count: int
    update_messages: int
    update_time: float
    querytime_messages_per_query: int
    queries_in_batch: int
    querytime_messages_total: int
    centralized_tuples_to_ship: int
    acyclic_applicable: bool
    acyclic_matches: bool
    answers_agree: bool

    @property
    def breakeven_queries(self) -> float:
        """Number of queries after which materialisation is cheaper."""
        if self.querytime_messages_per_query == 0:
            return float("inf")
        return self.update_messages / self.querytime_messages_per_query


def _query_for_variant(variant: str) -> str:
    if variant == "wide":
        return "q(K) :- pub(K, T, A, Y, V)"
    if variant == "split":
        return "q(K) :- article(K, T, Y, V)"
    return "q(K) :- work(K, T)"


def run_baseline_comparison(
    spec: TopologySpec,
    *,
    records_per_node: int = 20,
    queries_in_batch: int = 10,
    seed: int = 0,
) -> BaselineComparison:
    """Compare the distributed update with query-time and centralized answering."""
    network, result = run_dblp_update(
        spec, records_per_node=records_per_node, seed=seed, label=spec.name
    )
    schemas = network.schemas()
    data = network.initial_data()
    query_node = spec.nodes[0]
    query = parse_query(_query_for_variant(spec.variant_of(query_node)))

    local_answers = network.system.local_query(query_node, query)
    query_time = query_time_answer(
        schemas, network.rules, data, query_node, query
    )
    central = centralized_update(schemas, network.rules, data)
    central_answers = central.databases[query_node].query(query)

    try:
        acyclic = acyclic_update(schemas, network.rules, data)
        acyclic_applicable = True
        acyclic_matches = ground_part(acyclic.snapshot()) == ground_part(
            central.snapshot()
        )
    except ReproError:
        acyclic_applicable = False
        acyclic_matches = False

    centralized_tuples = sum(
        len(rows)
        for node_rows in data.values()
        for rows in node_rows.values()
    )
    return BaselineComparison(
        topology=spec.name,
        node_count=spec.node_count,
        update_messages=result.update_messages,
        update_time=result.update_time,
        querytime_messages_per_query=query_time.messages,
        queries_in_batch=queries_in_batch,
        querytime_messages_total=query_time.messages * queries_in_batch,
        centralized_tuples_to_ship=centralized_tuples,
        acyclic_applicable=acyclic_applicable,
        acyclic_matches=acyclic_matches,
        answers_agree=(local_answers == set(query_time.answers) == central_answers),
    )


def run_all(
    *, records_per_node: int = 20, queries_in_batch: int = 10, seed: int = 0
) -> list[BaselineComparison]:
    """Run the comparison on a tree (acyclic) and a clique (cyclic)."""
    return [
        run_baseline_comparison(
            tree_topology(3, 2),
            records_per_node=records_per_node,
            queries_in_batch=queries_in_batch,
            seed=seed,
        ),
        run_baseline_comparison(
            clique_topology(5),
            records_per_node=records_per_node,
            queries_in_batch=queries_in_batch,
            seed=seed,
        ),
    ]


def main() -> str:
    """Print the update vs query-time vs centralized comparison."""
    comparisons = run_all()
    rows = [
        [
            c.topology,
            c.node_count,
            c.update_messages,
            c.querytime_messages_per_query,
            c.querytime_messages_total,
            f"{c.breakeven_queries:.1f}",
            c.acyclic_applicable,
            c.acyclic_matches,
            c.answers_agree,
        ]
        for c in comparisons
    ]
    table = format_table(
        [
            "topology",
            "nodes",
            "update msgs (once)",
            "query-time msgs/query",
            f"query-time msgs ({comparisons[0].queries_in_batch} queries)",
            "break-even #queries",
            "acyclic applicable",
            "acyclic matches",
            "answers agree",
        ],
        rows,
        title="E9 — materialised update vs query-time vs centralized",
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
