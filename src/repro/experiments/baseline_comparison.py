"""Experiment E9 — materialised update versus the alternatives.

The introduction positions the update algorithm against two alternatives:

* answering queries *at query time*, fetching distributed data on every query
  ("requiring the participation of all nodes at query time"),
* the *global* algorithm of the related work, which assumes a central node
  performing all the computation.

Since the façade refactor all four contenders run through the same
:class:`repro.api.Session` API — the distributed update on the live system,
and the ``centralized`` / ``acyclic`` / ``querytime`` strategies from a fresh
session over the same :class:`~repro.api.ScenarioSpec` — and return the same
:class:`~repro.api.RunResult`, so the comparison is a straight read-off of
uniform fields.  The experiment reports, for a batch of user queries issued
at the super-peer:

* messages paid by the distributed update (once) and per subsequent query
  (zero — queries are answered locally),
* messages paid by query-time answering for every query in the batch,
* the centralized baseline's cost model (no messages, but every database must
  be shipped to / accessible from one site — reported as tuples that would
  need to be centralised),
* whether the acyclic single-pass strategy applies and, where it does, whether
  it reaches the same fix-point (it fails on cyclic networks — precisely the
  limitation the paper's algorithm removes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.session import Session
from repro.api.spec import ScenarioSpec
from repro.errors import ReproError
from repro.stats.report import format_table
from repro.workloads.topologies import TopologySpec, clique_topology, tree_topology


@dataclass(frozen=True)
class BaselineComparison:
    """Costs of the competing strategies on one topology."""

    topology: str
    node_count: int
    update_messages: int
    update_time: float
    querytime_messages_per_query: int
    queries_in_batch: int
    querytime_messages_total: int
    centralized_tuples_to_ship: int
    acyclic_applicable: bool
    acyclic_matches: bool
    answers_agree: bool

    @property
    def breakeven_queries(self) -> float:
        """Number of queries after which materialisation is cheaper."""
        if self.querytime_messages_per_query == 0:
            return float("inf")
        return self.update_messages / self.querytime_messages_per_query


def _query_for_variant(variant: str) -> str:
    if variant == "wide":
        return "q(K) :- pub(K, T, A, Y, V)"
    if variant == "split":
        return "q(K) :- article(K, T, Y, V)"
    return "q(K) :- work(K, T)"


def run_baseline_comparison(
    spec: TopologySpec,
    *,
    records_per_node: int = 20,
    queries_in_batch: int = 10,
    seed: int = 0,
) -> BaselineComparison:
    """Compare the distributed update with query-time and centralized answering."""
    scenario = ScenarioSpec.from_topology(
        spec, records_per_node=records_per_node, seed=seed, max_messages=2_000_000
    )
    query_node = spec.nodes[0]
    query_text = _query_for_variant(spec.variant_of(query_node))

    # The paper's algorithm on the live system: pay messages once, then
    # answer every subsequent query locally.  Only the statistics are read,
    # so skip the façade's database-delta snapshots.
    session = Session.from_spec(scenario, capture_deltas=False)
    discovery = session.run("discovery")
    distributed = session.update()
    update_messages = distributed.stats.total_messages - discovery.stats.total_messages
    update_time = distributed.completion_time - discovery.completion_time
    local_answers = session.query(query_node, query_text)

    # The reference strategies from a fresh session over the same spec (they
    # read the initial state and do not mutate it, so one session serves all).
    reference = Session.from_spec(scenario)
    central = reference.update("centralized", node=query_node, query=query_text)
    query_time = reference.update("querytime", node=query_node, query=query_text)

    central_answers = set(central.extras["answers"])
    querytime_answers = query_time.extras["answers"]
    querytime_messages = int(query_time.extras["messages"])

    try:
        acyclic = reference.update("acyclic")
        acyclic_applicable = True
        acyclic_matches = acyclic.ground_databases() == central.ground_databases()
    except ReproError:
        acyclic_applicable = False
        acyclic_matches = False

    return BaselineComparison(
        topology=spec.name,
        node_count=spec.node_count,
        update_messages=update_messages,
        update_time=update_time,
        querytime_messages_per_query=querytime_messages,
        queries_in_batch=queries_in_batch,
        querytime_messages_total=querytime_messages * queries_in_batch,
        centralized_tuples_to_ship=scenario.total_rows,
        acyclic_applicable=acyclic_applicable,
        acyclic_matches=acyclic_matches,
        answers_agree=(local_answers == set(querytime_answers) == central_answers),
    )


def run_all(
    *, records_per_node: int = 20, queries_in_batch: int = 10, seed: int = 0
) -> list[BaselineComparison]:
    """Run the comparison on a tree (acyclic) and a clique (cyclic)."""
    return [
        run_baseline_comparison(
            tree_topology(3, 2),
            records_per_node=records_per_node,
            queries_in_batch=queries_in_batch,
            seed=seed,
        ),
        run_baseline_comparison(
            clique_topology(5),
            records_per_node=records_per_node,
            queries_in_batch=queries_in_batch,
            seed=seed,
        ),
    ]


def main() -> str:
    """Print the update vs query-time vs centralized comparison."""
    comparisons = run_all()
    rows = [
        [
            c.topology,
            c.node_count,
            c.update_messages,
            c.querytime_messages_per_query,
            c.querytime_messages_total,
            f"{c.breakeven_queries:.1f}",
            c.acyclic_applicable,
            c.acyclic_matches,
            c.answers_agree,
        ]
        for c in comparisons
    ]
    table = format_table(
        [
            "topology",
            "nodes",
            "update msgs (once)",
            "query-time msgs/query",
            f"query-time msgs ({comparisons[0].queries_in_batch} queries)",
            "break-even #queries",
            "acyclic applicable",
            "acyclic matches",
            "answers agree",
        ],
        rows,
        title="E9 — materialised update vs query-time vs centralized",
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
