"""Experiment E6 — per-node statistics (the prototype's statistical module).

Section 5 describes a per-node module that "accumulates information about
number of executed queries and updates, total time which was required to
answer a certain query or fulfill an update request, volumes of data
transferred onto pipes, number of queries received and sent for the same
original query (due to different paths and loops)".

This experiment runs the global update on a small clique — the topology with
the most loops, hence the most duplicate queries — under the faithful
``per_path`` propagation policy, and reports exactly those per-node counters,
plus the same run under the ``once`` policy to show how much of the traffic
the delta optimisation removes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.experiments.runner import UpdateRunResult, run_dblp_update
from repro.stats.report import format_table
from repro.workloads.topologies import clique_topology


@dataclass(frozen=True)
class AccountingResult:
    """Per-node accounting for the two propagation policies."""

    per_path: UpdateRunResult
    once: UpdateRunResult
    #: The same workload under a reference strategy (None when the strategy
    #: is "distributed" or does not apply to the topology).
    reference: UpdateRunResult | None = None

    @property
    def duplicate_query_ratio(self) -> float:
        """Duplicate queries under per-path propagation per query under once."""
        base = max(1, self.once.query_messages)
        return self.per_path.duplicate_queries / base


def run_message_accounting(
    *,
    clique_size: int = 5,
    records_per_node: int = 20,
    seed: int = 0,
    strategy: str = "distributed",
) -> AccountingResult:
    """Run the same clique under ``per_path`` and ``once`` propagation.

    A non-distributed ``strategy`` additionally runs the workload through the
    reference strategy so its per-node counters can sit next to the live
    protocol's (strategies that refuse the topology — acyclic on a clique —
    leave the reference column empty).
    """
    spec = clique_topology(clique_size)
    _, per_path = run_dblp_update(
        spec,
        records_per_node=records_per_node,
        seed=seed,
        propagation="per_path",
        label=f"clique{clique_size}/per_path",
    )
    _, once = run_dblp_update(
        spec,
        records_per_node=records_per_node,
        seed=seed,
        propagation="once",
        label=f"clique{clique_size}/once",
    )
    reference = None
    if strategy != "distributed":
        try:
            _, reference = run_dblp_update(
                spec,
                records_per_node=records_per_node,
                seed=seed,
                label=f"clique{clique_size}/{strategy}",
                strategy=strategy,
            )
        except ReproError as error:
            print(f"skipping reference column ({strategy}): {error}")
    return AccountingResult(per_path=per_path, once=once, reference=reference)


def main(
    clique_size: int = 5,
    records_per_node: int = 20,
    strategy: str = "distributed",
) -> str:
    """Print the per-node statistics table for both propagation policies.

    With a non-distributed ``strategy``, a reference column ("tuples ins")
    from the same workload under that strategy sits next to the live counters.
    """
    result = run_message_accounting(
        clique_size=clique_size,
        records_per_node=records_per_node,
        strategy=strategy,
    )
    reference_nodes = (
        result.reference.per_node if result.reference is not None else None
    )
    rows = []
    for policy, run in (("per_path", result.per_path), ("once", result.once)):
        for node_id, counters in sorted(run.per_node.items()):
            row = [
                policy,
                node_id,
                counters["queries_executed"],
                counters["duplicate_queries"],
                counters["updates_applied"],
                counters["tuples_received"],
                counters["tuples_inserted"],
                counters["messages_sent"],
            ]
            if strategy != "distributed":
                ref = (
                    reference_nodes.get(node_id)
                    if reference_nodes is not None
                    else None
                )
                row.append(ref["tuples_inserted"] if ref is not None else "n/a")
            rows.append(row)
    headers = [
        "policy",
        "node",
        "queries",
        "dup queries",
        "updates",
        "tuples recv",
        "tuples ins",
        "msgs sent",
    ]
    if strategy != "distributed":
        headers.append(f"tuples ins ({strategy})")
    table = format_table(
        headers,
        rows,
        title=(
            f"E6 — per-node statistics on a {clique_size}-clique"
            + (f" (distributed vs {strategy})" if strategy != "distributed" else "")
        ),
    )
    table += (
        f"\ntotal messages: per_path={result.per_path.total_messages}, "
        f"once={result.once.total_messages}; "
        f"total bytes: per_path={result.per_path.total_bytes}, "
        f"once={result.once.total_bytes}"
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
