"""Experiment E6 — per-node statistics (the prototype's statistical module).

Section 5 describes a per-node module that "accumulates information about
number of executed queries and updates, total time which was required to
answer a certain query or fulfill an update request, volumes of data
transferred onto pipes, number of queries received and sent for the same
original query (due to different paths and loops)".

This experiment runs the global update on a small clique — the topology with
the most loops, hence the most duplicate queries — under the faithful
``per_path`` propagation policy, and reports exactly those per-node counters,
plus the same run under the ``once`` policy to show how much of the traffic
the delta optimisation removes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import UpdateRunResult, run_dblp_update
from repro.stats.report import format_table
from repro.workloads.topologies import clique_topology


@dataclass(frozen=True)
class AccountingResult:
    """Per-node accounting for the two propagation policies."""

    per_path: UpdateRunResult
    once: UpdateRunResult

    @property
    def duplicate_query_ratio(self) -> float:
        """Duplicate queries under per-path propagation per query under once."""
        base = max(1, self.once.query_messages)
        return self.per_path.duplicate_queries / base


def run_message_accounting(
    *,
    clique_size: int = 5,
    records_per_node: int = 20,
    seed: int = 0,
) -> AccountingResult:
    """Run the same clique under ``per_path`` and ``once`` propagation."""
    spec = clique_topology(clique_size)
    _, per_path = run_dblp_update(
        spec,
        records_per_node=records_per_node,
        seed=seed,
        propagation="per_path",
        label=f"clique{clique_size}/per_path",
    )
    _, once = run_dblp_update(
        spec,
        records_per_node=records_per_node,
        seed=seed,
        propagation="once",
        label=f"clique{clique_size}/once",
    )
    return AccountingResult(per_path=per_path, once=once)


def main(clique_size: int = 5, records_per_node: int = 20) -> str:
    """Print the per-node statistics table for both propagation policies."""
    result = run_message_accounting(
        clique_size=clique_size, records_per_node=records_per_node
    )
    rows = []
    for policy, run in (("per_path", result.per_path), ("once", result.once)):
        for node_id, counters in sorted(run.per_node.items()):
            rows.append(
                [
                    policy,
                    node_id,
                    counters["queries_executed"],
                    counters["duplicate_queries"],
                    counters["updates_applied"],
                    counters["tuples_received"],
                    counters["tuples_inserted"],
                    counters["messages_sent"],
                ]
            )
    table = format_table(
        [
            "policy",
            "node",
            "queries",
            "dup queries",
            "updates",
            "tuples recv",
            "tuples ins",
            "msgs sent",
        ],
        rows,
        title=f"E6 — per-node statistics on a {clique_size}-clique",
    )
    table += (
        f"\ntotal messages: per_path={result.per_path.total_messages}, "
        f"once={result.once.total_messages}; "
        f"total bytes: per_path={result.per_path.total_bytes}, "
        f"once={result.once.total_bytes}"
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
