"""Experiment E1 — the Section 2 worked example and its dependency paths.

The paper lists, for the five-node example (nodes A–E, rules r1–r7), the
dependency edges and the maximal dependency paths of every node.  This
experiment recomputes both from the rule definitions and also checks that the
*distributed* topology-discovery protocol arrives at the same paths as the
static computation over the global rule set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.session import Session
from repro.coordination.depgraph import DependencyGraph
from repro.stats.report import format_table
from repro.workloads.scenarios import build_paper_example, paper_example_rules


@dataclass(frozen=True)
class PaperExampleResult:
    """Dependency structure of the running example."""

    edges: frozenset[tuple[str, str]]
    static_paths: dict[str, list[str]]
    discovered_paths: dict[str, list[str]]
    discovery_messages: int
    discovery_time: float

    @property
    def paths_match(self) -> bool:
        """True when discovery reproduced the statically computed paths."""
        return all(
            self.discovered_paths.get(node) == paths
            for node, paths in self.static_paths.items()
        )


def run_paper_example() -> PaperExampleResult:
    """Compute the example's dependency paths statically and via discovery."""
    rules = paper_example_rules()
    graph = DependencyGraph.from_rules(rules)
    static_paths = {
        node: ["".join(path) for path in graph.maximal_dependency_paths(node)]
        for node in sorted(graph.nodes)
    }

    session = Session.of(build_paper_example(with_data=False))
    # Start discovery at every node so each one learns its own paths, then
    # compare with the static ground truth.
    discovery = session.run("discovery", origins=sorted(session.system.nodes))
    discovered_paths = {
        node_id: ["".join(path) for path in node.state.maximal_paths()]
        for node_id, node in sorted(session.system.nodes.items())
    }
    return PaperExampleResult(
        edges=frozenset(graph.edges),
        static_paths=static_paths,
        discovered_paths=discovered_paths,
        discovery_messages=discovery.stats.total_messages,
        discovery_time=discovery.completion_time,
    )


def main() -> str:
    """Print the dependency-path table of the paper's example."""
    result = run_paper_example()
    rows = []
    for node, paths in result.static_paths.items():
        discovered = result.discovered_paths.get(node, [])
        rows.append([node, ", ".join(paths), ", ".join(discovered)])
    table = format_table(
        ["node", "maximal dependency paths (static)", "paths found by discovery"],
        rows,
        title="E1 — dependency paths of the Section 2 example",
    )
    table += (
        f"\nedges: {sorted(result.edges)}"
        f"\ndiscovery messages: {result.discovery_messages}, "
        f"paths match: {result.paths_match}"
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
