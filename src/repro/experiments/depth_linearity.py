"""Experiment E4 — execution time versus depth (the paper's headline result).

"By looking at the execution time and the number of messages exchanged
between nodes, the preliminary experiments confirmed the expectation that in
the simple topological structures (like the tree and the layered acyclic
graphs) the execution time is linear with respect to the depth of the
structure."

The experiment sweeps the depth of binary trees and of layered acyclic graphs
(constant width), measures the simulated completion time of the global update
under a constant per-message latency, and fits a straight line: the reported
R² quantifies how well "linear in the depth" holds in the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.runner import UpdateRunResult, run_dblp_update
from repro.stats.report import format_table, series_summary
from repro.workloads.topologies import layered_topology, tree_topology


@dataclass(frozen=True)
class DepthSeries:
    """Depth sweep of one topology family plus its linear fit."""

    family: str
    depths: tuple[int, ...]
    update_times: tuple[float, ...]
    update_messages: tuple[int, ...]
    fit: dict[str, float]
    results: tuple[UpdateRunResult, ...]

    @property
    def is_linear(self) -> bool:
        """True when the linear fit explains at least 95% of the variance."""
        return self.fit["r_squared"] >= 0.95


def run_depth_linearity(
    *,
    depths: Sequence[int] = (1, 2, 3, 4, 5),
    fanout: int = 2,
    layered_width: int = 2,
    records_per_node: int = 20,
    seed: int = 0,
    strategy: str = "distributed",
) -> dict[str, DepthSeries]:
    """Sweep tree and layered-DAG depths and fit time = a·depth + b.

    ``strategy`` selects any registered update strategy (as E3's sweep does);
    for the reference strategies the fitted "time" is the modeled cost, not a
    simulated clock.
    """
    series: dict[str, DepthSeries] = {}

    for family in ("tree", "layered"):
        depth_list: list[int] = []
        times: list[float] = []
        messages: list[int] = []
        results: list[UpdateRunResult] = []
        for depth in depths:
            if family == "tree":
                spec = tree_topology(depth, fanout=fanout)
            else:
                spec = layered_topology(depth, width=layered_width, seed=seed)
            _, result = run_dblp_update(
                spec,
                records_per_node=records_per_node,
                seed=seed,
                label=f"{family}/depth={depth}",
                strategy=strategy,
            )
            depth_list.append(depth)
            times.append(result.update_time)
            messages.append(result.update_messages)
            results.append(result)
        fit = series_summary([float(d) for d in depth_list], times)
        series[family] = DepthSeries(
            family=family,
            depths=tuple(depth_list),
            update_times=tuple(times),
            update_messages=tuple(messages),
            fit=fit,
            results=tuple(results),
        )
    return series


def main(records_per_node: int = 20, strategy: str = "distributed") -> str:
    """Print update time per depth for trees and layered DAGs plus the fits.

    With a non-distributed ``strategy`` the same sweep additionally runs the
    reference strategy and the table shows the distributed and the reference
    columns side by side.
    """
    series = run_depth_linearity(records_per_node=records_per_node)
    reference = (
        run_depth_linearity(records_per_node=records_per_node, strategy=strategy)
        if strategy != "distributed"
        else None
    )
    rows = []
    for family, data in series.items():
        ref = reference[family] if reference is not None else None
        for index, (depth, update_time, message_count) in enumerate(
            zip(data.depths, data.update_times, data.update_messages)
        ):
            row = [family, depth, update_time, message_count,
                   data.results[index].tuples_inserted]
            if ref is not None:
                row += [
                    ref.update_messages[index],
                    ref.results[index].tuples_inserted,
                ]
            rows.append(row)
    headers = ["family", "depth", "update time", "update msgs", "tuples ins"]
    if reference is not None:
        headers += [f"msgs ({strategy})", f"tuples ins ({strategy})"]
    table = format_table(
        headers,
        rows,
        title=(
            "E4 — execution time vs depth"
            + (f" (distributed vs {strategy})" if reference is not None else "")
        ),
    )
    for family, data in series.items():
        fit = data.fit
        table += (
            f"\n{family}: time ≈ {fit['slope']:.2f}·depth + {fit['intercept']:.2f}"
            f"  (R² = {fit['r_squared']:.3f}, linear: {data.is_linear})"
        )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
