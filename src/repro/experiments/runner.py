"""Shared experiment runner: build a network, run both phases, collect metrics.

Every experiment module builds on :func:`run_dblp_update` (DBLP workload over
a topology) or :func:`run_system_update` (an already assembled system).  The
returned :class:`UpdateRunResult` carries exactly the quantities the paper's
statistics module accumulated: execution time (simulated and wall-clock),
message counts by phase and type, data volumes, per-node counters, and the
fix-point indicators.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from repro.core.fixpoint import all_nodes_closed, satisfies_all_rules
from repro.core.superpeer import SuperPeer
from repro.core.system import P2PSystem
from repro.network.message import MessageType
from repro.stats.collector import StatsSnapshot
from repro.workloads.scenarios import DblpNetwork, build_dblp_network
from repro.workloads.topologies import TopologySpec


@dataclass
class UpdateRunResult:
    """Metrics of one discovery + update run."""

    label: str
    node_count: int
    depth: int
    records_per_node: int
    overlap_probability: float
    discovery_time: float
    discovery_messages: int
    update_time: float
    update_messages: int
    total_messages: int
    total_bytes: int
    query_messages: int
    answer_messages: int
    duplicate_queries: int
    tuples_transferred: int
    tuples_inserted: int
    all_closed: bool
    fixpoint_reached: bool
    wall_seconds: float
    per_node: dict[str, dict[str, int]] = field(default_factory=dict)

    def as_row(self) -> list[object]:
        """The row most experiment tables print."""
        return [
            self.label,
            self.node_count,
            self.depth,
            self.discovery_messages,
            self.update_messages,
            self.update_time,
            self.tuples_inserted,
            self.all_closed,
        ]


def _per_node_counters(snapshot: StatsSnapshot) -> dict[str, dict[str, int]]:
    return {
        node_id: {
            "queries_executed": stats.queries_executed,
            "updates_applied": stats.updates_applied,
            "tuples_received": stats.tuples_received,
            "tuples_inserted": stats.tuples_inserted,
            "messages_sent": stats.messages_sent,
            "messages_received": stats.messages_received,
            "duplicate_queries": stats.duplicate_queries,
        }
        for node_id, stats in snapshot.nodes.items()
    }


def run_system_update(
    system: P2PSystem,
    *,
    label: str = "system",
    depth: int = 0,
    records_per_node: int = 0,
    overlap_probability: float = 0.0,
    run_discovery: bool = True,
    check_fixpoint: bool = True,
) -> UpdateRunResult:
    """Run discovery (optionally) and the global update on an assembled system."""
    started = time.perf_counter()
    super_peer = SuperPeer(system)

    discovery_time = 0.0
    discovery_messages = 0
    if run_discovery:
        discovery_time = super_peer.run_discovery()
        discovery_messages = system.snapshot_stats().total_messages

    update_start_messages = system.snapshot_stats().total_messages
    update_clock_start = getattr(system.transport, "clock", 0.0)
    update_completion = super_peer.run_global_update()
    snapshot = system.snapshot_stats()

    return UpdateRunResult(
        label=label,
        node_count=len(system.nodes),
        depth=depth,
        records_per_node=records_per_node,
        overlap_probability=overlap_probability,
        discovery_time=discovery_time,
        discovery_messages=discovery_messages,
        update_time=update_completion - update_clock_start,
        update_messages=snapshot.total_messages - update_start_messages,
        total_messages=snapshot.total_messages,
        total_bytes=snapshot.messages.total_bytes,
        query_messages=snapshot.messages.by_type.get(MessageType.QUERY.value, 0),
        answer_messages=snapshot.messages.by_type.get(MessageType.ANSWER.value, 0),
        duplicate_queries=snapshot.total_duplicate_queries,
        tuples_transferred=snapshot.total_tuples_transferred,
        tuples_inserted=snapshot.total_tuples_inserted,
        all_closed=all_nodes_closed(system),
        fixpoint_reached=satisfies_all_rules(system) if check_fixpoint else True,
        wall_seconds=time.perf_counter() - started,
        per_node=_per_node_counters(snapshot),
    )


def run_dblp_update(
    spec: TopologySpec,
    *,
    records_per_node: int = 50,
    overlap_probability: float = 0.0,
    overlap_fraction: float = 0.5,
    seed: int = 0,
    propagation: str = "once",
    label: str | None = None,
    check_fixpoint: bool = False,
) -> tuple[DblpNetwork, UpdateRunResult]:
    """Build the DBLP workload for a topology and run discovery + update."""
    network = build_dblp_network(
        spec,
        records_per_node=records_per_node,
        overlap_probability=overlap_probability,
        overlap_fraction=overlap_fraction,
        seed=seed,
        propagation=propagation,
    )
    result = run_system_update(
        network.system,
        label=label or f"{spec.name}/n={spec.node_count}",
        depth=spec.depth,
        records_per_node=records_per_node,
        overlap_probability=overlap_probability,
        check_fixpoint=check_fixpoint,
    )
    return network, result
