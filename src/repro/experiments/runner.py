"""Shared experiment runner: build a network, run both phases, collect metrics.

Every experiment module builds on :func:`run_dblp_update` (DBLP workload over
a topology) or :func:`run_system_update` (an already assembled system).  Both
execute through the unified :class:`repro.api.Session` façade, so the same
harness can run the paper's distributed algorithm or any registered update
strategy (``strategy="centralized"`` / ``"acyclic"`` / ``"querytime"``).  The
returned :class:`UpdateRunResult` carries exactly the quantities the paper's
statistics module accumulated: execution time (simulated and wall-clock),
message counts by phase and type, data volumes, per-node counters, and the
fix-point indicators.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.api.session import Session
from repro.core.fixpoint import all_nodes_closed, satisfies_all_rules
from repro.core.system import P2PSystem
from repro.network.message import MessageType
from repro.stats.collector import StatsSnapshot
from repro.workloads.scenarios import DblpNetwork, build_dblp_network
from repro.workloads.topologies import TopologySpec


@dataclass
class UpdateRunResult:
    """Metrics of one discovery + update run."""

    label: str
    node_count: int
    depth: int
    records_per_node: int
    overlap_probability: float
    discovery_time: float
    discovery_messages: int
    update_time: float
    update_messages: int
    total_messages: int
    total_bytes: int
    query_messages: int
    answer_messages: int
    duplicate_queries: int
    tuples_transferred: int
    tuples_inserted: int
    all_closed: bool
    fixpoint_reached: bool
    wall_seconds: float
    per_node: dict[str, dict[str, int]] = field(default_factory=dict)
    strategy: str = "distributed"

    def as_row(self) -> list[object]:
        """The row most experiment tables print."""
        return [
            self.label,
            self.node_count,
            self.depth,
            self.discovery_messages,
            self.update_messages,
            self.update_time,
            self.tuples_inserted,
            self.all_closed,
        ]


def _per_node_counters(snapshot: StatsSnapshot) -> dict[str, dict[str, int]]:
    return {
        node_id: {
            "queries_executed": stats.queries_executed,
            "updates_applied": stats.updates_applied,
            "tuples_received": stats.tuples_received,
            "tuples_inserted": stats.tuples_inserted,
            "messages_sent": stats.messages_sent,
            "messages_received": stats.messages_received,
            "duplicate_queries": stats.duplicate_queries,
        }
        for node_id, stats in snapshot.nodes.items()
    }


def run_system_update(
    system: P2PSystem,
    *,
    label: str = "system",
    depth: int = 0,
    records_per_node: int = 0,
    overlap_probability: float = 0.0,
    run_discovery: bool = True,
    check_fixpoint: bool = True,
    strategy: str = "distributed",
) -> UpdateRunResult:
    """Run discovery (optionally) and an update on an assembled system.

    ``strategy`` selects any registered update strategy; the distributed
    default runs the live protocol on the system's transport, the others are
    reference computations that leave the system untouched (their message and
    fix-point columns reflect that).
    """
    started = time.perf_counter()
    # The runner reads the clock and the statistics module, as the paper's
    # experiments did; skip the façade's delta snapshots so they don't count
    # against the measured wall time.
    session = Session.of(system, capture_deltas=False)

    discovery_time = 0.0
    discovery_messages = 0
    if run_discovery:
        discovery = session.run("discovery")
        discovery_time = discovery.completion_time
        discovery_messages = discovery.stats.total_messages

    distributed = strategy == "distributed"
    update_start_messages = session.snapshot_stats().total_messages
    update_clock_start = getattr(system.transport, "clock", 0.0)
    result = session.update(strategy)
    # Message-level counters reflect the live transport (for the reference
    # strategies that is the discovery traffic only), except that the
    # querytime strategy's *modeled* per-query message cost — its defining
    # metric — is reported as the update cost.  Tuple and per-node counters
    # come from whatever actually computed the update.
    snapshot = session.snapshot_stats()
    update_stats = result.stats if not distributed else snapshot
    modeled_messages = int(result.extras.get("messages", 0))

    return UpdateRunResult(
        label=label,
        node_count=len(system.nodes),
        depth=depth,
        records_per_node=records_per_node,
        overlap_probability=overlap_probability,
        discovery_time=discovery_time,
        discovery_messages=discovery_messages,
        update_time=(
            result.completion_time - update_clock_start if distributed else 0.0
        ),
        update_messages=(
            snapshot.total_messages - update_start_messages
            if distributed
            else modeled_messages
        ),
        total_messages=snapshot.total_messages,
        total_bytes=snapshot.messages.total_bytes,
        query_messages=snapshot.messages.by_type.get(MessageType.QUERY.value, 0),
        answer_messages=snapshot.messages.by_type.get(MessageType.ANSWER.value, 0),
        duplicate_queries=snapshot.total_duplicate_queries,
        tuples_transferred=update_stats.total_tuples_transferred,
        tuples_inserted=(
            snapshot.total_tuples_inserted if distributed else result.tuples_added
        ),
        # Closure/fix-point: computed for the live protocol; known by
        # construction for centralized (the reference fix-point) and acyclic
        # (which only runs where one pass is complete); honestly False for
        # querytime, which materialises one node's closure only.
        all_closed=(
            all_nodes_closed(system) if distributed else strategy != "querytime"
        ),
        fixpoint_reached=(
            (satisfies_all_rules(system) if check_fixpoint else True)
            if distributed
            else strategy != "querytime"
        ),
        wall_seconds=time.perf_counter() - started,
        per_node=_per_node_counters(update_stats),
        strategy=strategy,
    )


def run_dblp_update(
    spec: TopologySpec,
    *,
    records_per_node: int = 50,
    overlap_probability: float = 0.0,
    overlap_fraction: float = 0.5,
    seed: int = 0,
    propagation: str = "once",
    label: str | None = None,
    check_fixpoint: bool = False,
    strategy: str = "distributed",
) -> tuple[DblpNetwork, UpdateRunResult]:
    """Build the DBLP workload for a topology and run discovery + update."""
    network = build_dblp_network(
        spec,
        records_per_node=records_per_node,
        overlap_probability=overlap_probability,
        overlap_fraction=overlap_fraction,
        seed=seed,
        propagation=propagation,
    )
    result = run_system_update(
        network.system,
        label=label or f"{spec.name}/n={spec.node_count}",
        depth=spec.depth,
        records_per_node=records_per_node,
        overlap_probability=overlap_probability,
        check_fixpoint=check_fixpoint,
        strategy=strategy,
    )
    return network, result
