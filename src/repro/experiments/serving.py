"""Experiment E12 — the serving front-end under closed-loop multi-tenant load.

The other experiments run one network to its fix-point and exit; this one
measures the reproduction as a *service*: an in-process
:class:`~repro.serve.ServerHandle` hosts two warm tenants — the Section 2
paper example and a DBLP sharing workload on a tree — while closed-loop
clients interleave insert-only updates with concurrent read-only queries
over plain HTTP.  Each tenant's row reports how many update runs stayed on
the delta-driven incremental path (all of them, when the load is
insert-only), the p50/p95 request latencies, and that admission control
turned overload into typed rejections rather than errors — no 5xx under a
fault-free run is part of the serving contract (``docs/serving.md``).

``python -m repro run E12`` runs the sweep with small defaults;
``benchmarks/bench_serve.py`` drives the same machinery at benchmark scale.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass

from repro.api.spec import ScenarioSpec
from repro.coordination.rule import CoordinationRule
from repro.errors import ReproError
from repro.serve import ServeClient, ServeError, ServerConfig, ServerHandle
from repro.stats.report import format_table
from repro.workloads.scenarios import (
    paper_example_data,
    paper_example_rules,
    paper_example_schemas,
)
from repro.workloads.topologies import tree_topology


@dataclass(frozen=True)
class ServingRow:
    """One tenant's share of the closed-loop sweep."""

    tenant: str
    clients: int
    updates: int
    queries: int
    incremental: int
    naive: int
    rejected: int
    errors: int
    p50_ms: float
    p95_ms: float

    @property
    def ok(self) -> bool:
        """The serving contract: every op answered, no 5xx, warm deltas."""
        return self.errors == 0 and self.naive == 0


def sweep_specs(records_per_node: int = 3, seed: int = 0) -> dict[str, ScenarioSpec]:
    """The two tenants of the sweep (name → spec, cold transports).

    The serving layer re-targets them onto warm pools at load time
    (:func:`repro.serve.warm_spec`), which is exactly what the experiment
    is measuring.
    """
    paper = ScenarioSpec.of(
        paper_example_schemas(),
        paper_example_rules(),
        paper_example_data(),
        super_peer="A",
        name="paper-example",
    )
    tree = ScenarioSpec.from_topology(
        tree_topology(2, 2), records_per_node=records_per_node, seed=seed
    )
    return {"paper": paper, "tree": tree}


def feeding_site(spec: ScenarioSpec) -> tuple[str, str, int]:
    """(node, relation, arity) of a fresh-insert site with consequences.

    Picks the first single-atom-body coordination rule (sorted by id): a
    fresh row in its exporter's body relation forces at least the importer
    to derive something, so every update run has real work to do — the same
    idiom the incremental tests and benchmarks use.
    """
    rules: tuple[CoordinationRule, ...] = tuple(spec.rules)
    for rule in sorted(rules, key=lambda rule: rule.rule_id):
        if len(rule.body) == 1:
            exporter, atom = rule.body[0]
            return str(exporter), atom.relation, len(atom.terms)
    raise ReproError(f"spec {spec.name!r} has no single-atom-body rule")


def query_for(relation: str, arity: int) -> str:
    """A full-relation conjunctive query (``q(V0, V1) :- rel(V0, V1)``)."""
    variables = ", ".join(f"V{i}" for i in range(arity))
    return f"q({variables}) :- {relation}({variables})"


def _percentile(samples: list[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def run_serving_sweep(
    *,
    records_per_node: int = 3,
    clients: int = 4,
    operations: int = 4,
    seed: int = 0,
    queue_depth: int = 64,
    max_workers: int = 4,
) -> list[ServingRow]:
    """Drive both tenants with closed-loop clients; return one row each.

    Every client alternates an insert-only update (fresh rows, so the warm
    pool's delta path has something to seed) with a full-relation query.
    429/503 rejections honour their ``Retry-After`` and retry — that is
    what "closed loop" means — while anything 5xx-without-a-type or
    transport-level counts as an error and fails the row.
    """
    specs = sweep_specs(records_per_node, seed)
    rows: list[ServingRow] = []
    config = ServerConfig(port=0, queue_depth=queue_depth, max_workers=max_workers)
    with ServerHandle(config) as handle:
        setup = ServeClient(handle.host, handle.port)
        for name, spec in specs.items():
            setup.create_tenant(name, json.loads(spec.dump_json()))
        for name, spec in specs.items():
            node, relation, arity = feeding_site(spec)
            query_text = query_for(relation, arity)
            latencies: list[float] = []
            counts = {
                "updates": 0,
                "queries": 0,
                "incremental": 0,
                "naive": 0,
                "rejected": 0,
                "errors": 0,
            }
            lock = threading.Lock()

            def client_loop(client_id: int, tenant: str = name) -> None:
                client = ServeClient(handle.host, handle.port)
                try:
                    for op in range(operations):
                        row = [
                            f"{tenant}-c{client_id}-o{op}-{i}" for i in range(arity)
                        ]
                        for call, kind in (
                            (
                                lambda: client.update(
                                    tenant, inserts={node: {relation: [row]}}
                                ),
                                "updates",
                            ),
                            (
                                lambda: client.query(tenant, node, query_text),
                                "queries",
                            ),
                        ):
                            started = time.perf_counter()
                            while True:
                                try:
                                    outcome = call()
                                except ServeError as error:
                                    if error.status in (429, 503):
                                        with lock:
                                            counts["rejected"] += 1
                                        time.sleep(error.retry_after or 0.05)
                                        continue
                                    with lock:
                                        counts["errors"] += 1
                                    break
                                with lock:
                                    latencies.append(
                                        time.perf_counter() - started
                                    )
                                    counts[kind] += 1
                                    if kind == "updates":
                                        mode = outcome.get("mode", "naive")
                                        key = (
                                            "incremental"
                                            if mode == "incremental"
                                            else "naive"
                                        )
                                        counts[key] += 1
                                break
                finally:
                    client.close()

            threads = [
                threading.Thread(target=client_loop, args=(client_id,))
                for client_id in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            rows.append(
                ServingRow(
                    tenant=name,
                    clients=clients,
                    updates=counts["updates"],
                    queries=counts["queries"],
                    incremental=counts["incremental"],
                    naive=counts["naive"],
                    rejected=counts["rejected"],
                    errors=counts["errors"],
                    p50_ms=round(_percentile(latencies, 0.50) * 1000, 2),
                    p95_ms=round(_percentile(latencies, 0.95) * 1000, 2),
                )
            )
        setup.close()
    return rows


def main(
    *,
    records_per_node: int = 3,
    clients: int = 4,
    operations: int = 4,
    seed: int = 0,
) -> str:
    """Print the serving sweep table."""
    rows = run_serving_sweep(
        records_per_node=records_per_node,
        clients=clients,
        operations=operations,
        seed=seed,
    )
    table = format_table(
        [
            "tenant",
            "clients",
            "updates",
            "queries",
            "incremental",
            "naive",
            "rejected",
            "errors",
            "p50 ms",
            "p95 ms",
            "ok",
        ],
        [
            [
                row.tenant,
                row.clients,
                row.updates,
                row.queries,
                row.incremental,
                row.naive,
                row.rejected,
                row.errors,
                row.p50_ms,
                row.p95_ms,
                row.ok,
            ]
            for row in rows
        ],
        title=(
            f"E12 — multi-tenant serving, {clients} closed-loop clients x "
            f"{operations} update+query pairs per tenant (seed {seed})"
        ),
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
