"""Experiment E10 — worst-case growth (Lemma 1.3 and Lemma 4).

Lemma 1(3) bounds the per-node complexity of the update by 2EXPTIME in the
number of nodes, and Lemma 4 bounds the cost of re-reaching the fix-point
after a change by 2EXPTIME in the size of the change.  These are worst-case
bounds on dense, cyclic topologies; the experiment makes the growth visible:

* messages and work versus clique size (the densest topology), under both the
  faithful ``per_path`` propagation (whose duplicate-query count grows with
  the number of dependency paths, i.e. factorially) and the optimised
  ``once`` policy (polynomial),
* messages needed to re-reach the fix-point versus the length of a change
  sequence applied after an initial update.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.dynamics import NetworkChange, apply_change_operation
from repro.experiments.runner import run_dblp_update
from repro.stats.report import format_table
from repro.workloads.scenarios import build_dblp_network
from repro.workloads.topologies import (
    clique_topology,
    coordination_rules_for,
    tree_topology,
)


@dataclass(frozen=True)
class CliqueGrowthPoint:
    """Cost of one clique size under one propagation policy."""

    policy: str
    size: int
    update_messages: int
    duplicate_queries: int
    update_time: float


def run_clique_growth(
    *,
    sizes: Sequence[int] = (2, 3, 4, 5, 6),
    records_per_node: int = 5,
    seed: int = 0,
) -> list[CliqueGrowthPoint]:
    """Sweep clique sizes under both propagation policies."""
    points = []
    for policy in ("per_path", "once"):
        for size in sizes:
            _, result = run_dblp_update(
                clique_topology(size),
                records_per_node=records_per_node,
                seed=seed,
                propagation=policy,
                label=f"clique{size}/{policy}",
            )
            points.append(
                CliqueGrowthPoint(
                    policy=policy,
                    size=size,
                    update_messages=result.update_messages,
                    duplicate_queries=result.duplicate_queries,
                    update_time=result.update_time,
                )
            )
    return points


@dataclass(frozen=True)
class ChangeGrowthPoint:
    """Cost of re-reaching the fix-point after a change of a given length."""

    change_length: int
    extra_messages: int
    completion_time: float


def run_change_growth(
    *,
    lengths: Sequence[int] = (1, 2, 4, 8),
    depth: int = 2,
    records_per_node: int = 10,
    seed: int = 0,
) -> list[ChangeGrowthPoint]:
    """Measure messages to re-converge after change sequences of growing length.

    Every change operation re-adds (under a fresh id) a copy of an existing
    rule whose head is at the root, so each operation forces the root to
    re-pull and re-check its fix-point.
    """
    points = []
    for length in lengths:
        spec = tree_topology(depth, fanout=2)
        network = build_dblp_network(
            spec, records_per_node=records_per_node, seed=seed
        )
        system = network.system
        for node_id in sorted(system.nodes):
            system.node(node_id).update.start()
        system.transport.run()  # type: ignore[attr-defined]
        before = system.snapshot_stats().total_messages

        rules = coordination_rules_for(spec)
        change = NetworkChange()
        for index in range(length):
            template = rules[index % len(rules)]
            change.add_link(
                type(template)(
                    f"{template.rule_id}+copy{index}",
                    template.target,
                    template.head,
                    template.body,
                    template.comparisons,
                )
            )
        for operation in change:
            apply_change_operation(system, operation)
        completion = system.transport.run()  # type: ignore[attr-defined]
        after = system.snapshot_stats().total_messages
        points.append(
            ChangeGrowthPoint(
                change_length=length,
                extra_messages=after - before,
                completion_time=completion,
            )
        )
    return points


def main() -> str:
    """Print both growth tables."""
    clique_points = run_clique_growth()
    rows = [
        [p.policy, p.size, p.update_messages, p.duplicate_queries, p.update_time]
        for p in clique_points
    ]
    table = format_table(
        ["policy", "clique size", "update msgs", "dup queries", "update time"],
        rows,
        title="E10a — growth with clique size",
    )
    change_points = run_change_growth()
    rows = [
        [p.change_length, p.extra_messages, p.completion_time] for p in change_points
    ]
    table += "\n\n" + format_table(
        ["change length", "extra messages", "completion time"],
        rows,
        title="E10b — cost of re-reaching the fix-point after a change",
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
