"""Experiment E11 — convergence under injected faults (churn, loss, partitions).

The paper's protocol is defined over an idealised network; this experiment
measures what the reproduction adds on top: the same fix-point is reached —
bit-identical to a fault-free synchronous run — while workers are killed
mid-phase, inter-shard frames are dropped or delayed, and socket hosts are
partitioned away and healed.  Every scenario runs a seeded
:class:`~repro.faults.FaultPlan` against one engine and reports whether the
run converged (ground-state parity with the sync baseline), which typed
error it raised when recovery was declined, and the ``repro_fault_*``
counters the injectors left behind.

The final scenario demonstrates log-based reconciliation: two replicas of
one scenario diverge behind a simulated partition, then
:func:`repro.faults.reconcile` merges their :class:`ChangeSet` logs and both
converge to the union state.

``python -m repro run E11`` runs the built-in matrix;
``python -m repro run E11 --faults plan.json`` replays a plan of your own
against the multiproc, pooled and socket engines instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.session import Session
from repro.api.spec import ScenarioSpec
from repro.errors import NetworkError, ReproError
from repro.faults import FaultPlan, FaultSpec, reconcile
from repro.stats.report import format_table
from repro.workloads.topologies import tree_topology


@dataclass(frozen=True)
class FaultRunRow:
    """One fault scenario: what was injected, what happened, what it cost."""

    label: str
    engine: str
    faults: str
    outcome: str
    parity: bool
    detected: int
    cold_reruns: int
    retries: int

    @property
    def ok(self) -> bool:
        """True when the run ended in its expected state."""
        return self.parity


def _baseline(scenario: ScenarioSpec):
    session = Session.from_spec(scenario)
    session.run("discovery")
    session.update()
    return session.system.databases()


def _fault_column(plan: FaultPlan) -> str:
    return ", ".join(
        f"{spec.kind}@{spec.phase}" for spec in plan.faults
    ) or "none"


def _run_plan(
    scenario: ScenarioSpec,
    baseline,
    *,
    label: str,
    transport: str,
    plan: FaultPlan,
    expect: str = "converged",
) -> FaultRunRow:
    """Run one faulted session and grade it against the sync baseline."""
    spec = scenario.with_(transport=transport, shards=2, faults=plan)
    outcome = "converged"
    parity = False
    detected = cold = retries = 0
    with Session.from_spec(spec) as session:
        try:
            session.run("discovery")
            session.update()
        except NetworkError as error:
            outcome = f"raised {type(error).__name__}"
            parity = expect != "converged"
        else:
            parity = (
                expect == "converged"
                and session.system.databases() == baseline
            )
        registry = session.system.stats.registry
        detected = int(registry.total("repro_fault_detected_total"))
        cold = int(registry.total("repro_fault_cold_reruns_total"))
        retries = int(registry.total("repro_fault_retries_total"))
    return FaultRunRow(
        label=label,
        engine=transport,
        faults=_fault_column(plan),
        outcome=outcome,
        parity=parity,
        detected=detected,
        cold_reruns=cold,
        retries=retries,
    )


def _reconcile_row(scenario: ScenarioSpec, seed: int) -> FaultRunRow:
    """Diverge two replicas behind a simulated partition, then merge logs."""
    first = Session.from_spec(scenario)
    first.run("discovery")
    first.update()
    second = Session.from_spec(scenario)
    second.run("discovery")
    second.update()
    baseline = first.system.databases()

    node = sorted(first.system.nodes)[seed % len(first.system.nodes)]
    relation = sorted(first.system.node(node).database.facts())[0]
    arity = len(
        next(
            schema
            for schema in first.system.node(node).database.schema
            if schema.name == relation
        ).attributes
    )
    first.system.node(node).database.insert(
        relation, tuple(f"left-{k}" for k in range(arity))
    )
    second.system.node(node).database.insert(
        relation, tuple(f"right-{k}" for k in range(arity))
    )

    merged = reconcile([first, second], baseline)
    converged = first.system.databases() == second.system.databases()
    inserted = sum(
        len(rows)
        for relations in merged.inserts.values()
        for rows in relations.values()
    )
    return FaultRunRow(
        label="partition log reconciliation",
        engine="sync",
        faults="divergent inserts",
        outcome=f"merged {inserted} row(s)",
        parity=converged,
        detected=0,
        cold_reruns=0,
        retries=0,
    )


def run_fault_matrix(
    *,
    records_per_node: int = 3,
    seed: int = 0,
    plan_path: str | None = None,
) -> list[FaultRunRow]:
    """Run the chaos matrix (or a user-supplied plan) and grade every row.

    The built-in matrix covers the headline guarantees: a killed worker is
    detected and the run degrades to a cold re-run that still converges; the
    same kill without a recovery budget raises a typed error instead of
    hanging; dropped and delayed frames leave the fix-point bit-identical; a
    partition heals under retry-with-backoff; a permanent partition raises
    :class:`~repro.errors.PartitionError`; diverged replicas reconcile from
    their change logs.
    """
    topology = tree_topology(2, 2)
    scenario = ScenarioSpec.from_topology(
        topology, records_per_node=records_per_node, seed=seed
    )
    baseline = _baseline(scenario)

    if plan_path is not None:
        plan = FaultPlan.load_json(plan_path)
        rows = []
        for transport in ("multiproc", "pooled", "socket"):
            try:
                rows.append(
                    _run_plan(
                        scenario,
                        baseline,
                        label=f"user plan on {transport}",
                        transport=transport,
                        plan=plan,
                    )
                )
            except ReproError as error:
                # A plan can be engine-specific (partitions need sockets);
                # report the incompatibility as a row, not a crash.
                rows.append(
                    FaultRunRow(
                        label=f"user plan on {transport}",
                        engine=transport,
                        faults=_fault_column(plan),
                        outcome=f"inapplicable: {error}",
                        parity=True,
                        detected=0,
                        cold_reruns=0,
                        retries=0,
                    )
                )
        return rows

    rows = [
        _run_plan(
            scenario,
            baseline,
            label="kill worker, recovery budget 1",
            transport="pooled",
            plan=FaultPlan(
                seed=seed,
                max_cold_reruns=1,
                faults=[
                    FaultSpec(kind="kill_worker", phase="chase", run_index=1)
                ],
            ),
        ),
        _run_plan(
            scenario,
            baseline,
            label="kill worker, no recovery",
            transport="multiproc",
            plan=FaultPlan(
                seed=seed,
                faults=[
                    FaultSpec(kind="kill_worker", phase="chase", run_index=1)
                ],
            ),
            expect="raised",
        ),
        _run_plan(
            scenario,
            baseline,
            label="drop + delay cross-shard frames",
            transport="multiproc",
            plan=FaultPlan(
                seed=seed,
                faults=[
                    FaultSpec(kind="drop_frame", phase="chase", run_index=1),
                    FaultSpec(kind="delay_frame", phase="chase", run_index=1),
                ],
            ),
        ),
        _run_plan(
            scenario,
            baseline,
            label="partition, heals under backoff",
            transport="socket",
            plan=FaultPlan(
                seed=seed,
                send_retries=6,
                backoff=0.1,
                faults=[
                    FaultSpec(
                        kind="partition",
                        phase="quiescence",
                        run_index=1,
                        heal_after=0.3,
                    )
                ],
            ),
        ),
        _run_plan(
            scenario,
            baseline,
            label="permanent partition, no recovery",
            transport="socket",
            plan=FaultPlan(
                seed=seed,
                send_retries=2,
                faults=[
                    FaultSpec(
                        kind="partition",
                        phase="quiescence",
                        run_index=1,
                        heal_after=None,
                    )
                ],
            ),
            expect="raised",
        ),
        _reconcile_row(scenario, seed),
    ]
    return rows


def main(
    records_per_node: int = 3,
    seed: int = 0,
    plan_path: str | None = None,
) -> str:
    """Print the fault-injection matrix table."""
    rows = run_fault_matrix(
        records_per_node=records_per_node, seed=seed, plan_path=plan_path
    )
    table = format_table(
        [
            "scenario",
            "engine",
            "faults",
            "outcome",
            "ok",
            "detected",
            "cold reruns",
            "retries",
        ],
        [
            [
                row.label,
                row.engine,
                row.faults,
                row.outcome,
                row.ok,
                row.detected,
                row.cold_reruns,
                row.retries,
            ]
            for row in rows
        ],
        title=(
            f"E11 — convergence under injected faults (seed {seed}, "
            f"{records_per_node} records/node)"
        ),
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
