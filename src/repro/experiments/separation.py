"""Experiment E8 — separated sub-networks under ongoing change (Theorem 3).

Theorem 3: if a set of nodes A is separated from the rest of the network with
respect to a (possibly infinite) change U, and the sub-change relevant to A is
finite, then the algorithm applied to a node in A terminates with a sound and
complete answer — the churn elsewhere cannot disturb A.

The experiment builds two components: a small tree (component A) and a clique
(component B) with no rules between them.  It then runs the update on A while
continuously applying a long change stream to B (a stand-in for an infinite
change: rules inside B keep being added and deleted between message
deliveries).  Component A must reach its fix-point with exactly the same
contents as an isolated run of A, and the number of messages handled by A's
nodes must not depend on the churn in B.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.centralized import centralized_update
from repro.core.dynamics import (
    NetworkChange,
    apply_change_operation,
    is_separated_under_change,
)
from repro.core.fixpoint import ground_part
from repro.core.system import P2PSystem
from repro.stats.report import format_table
from repro.workloads.dblp import rows_for_variant, schema_for_variant
from repro.workloads.distributions import distribute_records
from repro.workloads.topologies import (
    TopologySpec,
    clique_topology,
    coordination_rules_for,
    tree_topology,
)


def _prefixed_spec(spec: TopologySpec, prefix: str) -> TopologySpec:
    """Rename every node of a topology with a component prefix."""
    mapping = {node: f"{prefix}{node}" for node in spec.nodes}
    return TopologySpec(
        name=f"{prefix}{spec.name}",
        nodes=tuple(mapping[node] for node in spec.nodes),
        edges=tuple((mapping[a], mapping[b]) for a, b in spec.edges),
        depth=spec.depth,
        variant_by_node={mapping[n]: spec.variant_of(n) for n in spec.nodes},
    )


@dataclass(frozen=True)
class SeparationResult:
    """Outcome of the separated-component run."""

    component_a_nodes: int
    component_b_nodes: int
    churn_operations: int
    separated: bool
    a_terminated: bool
    a_matches_isolated_run: bool
    messages_within_a: int
    total_messages: int

    @property
    def theorem3_holds(self) -> bool:
        """Separation + termination + correctness of the separated component."""
        return self.separated and self.a_terminated and self.a_matches_isolated_run


def run_separation(
    *,
    tree_depth: int = 2,
    clique_size: int = 4,
    records_per_node: int = 15,
    churn_rounds: int = 6,
    seed: int = 0,
) -> SeparationResult:
    """Update a tree component while the clique component churns."""
    spec_a = _prefixed_spec(tree_topology(tree_depth, fanout=2), "a_")
    spec_b = _prefixed_spec(clique_topology(clique_size), "b_")

    schemas = {
        node: schema_for_variant(spec_a.variant_of(node)) for node in spec_a.nodes
    }
    schemas.update(
        {node: schema_for_variant(spec_b.variant_of(node)) for node in spec_b.nodes}
    )
    assignment_a = distribute_records(spec_a, records_per_node, seed=seed)
    assignment_b = distribute_records(spec_b, records_per_node, seed=seed + 1)
    data = {
        node: rows_for_variant(records, spec_a.variant_of(node))
        for node, records in assignment_a.items()
    }
    data.update(
        {
            node: rows_for_variant(records, spec_b.variant_of(node))
            for node, records in assignment_b.items()
        }
    )
    rules_a = coordination_rules_for(spec_a)
    rules_b = coordination_rules_for(spec_b)

    system = P2PSystem.build(
        schemas, rules_a + rules_b, data, transport="sync", super_peer=spec_a.nodes[0]
    )

    # The churn: repeatedly delete and re-add rules of component B.
    churn = NetworkChange()
    for round_index in range(churn_rounds):
        victim = rules_b[round_index % len(rules_b)]
        churn.delete_link(victim.target, victim.sources[0], victim.rule_id)
        churn.add_link(
            type(victim)(
                f"{victim.rule_id}@{round_index}",
                victim.target,
                victim.head,
                victim.body,
                victim.comparisons,
            )
        )
    separated = is_separated_under_change(
        spec_a.nodes, spec_b.nodes, rules_a + rules_b, churn
    )

    # Start the update only inside component A, then interleave B's churn.
    for node_id in spec_a.nodes:
        system.node(node_id).update.start()
    operations = list(churn)
    for operation in operations:
        for _ in range(3):
            if system.transport.step() is None:  # type: ignore[attr-defined]
                break
        apply_change_operation(system, operation)
    system.transport.run()  # type: ignore[attr-defined]

    a_closed = all(system.node(node).is_update_closed for node in spec_a.nodes)

    # Reference: component A updated in isolation.
    reference = centralized_update(
        {node: schemas[node] for node in spec_a.nodes},
        rules_a,
        {node: data[node] for node in spec_a.nodes},
    ).snapshot()
    measured = {node: system.node(node).database.facts() for node in spec_a.nodes}
    matches = ground_part(measured) == ground_part(reference)

    snapshot = system.snapshot_stats()
    messages_within_a = sum(
        counters.messages_sent
        for node, counters in snapshot.nodes.items()
        if node in set(spec_a.nodes)
    )
    return SeparationResult(
        component_a_nodes=spec_a.node_count,
        component_b_nodes=spec_b.node_count,
        churn_operations=len(operations),
        separated=separated,
        a_terminated=a_closed,
        a_matches_isolated_run=matches,
        messages_within_a=messages_within_a,
        total_messages=snapshot.total_messages,
    )


def main() -> str:
    """Print the Theorem 3 check for a tree separated from a churning clique."""
    result = run_separation()
    table = format_table(
        [
            "A nodes",
            "B nodes",
            "churn ops",
            "separated",
            "A terminated",
            "A correct",
            "msgs in A",
            "total msgs",
        ],
        [
            [
                result.component_a_nodes,
                result.component_b_nodes,
                result.churn_operations,
                result.separated,
                result.a_terminated,
                result.a_matches_isolated_run,
                result.messages_within_a,
                result.total_messages,
            ]
        ],
        title="E8 — separated component under churn (Theorem 3)",
    )
    table += f"\nTheorem 3 holds: {result.theorem3_holds}"
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
