"""Experiment harness: one module per experiment of DESIGN.md's index.

Every module exposes a ``run_*`` function returning plain dictionaries /
dataclasses (so benchmarks and tests can assert on them) and a ``main``
function that prints the same rows the paper reports, formatted with
:func:`repro.stats.report.format_table`.

| Experiment | Module | Paper artefact |
|------------|--------|----------------|
| E1 | :mod:`repro.experiments.paper_example` | Section 2 dependency-path table |
| E2 | :mod:`repro.experiments.trace_example` | Figure 1 execution trace |
| E3 | :mod:`repro.experiments.scalability` | Section 5 scalability (31 nodes) |
| E4 | :mod:`repro.experiments.depth_linearity` | "linear in the depth" claim |
| E5 | :mod:`repro.experiments.data_distribution` | 0% vs 50% overlap |
| E6 | :mod:`repro.experiments.message_accounting` | statistics module output |
| E7 | :mod:`repro.experiments.dynamic_changes` | Theorem 2 (sound/complete under change) |
| E8 | :mod:`repro.experiments.separation` | Theorem 3 (separated sub-network) |
| E9 | :mod:`repro.experiments.baseline_comparison` | update vs query-time vs centralized |
| E10 | :mod:`repro.experiments.complexity_growth` | Lemma 1(3)/Lemma 4 growth |
| E11 | :mod:`repro.experiments.faults` | convergence under injected faults |
| E12 | :mod:`repro.experiments.serving` | multi-tenant serving under closed-loop load |
"""

from repro.experiments.runner import UpdateRunResult, run_dblp_update, run_system_update

__all__ = ["UpdateRunResult", "run_dblp_update", "run_system_update"]
