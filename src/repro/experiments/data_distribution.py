"""Experiment E5 — the two data distributions (0% vs 50% overlap).

"We considered two different data distributions.  In the first one there is
no intersection between initial data in neighbor nodes.  In the second, there
is 50% probability of intersection between initial data in nodes linked by
coordination rules; the intersection between data in other nodes is empty."

Overlapping data means a node already holds part of what its acquaintances
would send it, so fewer tuples are actually *inserted* during the update even
though roughly the same number are transferred.  The experiment runs the same
topologies under both distributions and reports messages, transferred tuples
and inserted tuples side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.runner import UpdateRunResult, run_dblp_update
from repro.stats.report import format_table
from repro.workloads.topologies import (
    TopologySpec,
    clique_topology,
    layered_topology,
    tree_topology,
)


@dataclass(frozen=True)
class DistributionComparison:
    """Results of one topology under both data distributions."""

    topology: str
    node_count: int
    disjoint: UpdateRunResult
    overlapping: UpdateRunResult

    @property
    def insertion_ratio(self) -> float:
        """Inserted tuples with overlap divided by inserted tuples without."""
        if self.disjoint.tuples_inserted == 0:
            return 1.0
        return self.overlapping.tuples_inserted / self.disjoint.tuples_inserted


def default_specs() -> list[TopologySpec]:
    """The three topology families at a small, comparable size."""
    return [tree_topology(3, 2), layered_topology(3, 3), clique_topology(6)]


def run_data_distribution(
    *,
    specs: Sequence[TopologySpec] | None = None,
    records_per_node: int = 40,
    overlap_probability: float = 0.5,
    overlap_fraction: float = 0.5,
    seed: int = 0,
) -> list[DistributionComparison]:
    """Run every topology under the disjoint and the overlapping distribution."""
    comparisons = []
    for spec in specs if specs is not None else default_specs():
        _, disjoint = run_dblp_update(
            spec,
            records_per_node=records_per_node,
            overlap_probability=0.0,
            seed=seed,
            label=f"{spec.name}/disjoint",
        )
        _, overlapping = run_dblp_update(
            spec,
            records_per_node=records_per_node,
            overlap_probability=overlap_probability,
            overlap_fraction=overlap_fraction,
            seed=seed,
            label=f"{spec.name}/overlap",
        )
        comparisons.append(
            DistributionComparison(
                topology=spec.name,
                node_count=spec.node_count,
                disjoint=disjoint,
                overlapping=overlapping,
            )
        )
    return comparisons


def main(records_per_node: int = 40) -> str:
    """Print the 0% vs 50% overlap comparison table."""
    comparisons = run_data_distribution(records_per_node=records_per_node)
    rows = []
    for comparison in comparisons:
        for label, result in (
            ("0% overlap", comparison.disjoint),
            ("50% overlap", comparison.overlapping),
        ):
            rows.append(
                [
                    comparison.topology,
                    comparison.node_count,
                    label,
                    result.update_messages,
                    result.tuples_transferred,
                    result.tuples_inserted,
                    result.update_time,
                ]
            )
    table = format_table(
        [
            "topology",
            "nodes",
            "distribution",
            "update msgs",
            "tuples transferred",
            "tuples inserted",
            "update time",
        ],
        rows,
        title="E5 — data distributions: disjoint vs 50% overlap",
    )
    for comparison in comparisons:
        table += (
            f"\n{comparison.topology}: inserted(overlap)/inserted(disjoint) = "
            f"{comparison.insertion_ratio:.2f}"
        )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
