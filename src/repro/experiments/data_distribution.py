"""Experiment E5 — the two data distributions (0% vs 50% overlap).

"We considered two different data distributions.  In the first one there is
no intersection between initial data in neighbor nodes.  In the second, there
is 50% probability of intersection between initial data in nodes linked by
coordination rules; the intersection between data in other nodes is empty."

Overlapping data means a node already holds part of what its acquaintances
would send it, so fewer tuples are actually *inserted* during the update even
though roughly the same number are transferred.  The experiment runs the same
topologies under both distributions and reports messages, transferred tuples
and inserted tuples side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ReproError
from repro.experiments.runner import UpdateRunResult, run_dblp_update
from repro.stats.report import format_table
from repro.workloads.topologies import (
    TopologySpec,
    clique_topology,
    layered_topology,
    tree_topology,
)


@dataclass(frozen=True)
class DistributionComparison:
    """Results of one topology under both data distributions."""

    topology: str
    node_count: int
    disjoint: UpdateRunResult
    overlapping: UpdateRunResult

    @property
    def insertion_ratio(self) -> float:
        """Inserted tuples with overlap divided by inserted tuples without."""
        if self.disjoint.tuples_inserted == 0:
            return 1.0
        return self.overlapping.tuples_inserted / self.disjoint.tuples_inserted


def default_specs() -> list[TopologySpec]:
    """The three topology families at a small, comparable size."""
    return [tree_topology(3, 2), layered_topology(3, 3), clique_topology(6)]


def run_data_distribution(
    *,
    specs: Sequence[TopologySpec] | None = None,
    records_per_node: int = 40,
    overlap_probability: float = 0.5,
    overlap_fraction: float = 0.5,
    seed: int = 0,
    strategy: str = "distributed",
) -> list[DistributionComparison]:
    """Run every topology under the disjoint and the overlapping distribution.

    ``strategy`` selects any registered update strategy (as E3's sweep does).
    """
    comparisons = []
    for spec in specs if specs is not None else default_specs():
        try:
            comparisons.append(
                _compare_distributions(
                    spec,
                    records_per_node=records_per_node,
                    overlap_probability=overlap_probability,
                    overlap_fraction=overlap_fraction,
                    seed=seed,
                    strategy=strategy,
                )
            )
        except ReproError as error:
            # Reference strategies may be inapplicable (e.g. acyclic on the
            # clique spec); the distributed protocol must not fail.
            if strategy == "distributed":
                raise
            print(f"skipping {spec.name} ({strategy}): {error}")
    return comparisons


def _compare_distributions(
    spec: TopologySpec,
    *,
    records_per_node: int,
    overlap_probability: float,
    overlap_fraction: float,
    seed: int,
    strategy: str,
) -> DistributionComparison:
    _, disjoint = run_dblp_update(
        spec,
        records_per_node=records_per_node,
        overlap_probability=0.0,
        seed=seed,
        label=f"{spec.name}/disjoint",
        strategy=strategy,
    )
    _, overlapping = run_dblp_update(
        spec,
        records_per_node=records_per_node,
        overlap_probability=overlap_probability,
        overlap_fraction=overlap_fraction,
        seed=seed,
        label=f"{spec.name}/overlap",
        strategy=strategy,
    )
    return DistributionComparison(
        topology=spec.name,
        node_count=spec.node_count,
        disjoint=disjoint,
        overlapping=overlapping,
    )


def main(records_per_node: int = 40, strategy: str = "distributed") -> str:
    """Print the 0% vs 50% overlap comparison table.

    With a non-distributed ``strategy`` the reference strategy runs the same
    sweep and its message/tuple columns appear next to the distributed ones.
    """
    comparisons = run_data_distribution(records_per_node=records_per_node)
    reference = (
        {
            comparison.topology: comparison
            for comparison in run_data_distribution(
                records_per_node=records_per_node, strategy=strategy
            )
        }
        if strategy != "distributed"
        else None
    )
    rows = []
    for comparison in comparisons:
        ref = reference.get(comparison.topology) if reference is not None else None
        for label, result, ref_result in (
            ("0% overlap", comparison.disjoint, ref.disjoint if ref else None),
            ("50% overlap", comparison.overlapping, ref.overlapping if ref else None),
        ):
            row = [
                comparison.topology,
                comparison.node_count,
                label,
                result.update_messages,
                result.tuples_transferred,
                result.tuples_inserted,
                result.update_time,
            ]
            if reference is not None:
                row += (
                    [ref_result.update_messages, ref_result.tuples_inserted]
                    if ref_result is not None
                    else ["n/a", "n/a"]
                )
            rows.append(row)
    headers = [
        "topology",
        "nodes",
        "distribution",
        "update msgs",
        "tuples transferred",
        "tuples inserted",
        "update time",
    ]
    if reference is not None:
        headers += [f"msgs ({strategy})", f"tuples ins ({strategy})"]
    table = format_table(
        headers,
        rows,
        title=(
            "E5 — data distributions: disjoint vs 50% overlap"
            + (f" (distributed vs {strategy})" if reference is not None else "")
        ),
    )
    for comparison in comparisons:
        table += (
            f"\n{comparison.topology}: inserted(overlap)/inserted(disjoint) = "
            f"{comparison.insertion_ratio:.2f}"
        )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
