"""A small synchronous client for the serving API (stdlib only).

:class:`ServeClient` wraps ``http.client`` with the serving API's JSON
conventions — typed :class:`ServeError` on 4xx/5xx carrying the error code
and any ``Retry-After`` hint — and is what the integration tests, the
closed-loop benchmark driver and the quickstart example all use.
:class:`EventStream` speaks just enough RFC 6455 to follow one tenant's
event channel.
"""

from __future__ import annotations

import base64
import http.client
import json
import os
import socket
from typing import Any, Iterator, Mapping

from repro.errors import ReproError
from repro.serve.protocol import (
    WS_CLOSE,
    WS_PING,
    WS_PONG,
    WS_TEXT,
    build_frame,
    parse_frame,
    websocket_accept,
)


class ServeError(ReproError):
    """A non-2xx response, with its status, error code and retry hint."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        *,
        retry_after: float | None = None,
    ):
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.retry_after = retry_after


class ServeClient:
    """One keep-alive connection to a serving front-end."""

    def __init__(self, host: str, port: int, *, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------ wire

    def request(
        self,
        method: str,
        path: str,
        document: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """One request/response; JSON in, JSON out, :class:`ServeError` out."""
        body = None
        headers = {}
        if document is not None:
            body = json.dumps(document).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = self._connect()
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            payload = response.read()
        except (http.client.HTTPException, OSError):
            # One reconnect on a dropped keep-alive connection, then give up.
            self.close()
            connection = self._connect()
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            payload = response.read()
        if response.status >= 400:
            self._raise(response, payload)
        if not payload:
            return {}
        if response.headers.get_content_type() == "application/json":
            return json.loads(payload.decode("utf-8"))
        return {"text": payload.decode("utf-8")}

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def _raise(self, response: http.client.HTTPResponse, payload: bytes) -> None:
        code, message = "error", payload.decode("utf-8", "replace").strip()
        try:
            document = json.loads(payload.decode("utf-8"))
            code = document["error"]["code"]
            message = document["error"]["message"]
        except (ValueError, KeyError, TypeError):
            pass
        retry_after = None
        header = response.headers.get("Retry-After")
        if header is not None:
            try:
                retry_after = float(header)
            except ValueError:
                pass
        raise ServeError(
            response.status, code, message, retry_after=retry_after
        )

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------- endpoints

    def healthz(self) -> dict[str, Any]:
        return self.request("GET", "/healthz")

    def metrics(self) -> str:
        """The Prometheus exposition as text."""
        return self.request("GET", "/metrics")["text"]

    def tenants(self) -> list[dict[str, Any]]:
        return self.request("GET", "/tenants")["tenants"]

    def create_tenant(
        self,
        name: str,
        spec_document: Mapping[str, Any],
        *,
        warm: bool | None = None,
    ) -> dict[str, Any]:
        body: dict[str, Any] = {"name": name, "spec": spec_document}
        if warm is not None:
            body["warm"] = warm
        return self.request("POST", "/tenants", body)

    def load_tenant(self, name: str, *, warm: bool | None = None) -> dict[str, Any]:
        body = {} if warm is None else {"warm": warm}
        return self.request("POST", f"/tenants/{name}/load", body)

    def status(self, name: str) -> dict[str, Any]:
        return self.request("GET", f"/tenants/{name}")

    def update(
        self,
        name: str,
        *,
        inserts: Mapping[str, Mapping[str, list]] | None = None,
        removes: Mapping[str, Mapping[str, list]] | None = None,
        add_rules: list[str] | None = None,
        remove_rules: list[str] | None = None,
    ) -> dict[str, Any]:
        body: dict[str, Any] = {}
        if inserts:
            body["inserts"] = inserts
        if removes:
            body["removes"] = removes
        if add_rules:
            body["add_rules"] = add_rules
        if remove_rules:
            body["remove_rules"] = remove_rules
        return self.request("POST", f"/tenants/{name}/update", body)

    def query(self, name: str, node: str, query_text: str) -> dict[str, Any]:
        return self.request(
            "POST", f"/tenants/{name}/query", {"node": node, "query": query_text}
        )

    def close_tenant(self, name: str) -> dict[str, Any]:
        return self.request("POST", f"/tenants/{name}/close", {})

    def events(self, name: str, *, timeout: float = 30.0) -> "EventStream":
        """Open the tenant's WebSocket event channel."""
        return EventStream(self.host, self.port, name, timeout=timeout)


class EventStream:
    """A blocking reader over one tenant's ``/events`` WebSocket channel."""

    def __init__(self, host: str, port: int, tenant: str, *, timeout: float = 30.0):
        self.tenant = tenant
        self._socket = socket.create_connection((host, port), timeout=timeout)
        key = base64.b64encode(os.urandom(16)).decode("latin-1")
        handshake = (
            f"GET /tenants/{tenant}/events HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n"
            "\r\n"
        )
        self._socket.sendall(handshake.encode("latin-1"))
        response = self._read_handshake()
        status_line, _, header_block = response.partition("\r\n")
        if " 101 " not in status_line:
            self._socket.close()
            raise ServeError(
                int(status_line.split()[1]) if status_line.split()[1:] else 500,
                "handshake_failed",
                f"WebSocket upgrade refused: {status_line.strip()}",
            )
        expected = websocket_accept(key)
        accepted = ""
        for line in header_block.split("\r\n"):
            name, _, value = line.partition(":")
            if name.strip().lower() == "sec-websocket-accept":
                accepted = value.strip()
        if accepted != expected:
            self._socket.close()
            raise ServeError(
                500, "handshake_failed", "Sec-WebSocket-Accept mismatch"
            )

    def _read_handshake(self) -> str:
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = self._socket.recv(4096)
            if not chunk:
                raise ServeError(500, "handshake_failed", "connection closed")
            data = data + chunk
        head, _, rest = data.partition(b"\r\n\r\n")
        self._buffered = rest
        return head.decode("latin-1")

    def _read_exact(self, n: int) -> bytes:
        data = self._buffered[:n]
        self._buffered = self._buffered[n:]
        while len(data) < n:
            chunk = self._socket.recv(n - len(data))
            if not chunk:
                raise ServeError(500, "stream_closed", "connection closed mid frame")
            data += chunk
        return data

    def __iter__(self) -> Iterator[dict[str, Any]]:
        """Yield event documents until the server closes the channel."""
        while True:
            event = self.next_event()
            if event is None:
                return
            yield event

    def next_event(self) -> dict[str, Any] | None:
        """The next event document; ``None`` once the channel closes."""
        while True:
            opcode, payload = parse_frame(self._read_exact)
            if opcode == WS_TEXT:
                return json.loads(payload.decode("utf-8"))
            if opcode == WS_PING:
                self._socket.sendall(build_frame(WS_PONG, payload, mask=True))
                continue
            if opcode == WS_CLOSE:
                try:
                    self._socket.sendall(
                        build_frame(WS_CLOSE, payload[:2], mask=True)
                    )
                except OSError:
                    pass
                return None
            # Pongs and binary frames are ignored.

    def close(self) -> None:
        try:
            self._socket.sendall(build_frame(WS_CLOSE, b"\x03\xe8", mask=True))
        except OSError:
            pass
        self._socket.close()

    def __enter__(self) -> "EventStream":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
