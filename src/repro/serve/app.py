"""The serving application: routes, handlers, and the metrics exposition.

:class:`ServeApp` is transport-free — it maps parsed
:class:`~repro.serve.protocol.HttpRequest` objects to
:class:`~repro.serve.protocol.HttpResponse` objects over a
:class:`~repro.serve.tenants.TenantManager` — so the endpoint tests can
drive it through a real localhost server while the routing and error
mapping stay unit-testable.  The endpoint reference, the admission-control
semantics and the error vocabulary live in ``docs/serving.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.api.spec import ScenarioSpec
from repro.errors import NetworkError, PartitionError, ReproError
from repro.faults.recovery import RetryPolicy, retry_after_hint
from repro.obs.export import metrics_to_prometheus
from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.serve.protocol import HttpRequest, HttpResponse
from repro.serve.tenants import AdmissionError, TenantManager, parse_changes

log = get_logger("serve")

#: Route label used for requests that match no route (bounds cardinality).
_UNROUTED = "unrouted"


@dataclass(frozen=True)
class ServerConfig:
    """Everything ``python -m repro.serve`` can set from the command line."""

    host: str = "127.0.0.1"
    port: int = 8750
    tenants_dir: Path | None = None
    queue_depth: int = 16
    max_workers: int = 4
    warm: bool = True
    retry_attempts: int = 2
    retry_backoff: float = 0.05
    query_budget_timeout: float = 5.0
    preload: tuple[str, ...] = ()

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(attempts=self.retry_attempts, backoff=self.retry_backoff)


@dataclass
class _RouteMatch:
    """A matched route: its metrics label plus extracted path parameters."""

    label: str
    tenant: str | None = None
    action: str | None = None
    params: dict[str, str] = field(default_factory=dict)


def match_route(method: str, segments: tuple[str, ...]) -> _RouteMatch | None:
    """Map (method, path segments) onto the serving API's route table."""
    if segments == ("healthz",) and method == "GET":
        return _RouteMatch("healthz")
    if segments == ("metrics",) and method == "GET":
        return _RouteMatch("metrics")
    if segments == ("tenants",):
        if method == "GET":
            return _RouteMatch("tenants.list")
        if method == "POST":
            return _RouteMatch("tenants.create")
        return None
    if len(segments) == 2 and segments[0] == "tenants":
        if method == "GET":
            return _RouteMatch("tenants.status", tenant=segments[1])
        if method == "DELETE":
            return _RouteMatch("tenants.close", tenant=segments[1])
        return None
    if len(segments) == 3 and segments[0] == "tenants":
        tenant, action = segments[1], segments[2]
        table = {
            ("POST", "load"): "tenants.load",
            ("POST", "update"): "tenants.update",
            ("GET", "query"): "tenants.query",
            ("POST", "query"): "tenants.query",
            ("POST", "close"): "tenants.close",
            ("GET", "events"): "tenants.events",
        }
        label = table.get((method, action))
        if label is None:
            return None
        return _RouteMatch(label, tenant=tenant, action=action)
    return None


class ServeApp:
    """Multi-tenant front-end over warm pools (the tentpole of PR 10)."""

    def __init__(self, config: ServerConfig | None = None):
        self.config = config if config is not None else ServerConfig()
        self.manager = TenantManager(
            tenants_dir=self.config.tenants_dir,
            queue_depth=self.config.queue_depth,
            max_workers=self.config.max_workers,
            warm=self.config.warm,
            retry_policy=self.config.retry_policy(),
            query_budget_timeout=self.config.query_budget_timeout,
        )
        self.started_at = time.time()
        self.registry = MetricsRegistry()
        self.registry.describe(
            "repro_serve_requests_total", "HTTP requests by route, method, status."
        )
        self.registry.describe(
            "repro_serve_request_seconds", "Request handling latency by route."
        )
        self.registry.describe(
            "repro_serve_rejections_total", "Admission-control rejections by code."
        )
        self.registry.describe(
            "repro_serve_ws_connections_total", "WebSocket event subscriptions."
        )

    # --------------------------------------------------------------- lifecycle

    async def startup(self) -> None:
        """Preload the tenants named by the configuration (CLI ``--preload``)."""
        names = self.config.preload
        if names == ("all",):
            names = tuple(sorted(self.manager.available_specs()))
        for name in names:
            await self.manager.load(name)

    async def shutdown(self) -> None:
        await self.manager.shutdown()

    # ----------------------------------------------------------------- serving

    async def handle(self, request: HttpRequest) -> HttpResponse:
        """Dispatch one request; never raises (errors become typed responses)."""
        started = time.perf_counter()
        match = match_route(request.method, request.segments)
        try:
            if match is None:
                response = self._not_found(request)
            else:
                response = await self._dispatch(match, request)
        except AdmissionError as error:
            self.registry.counter(
                "repro_serve_rejections_total", {"code": error.code}
            ).inc()
            response = HttpResponse.error(
                error.status, error.code, str(error), retry_after=error.retry_after
            )
        except PartitionError as error:
            # An unhealed partition after the whole retry schedule: the
            # tenant's fleet is reachable again only once the plan heals, so
            # tell the caller when retrying becomes worthwhile.
            self.registry.counter(
                "repro_serve_rejections_total", {"code": "partitioned"}
            ).inc()
            response = HttpResponse.error(
                503,
                "partitioned",
                f"tenant fleet partitioned: {error}",
                retry_after=retry_after_hint(self.manager.retry_policy),
            )
        except NetworkError as error:
            response = HttpResponse.error(
                503,
                "network_error",
                f"run failed after retries: {error}",
                retry_after=retry_after_hint(self.manager.retry_policy),
            )
        except ReproError as error:
            response = HttpResponse.error(400, "bad_request", str(error))
        except Exception as error:  # noqa: BLE001 - the last-resort 500 boundary
            log.exception("unhandled error serving %s %s", request.method, request.path)
            response = HttpResponse.error(
                500, "internal", f"{type(error).__name__}: {error}"
            )
        label = match.label if match is not None else _UNROUTED
        self.registry.counter(
            "repro_serve_requests_total",
            {
                "route": label,
                "method": request.method,
                "status": str(response.status),
            },
        ).inc()
        self.registry.histogram(
            "repro_serve_request_seconds", {"route": label}
        ).observe(time.perf_counter() - started)
        return response

    async def _dispatch(
        self, match: _RouteMatch, request: HttpRequest
    ) -> HttpResponse:
        if match.label == "healthz":
            return self._healthz()
        if match.label == "metrics":
            return HttpResponse.text(
                200,
                self.metrics_exposition(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        if match.label == "tenants.list":
            return HttpResponse.json(200, {"tenants": self.manager.listing()})
        if match.label == "tenants.create":
            return await self._create(request)
        if match.label == "tenants.status":
            return HttpResponse.json(200, self.manager.get(match.tenant).describe())
        if match.label == "tenants.load":
            return await self._load(match.tenant, request)
        if match.label == "tenants.close":
            return HttpResponse.json(200, await self.manager.close(match.tenant))
        if match.label == "tenants.update":
            return await self._update(match.tenant, request)
        if match.label == "tenants.query":
            return await self._query(match.tenant, request)
        if match.label == "tenants.events":
            # Reached only when the events route is hit *without* a
            # WebSocket upgrade; the server intercepts upgrades earlier.
            return HttpResponse.error(
                426,
                "upgrade_required",
                "GET /tenants/{name}/events is a WebSocket endpoint",
            )
        raise AssertionError(f"unrouted label {match.label}")  # pragma: no cover

    # ---------------------------------------------------------------- handlers

    def _not_found(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.error(
            404, "unknown_route", f"no route for {request.method} {request.path}"
        )

    def _healthz(self) -> HttpResponse:
        states: dict[str, int] = {}
        for row in self.manager.listing():
            states[row["state"]] = states.get(row["state"], 0) + 1
        status = "draining" if self.manager.draining else "ok"
        return HttpResponse.json(
            200 if status == "ok" else 503,
            {
                "status": status,
                "uptime_seconds": round(time.time() - self.started_at, 3),
                "tenants": states,
                "worker_budget": self.manager.max_workers,
            },
        )

    async def _create(self, request: HttpRequest) -> HttpResponse:
        document = request.json()
        if not isinstance(document, dict) or "name" not in document:
            raise ReproError('POST /tenants expects {"name": ..., "spec": {...}}')
        name = str(document["name"])
        spec_document = document.get("spec")
        if spec_document is None:
            raise ReproError(f'tenant {name!r} needs an inline "spec" document')
        try:
            spec = ScenarioSpec.load_json(_as_spec_text(spec_document))
        except ReproError as error:
            raise AdmissionError(400, "bad_spec", str(error))
        warm = document.get("warm")
        if warm is not None and not isinstance(warm, bool):
            raise ReproError('"warm" must be a boolean')
        tenant = await self.manager.create(name, spec, warm=warm)
        return HttpResponse.json(201, tenant.describe())

    async def _load(self, name: str, request: HttpRequest) -> HttpResponse:
        document = request.json()
        warm = document.get("warm") if isinstance(document, dict) else None
        if warm is not None and not isinstance(warm, bool):
            raise ReproError('"warm" must be a boolean')
        tenant = await self.manager.load(name, warm=warm)
        return HttpResponse.json(201, tenant.describe())

    async def _update(self, name: str, request: HttpRequest) -> HttpResponse:
        changes = parse_changes(request.json())
        tenant = self.manager.get(name)
        tenant.validate_changes(changes)
        future = self.manager.submit_update(name, changes)
        outcome = await future
        return HttpResponse.json(
            200,
            {
                "tenant": name,
                "phase": "update",
                "mode": outcome.mode,
                "completion_time": outcome.completion_time,
                "wall_seconds": round(outcome.wall_seconds, 6),
                "tuples_added": outcome.tuples_added,
                "messages": outcome.messages,
                "incremental": outcome.incremental,
            },
        )

    async def _query(self, name: str, request: HttpRequest) -> HttpResponse:
        if request.method == "GET":
            node = request.param("node")
            query_text = request.param("q")
        else:
            document = request.json()
            if not isinstance(document, dict):
                raise ReproError('POST query expects {"node": ..., "query": ...}')
            node = document.get("node")
            query_text = document.get("query") or document.get("q")
        if not node or not query_text:
            raise ReproError(
                "a query needs a node and a query string "
                "(?node=a&q=ans(X) :- item(X, Y))"
            )
        started = time.perf_counter()
        answers = await self.manager.run_query(name, str(node), str(query_text))
        return HttpResponse.json(
            200,
            {
                "tenant": name,
                "node": node,
                "query": query_text,
                "answers": answers,
                "count": len(answers),
                "wall_seconds": round(time.perf_counter() - started, 6),
            },
        )

    # ----------------------------------------------------------------- metrics

    def metrics_exposition(self) -> str:
        """The ``/metrics`` document: server + every tenant, one registry.

        Each ready tenant's statistics registry (message counters, the
        ``repro_incremental_*`` series, fault counters) is folded in with a
        ``tenant`` label — the same relabelling a Prometheus federation of
        per-tenant exporters would produce — alongside the server's own
        request/rejection/queue series.
        """
        registry = MetricsRegistry()
        registry.merge(self.registry.dump())
        for name in self.registry._help:
            registry.describe(name, self.registry.help_for(name))
        registry.describe(
            "repro_serve_uptime_seconds", "Seconds since the server booted."
        )
        registry.gauge("repro_serve_uptime_seconds").set(
            round(time.time() - self.started_at, 3)
        )
        registry.describe(
            "repro_serve_tenants", "Loaded tenants by lifecycle state."
        )
        registry.describe(
            "repro_serve_queue_depth", "Pending updates in each tenant's queue."
        )
        registry.describe(
            "repro_serve_runs_completed_total", "Update runs completed per tenant."
        )
        states: dict[str, int] = {}
        for row in self.manager.listing():
            states[row["state"]] = states.get(row["state"], 0) + 1
        for state, count in sorted(states.items()):
            registry.gauge("repro_serve_tenants", {"state": state}).set(count)
        for name, tenant in sorted(self.manager.tenants.items()):
            registry.gauge("repro_serve_queue_depth", {"tenant": name}).set(
                tenant.queue_depth
            )
            registry.counter(
                "repro_serve_runs_completed_total", {"tenant": name}
            ).value = tenant.runs_completed
            session = tenant.session
            if session is None:
                continue
            stats_registry = session.system.stats.registry
            registry.merge(stats_registry.dump(), extra_labels={"tenant": name})
            for metric_name in stats_registry._help:
                registry.describe(metric_name, stats_registry.help_for(metric_name))
        return metrics_to_prometheus(registry)


def _as_spec_text(document: Any) -> str:
    """Inline spec documents arrive as JSON objects; the loader wants text."""
    import json

    return json.dumps(document)
