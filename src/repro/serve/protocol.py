"""HTTP/1.1 and WebSocket wire plumbing for the serving front-end.

The container ships no web framework, so the server speaks a deliberately
small, strictly-parsed subset of HTTP/1.1 over asyncio streams — request
line + headers + ``Content-Length`` bodies, keep-alive connections — and
RFC 6455 WebSockets for the event channel (handshake via the magic GUID,
masked client frames, unmasked server frames, ping/pong/close).  Like the
shard-host framing in :mod:`repro.sharding.sockets`, everything malformed
or oversized is rejected loudly instead of being guessed at.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import os
import struct
from dataclasses import dataclass, field
from typing import Callable, Mapping
from urllib.parse import parse_qs, unquote, urlsplit

from repro.errors import ReproError

#: Upper bounds keeping one bad client from holding the parser hostage.
MAX_REQUEST_LINE = 8192
MAX_HEADER_BYTES = 32768
MAX_BODY_BYTES = 64 * 1024 * 1024
MAX_WS_PAYLOAD = 16 * 1024 * 1024

#: RFC 6455 section 1.3 — the handshake's magic GUID.
_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: WebSocket opcodes the server handles.
WS_TEXT = 0x1
WS_BINARY = 0x2
WS_CLOSE = 0x8
WS_PING = 0x9
WS_PONG = 0xA

_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    426: "Upgrade Required",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolViolation(ReproError):
    """The peer sent bytes that are not the HTTP/WS subset we speak."""


@dataclass
class HttpRequest:
    """One parsed HTTP request (method, split path, query, headers, body)."""

    method: str
    target: str
    path: str
    query: Mapping[str, list[str]]
    headers: Mapping[str, str]
    body: bytes = b""

    @property
    def segments(self) -> tuple[str, ...]:
        """The path split on ``/`` with empty segments dropped."""
        return tuple(part for part in self.path.split("/") if part)

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    def param(self, name: str, default: str | None = None) -> str | None:
        """First value of one query parameter (or ``default``)."""
        values = self.query.get(name)
        return values[0] if values else default

    def json(self) -> object:
        """The body decoded as JSON (``{}`` for an empty body)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolViolation(f"request body is not valid JSON: {error}")

    @property
    def wants_websocket(self) -> bool:
        """True when the request asks for a WebSocket upgrade."""
        return (
            "websocket" in self.header("upgrade").lower()
            and "upgrade" in self.header("connection").lower()
        )


@dataclass
class HttpResponse:
    """One response about to be serialised (status + headers + body)."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(
        cls, status: int, document: object, headers: dict[str, str] | None = None
    ) -> "HttpResponse":
        body = (json.dumps(document, indent=2, default=str) + "\n").encode("utf-8")
        return cls(status, body, "application/json", dict(headers or {}))

    @classmethod
    def text(
        cls,
        status: int,
        text: str,
        content_type: str = "text/plain; charset=utf-8",
    ) -> "HttpResponse":
        return cls(status, text.encode("utf-8"), content_type)

    @classmethod
    def error(
        cls,
        status: int,
        code: str,
        message: str,
        *,
        retry_after: float | None = None,
    ) -> "HttpResponse":
        """The uniform error shape: ``{"error": {"code", "message"}}``.

        ``retry_after`` (seconds, rounded up to at least 1) becomes a
        ``Retry-After`` header — the admission-control contract promises one
        on every 429/503 so closed-loop clients can back off honestly.
        """
        headers = {}
        if retry_after is not None:
            headers["Retry-After"] = str(max(1, int(retry_after + 0.999)))
        return cls.json(
            status, {"error": {"code": code, "message": message}}, headers
        )


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one request off ``reader``; ``None`` on a cleanly closed peer."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolViolation("connection closed mid request line")
    except asyncio.LimitOverrunError:
        raise ProtocolViolation("request line exceeds the size bound")
    if len(line) > MAX_REQUEST_LINE:
        raise ProtocolViolation("request line exceeds the size bound")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolViolation(f"malformed request line {line!r}")
    method, target, _version = parts

    headers: dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise ProtocolViolation("connection closed inside the header block")
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise ProtocolViolation("header block exceeds the size bound")
        if line == b"\r\n":
            break
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise ProtocolViolation(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise ProtocolViolation(
                f"malformed Content-Length {headers['content-length']!r}"
            )
        if length < 0 or length > MAX_BODY_BYTES:
            raise ProtocolViolation(f"Content-Length {length} out of bounds")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolViolation("connection closed mid body")
    elif headers.get("transfer-encoding"):
        raise ProtocolViolation("chunked request bodies are not supported")

    split = urlsplit(target)
    return HttpRequest(
        method=method.upper(),
        target=target,
        path=unquote(split.path),
        query=parse_qs(split.query),
        headers=headers,
        body=body,
    )


def render_response(response: HttpResponse, *, keep_alive: bool) -> bytes:
    """Serialise ``response`` (adding framing + connection headers)."""
    reason = _REASONS.get(response.status, "Unknown")
    headers = {
        "Content-Type": response.content_type,
        "Content-Length": str(len(response.body)),
        "Connection": "keep-alive" if keep_alive else "close",
        **response.headers,
    }
    head = f"HTTP/1.1 {response.status} {reason}\r\n" + "".join(
        f"{name}: {value}\r\n" for name, value in headers.items()
    )
    return head.encode("latin-1") + b"\r\n" + response.body


# ---------------------------------------------------------------- websockets


def websocket_accept(key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client's handshake key."""
    digest = hashlib.sha1((key + _WS_GUID).encode("latin-1")).digest()
    return base64.b64encode(digest).decode("latin-1")


def websocket_handshake_response(request: HttpRequest) -> bytes:
    """The raw 101 response completing a WebSocket upgrade."""
    key = request.header("sec-websocket-key")
    if not key:
        raise ProtocolViolation("WebSocket upgrade without Sec-WebSocket-Key")
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {websocket_accept(key)}\r\n"
        "\r\n"
    ).encode("latin-1")


def build_frame(opcode: int, payload: bytes, *, mask: bool = False) -> bytes:
    """One final (FIN=1) WebSocket frame; clients must set ``mask=True``."""
    header = bytearray([0x80 | (opcode & 0x0F)])
    length = len(payload)
    mask_bit = 0x80 if mask else 0
    if length < 126:
        header.append(mask_bit | length)
    elif length < 65536:
        header.append(mask_bit | 126)
        header += struct.pack(">H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack(">Q", length)
    if mask:
        key = os.urandom(4)
        header += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(header) + payload


def parse_frame(read_exact: Callable[[int], bytes]) -> tuple[int, bytes]:
    """Parse one frame via a blocking ``read_exact(n)``; returns (opcode, payload).

    Shared by the async server loop (wrapped over ``readexactly``) and the
    synchronous test/bench client.  Unmasks masked payloads; rejects
    fragmented messages and oversized payloads instead of buffering them.
    """
    first, second = read_exact(2)
    if not first & 0x80:
        raise ProtocolViolation("fragmented WebSocket messages are not supported")
    opcode = first & 0x0F
    masked = bool(second & 0x80)
    length = second & 0x7F
    if length == 126:
        (length,) = struct.unpack(">H", read_exact(2))
    elif length == 127:
        (length,) = struct.unpack(">Q", read_exact(8))
    if length > MAX_WS_PAYLOAD:
        raise ProtocolViolation(f"WebSocket payload of {length} bytes refused")
    key = read_exact(4) if masked else b""
    payload = read_exact(length) if length else b""
    if masked:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload


async def read_ws_frame(reader: asyncio.StreamReader) -> tuple[int, bytes]:
    """Async variant of :func:`parse_frame` over a stream reader."""

    async def read_exact(n: int) -> bytes:
        try:
            return await reader.readexactly(n)
        except asyncio.IncompleteReadError:
            raise ProtocolViolation("connection closed mid WebSocket frame")

    first, second = await read_exact(2)
    if not first & 0x80:
        raise ProtocolViolation("fragmented WebSocket messages are not supported")
    opcode = first & 0x0F
    masked = bool(second & 0x80)
    length = second & 0x7F
    if length == 126:
        (length,) = struct.unpack(">H", await read_exact(2))
    elif length == 127:
        (length,) = struct.unpack(">Q", await read_exact(8))
    if length > MAX_WS_PAYLOAD:
        raise ProtocolViolation(f"WebSocket payload of {length} bytes refused")
    key = await read_exact(4) if masked else b""
    payload = await read_exact(length) if length else b""
    if masked:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload
