"""Tenants: named scenario networks kept warm behind the serving front-end.

A :class:`Tenant` wraps one :class:`~repro.api.session.Session` — by default
re-targeted onto a warm engine (:class:`~repro.sharding.pool.PooledEngine`
or the pooled socket engine), so worker processes persist between requests
and insert-only updates take the delta-driven path of ``docs/incremental.md``.
A :class:`TenantManager` owns the fleet: lifecycle (``available`` → ``loading``
→ ``ready`` → ``closed``), the per-tenant serialized update queue with its
bounded depth, the global worker-budget semaphore, and the per-tenant event
bus the WebSocket channel drains.

Admission control contract (documented in ``docs/serving.md``):

* updates to one tenant are strictly serialized through a bounded queue —
  a full queue rejects with a typed 429, never blocks the caller;
* read-only queries run concurrently with each other and are excluded from
  running updates by a per-tenant read/write lock, so a query always sees a
  converged database, never a half-merged one;
* at most ``max_workers`` engine runs execute at once across all tenants
  (the worker-budget semaphore); queries borrow budget with a short timeout
  and reject 503 rather than queueing unboundedly.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.api.session import Session
from repro.api.spec import ScenarioSpec
from repro.coordination.rule import CoordinationRule, NodeId, rule_from_text
from repro.database.relation import Row
from repro.errors import NetworkError, PartitionError, ReproError
from repro.faults.recovery import RetryPolicy, retry_after_hint, retry_call
from repro.obs.logs import get_logger

log = get_logger("serve")

#: Tenant lifecycle states (the state machine in docs/serving.md).
AVAILABLE = "available"
LOADING = "loading"
READY = "ready"
CLOSED = "closed"


class AdmissionError(ReproError):
    """A request was rejected by admission control, with an HTTP mapping."""

    def __init__(
        self, status: int, code: str, message: str, *, retry_after: float = 1.0
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.retry_after = retry_after


class _ReadWriteLock:
    """A writer-preferring read/write lock over one tenant's databases.

    Updates (writers) are already serialized by the tenant queue, so at most
    one writer ever waits; a waiting writer blocks *new* readers, keeping
    query traffic from starving updates indefinitely.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._condition:
            while self._writer or self._writers_waiting:
                self._condition.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._condition:
            self._readers -= 1
            if not self._readers:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._condition:
            self._writer = False
            self._condition.notify_all()


# ------------------------------------------------------------------- changes


@dataclass(frozen=True)
class TenantChanges:
    """One update request's parsed change set (the wire ChangeSet JSON).

    ``inserts``/``removes`` map node → relation → rows; ``add_rules`` are
    parsed coordination rules and ``remove_rules`` rule ids.  Insert-only
    changes keep a warm tenant on the delta-driven evaluation path; any
    removal or rule edit sends the next run down the naive full re-pull —
    exactly the :attr:`~repro.coordination.changeset.ChangeSet.incremental_ok`
    gate, applied at the serving seam.
    """

    inserts: Mapping[NodeId, Mapping[str, tuple[Row, ...]]] = field(
        default_factory=dict
    )
    removes: Mapping[NodeId, Mapping[str, tuple[Row, ...]]] = field(
        default_factory=dict
    )
    add_rules: tuple[CoordinationRule, ...] = ()
    remove_rules: tuple[str, ...] = ()

    @property
    def empty(self) -> bool:
        return not (
            self.inserts or self.removes or self.add_rules or self.remove_rules
        )

    @property
    def insert_only(self) -> bool:
        return not (self.removes or self.add_rules or self.remove_rules)

    @property
    def inserted_rows(self) -> int:
        return sum(
            len(rows)
            for relations in self.inserts.values()
            for rows in relations.values()
        )


def _parse_rows(document: object, *, what: str) -> dict[NodeId, dict[str, tuple]]:
    if not isinstance(document, Mapping):
        raise ReproError(f"{what} must be an object of node -> relation -> rows")
    parsed: dict[NodeId, dict[str, tuple]] = {}
    for node_id, relations in document.items():
        if not isinstance(relations, Mapping):
            raise ReproError(
                f"{what}[{node_id!r}] must be an object of relation -> rows"
            )
        per_node: dict[str, tuple] = {}
        for relation_name, rows in relations.items():
            if not isinstance(rows, (list, tuple)):
                raise ReproError(
                    f"{what}[{node_id!r}][{relation_name!r}] must be a list of rows"
                )
            coerced = []
            for row in rows:
                if not isinstance(row, (list, tuple)):
                    raise ReproError(
                        f"{what}[{node_id!r}][{relation_name!r}] rows must be "
                        f"arrays, got {row!r}"
                    )
                coerced.append(tuple(row))
            per_node[str(relation_name)] = tuple(coerced)
        parsed[str(node_id)] = per_node
    return parsed


def parse_changes(document: object) -> TenantChanges:
    """Parse an update request body into a :class:`TenantChanges`.

    Unknown fields are rejected (the same strictness as the fault-plan and
    scenario loaders): a typo like ``"insert"`` silently doing nothing would
    be the worst failure mode for a write API.
    """
    if not isinstance(document, Mapping):
        raise ReproError("update body must be a JSON object")
    known = {"inserts", "removes", "add_rules", "remove_rules"}
    unknown = set(document) - known
    if unknown:
        raise ReproError(
            f"unknown update field(s) {sorted(unknown)}; expected {sorted(known)}"
        )
    add_rules = []
    for rule_text in document.get("add_rules", ()):
        if not isinstance(rule_text, str):
            raise ReproError(f"add_rules entries must be strings, got {rule_text!r}")
        rule_id, separator, remainder = rule_text.partition(":")
        if not separator or not remainder.strip():
            raise ReproError(
                f"cannot parse rule {rule_text!r}; expected "
                "'rule_id: body -> target: head'"
            )
        add_rules.append(rule_from_text(rule_id.strip(), remainder.strip()))
    remove_rules = tuple(
        str(rule_id) for rule_id in document.get("remove_rules", ())
    )
    return TenantChanges(
        inserts=_parse_rows(document.get("inserts", {}), what="inserts"),
        removes=_parse_rows(document.get("removes", {}), what="removes"),
        add_rules=tuple(add_rules),
        remove_rules=remove_rules,
    )


def warm_spec(spec: ScenarioSpec) -> ScenarioSpec:
    """Re-target a spec onto a warm (persistent-worker) transport.

    Served tenants answer many requests over one network, so the cold
    engines make no sense behind the front-end: ``sync``/``async``/``sharded``
    become the pooled multiproc engine, ``multiproc`` gains ``pool=True``,
    and ``socket`` keeps its fleet but pools the connections and workers.
    Specs already warm pass through unchanged.
    """
    transport = spec.transport
    if transport == "socket":
        return spec if spec.pool else spec.with_(pool=True)
    if transport == "pooled":
        return spec
    if transport == "multiproc":
        return spec.with_(transport="pooled")
    shards = spec.shards if spec.shards else min(2, max(1, spec.node_count))
    return spec.with_(transport="pooled", shards=shards)


# -------------------------------------------------------------------- tenant


@dataclass
class UpdateOutcome:
    """What one serialized update run did (the update response body)."""

    mode: str
    result_extras: dict[str, Any]
    completion_time: float
    wall_seconds: float
    tuples_added: int
    messages: int
    incremental: dict[str, int]
    spans: list[dict]


class Tenant:
    """One named, warm scenario network plus its serving bookkeeping."""

    def __init__(
        self,
        name: str,
        spec: ScenarioSpec,
        *,
        queue_depth: int,
        source: str = "inline",
    ):
        self.name = name
        self.spec = spec
        self.source = source
        self.state = LOADING
        self.session: Session | None = None
        self.created_at = time.time()
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_depth)
        self.worker: asyncio.Task | None = None
        self.subscribers: set[asyncio.Queue] = set()
        self.lock = _ReadWriteLock()
        self.runs_completed = 0
        self.updates_accepted = 0
        self.updates_rejected = 0
        self.updates_failed = 0
        self.queries_answered = 0
        self.last_error: str | None = None
        #: Test seam: called in the worker thread before each update run, so
        #: the admission-control suite can hold the queue at a known depth.
        self._pre_run_hook: Callable[[], None] | None = None

    # ------------------------------------------------------------- inspection

    @property
    def queue_depth(self) -> int:
        return self.queue.qsize()

    def describe(self) -> dict[str, Any]:
        """The status document of ``GET /tenants/{name}``."""
        document: dict[str, Any] = {
            "name": self.name,
            "state": self.state,
            "source": self.source,
            "queue_depth": self.queue_depth,
            "runs_completed": self.runs_completed,
            "updates_accepted": self.updates_accepted,
            "updates_rejected": self.updates_rejected,
            "updates_failed": self.updates_failed,
            "queries_answered": self.queries_answered,
        }
        if self.session is not None:
            system = self.session.system
            document.update(
                engine=self.session.engine.name,
                nodes=len(system.nodes),
                rules=len(list(system.registry)),
                total_rows=sum(
                    node.database.total_rows() for node in system.nodes.values()
                ),
                super_peer=system.super_peer,
            )
        if self.last_error:
            document["last_error"] = self.last_error
        return document

    def validate_changes(self, changes: TenantChanges) -> None:
        """Reject changes that cannot apply, before they are queued.

        Arity/schema violations surface as a synchronous 400 at admission
        time instead of failing deep inside the serialized worker — an
        update that *enters* the queue is expected to run.
        """
        session = self.session
        if session is None:
            raise AdmissionError(503, "not_ready", f"tenant {self.name} not ready")
        schemas = session.schemas()
        for what, per_node in (
            ("inserts", changes.inserts),
            ("removes", changes.removes),
        ):
            for node_id, relations in per_node.items():
                schema = schemas.get(node_id)
                if schema is None:
                    raise ReproError(
                        f"{what} reference unknown node {node_id!r}"
                    )
                for relation_name, rows in relations.items():
                    if relation_name not in schema:
                        raise ReproError(
                            f"{what} reference unknown relation "
                            f"{relation_name!r} at node {node_id!r}"
                        )
                    arity = len(schema.get(relation_name).attributes)
                    for row in rows:
                        if len(row) != arity:
                            raise ReproError(
                                f"{what}[{node_id!r}][{relation_name!r}] row "
                                f"{row!r} has arity {len(row)}, schema wants "
                                f"{arity}"
                            )

    # ------------------------------------------------- blocking work (threads)

    def open_session(self) -> None:
        """Build the session and converge the network (worker thread)."""
        session = Session.from_spec(self.spec, trace=True)
        try:
            # One cold run brings every relation to its fix-point and leaves
            # the pool's mirror primed, so the next insert-only update can
            # take the delta path.
            session.run("update")
            if session.tracer is not None:
                session.tracer.drain()
        except BaseException:
            session.close()
            raise
        self.session = session

    def run_update(
        self, changes: TenantChanges, retry_policy: RetryPolicy
    ) -> UpdateOutcome:
        """Apply ``changes`` and drive the network back to its fix-point.

        Runs in a worker thread under the tenant's *write* lock.  Transient
        :class:`NetworkError`\\ s retry per ``retry_policy`` on top of
        whatever cold-re-run budget the engine itself holds; the typed
        final failure propagates to the handler (a
        :class:`~repro.errors.PartitionError` becomes 503 + Retry-After).
        """
        if self._pre_run_hook is not None:
            self._pre_run_hook()
        session = self.session
        if session is None:
            raise AdmissionError(503, "not_ready", f"tenant {self.name} not ready")
        self.lock.acquire_write()
        try:
            system = session.system
            for node_id, relations in changes.inserts.items():
                database = system.node(node_id).database
                for relation_name, rows in relations.items():
                    database.insert_many(relation_name, rows)
            for node_id, relations in changes.removes.items():
                database = system.node(node_id).database
                for relation_name, rows in relations.items():
                    for row in rows:
                        database.delete(relation_name, row)
            for rule in changes.add_rules:
                system.add_rule(rule)
            for rule_id in changes.remove_rules:
                system.remove_rule(rule_id)

            before = system.stats.incremental_totals()
            result = retry_call(
                lambda: session.run("update"),
                policy=retry_policy,
                retryable=(NetworkError,),
            )
            after = system.stats.incremental_totals()
            incremental = {
                name: int(after[name] - before.get(name, 0)) for name in after
            }
            seeded = incremental.get("repro_incremental_seed_rows_total", 0)
            mode = "incremental" if changes.insert_only and seeded else "naive"
            spans = []
            if session.tracer is not None:
                spans = [
                    {
                        "name": record["name"],
                        "process": record.get("process", "coordinator"),
                        "start": record["start"],
                        "end": record["end"],
                    }
                    for record in session.tracer.drain()
                ]
            self.runs_completed += 1
            return UpdateOutcome(
                mode=mode,
                result_extras={},
                completion_time=result.completion_time,
                wall_seconds=result.wall_seconds,
                tuples_added=result.tuples_added,
                messages=result.stats.total_messages,
                incremental=incremental,
                spans=spans,
            )
        finally:
            self.lock.release_write()

    def answer_query(self, node_id: NodeId, query_text: str) -> list[list]:
        """Answer one read-only query (worker thread, shared read lock)."""
        session = self.session
        if session is None:
            raise AdmissionError(503, "not_ready", f"tenant {self.name} not ready")
        self.lock.acquire_read()
        try:
            answers = session.query(node_id, query_text)
        finally:
            self.lock.release_read()
        self.queries_answered += 1
        return sorted([list(row) for row in answers])

    def close_session(self) -> None:
        """Stop the warm pool (worker thread; idempotent)."""
        if self.session is not None:
            self.session.close()


# ------------------------------------------------------------------- manager


class TenantManager:
    """The tenant fleet: lifecycle, queues, budget, and the event bus."""

    def __init__(
        self,
        *,
        tenants_dir: Path | None = None,
        queue_depth: int = 16,
        max_workers: int = 4,
        warm: bool = True,
        retry_policy: RetryPolicy | None = None,
        query_budget_timeout: float = 5.0,
    ):
        self.tenants_dir = Path(tenants_dir) if tenants_dir is not None else None
        self.queue_depth = queue_depth
        self.max_workers = max_workers
        self.warm = warm
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy(attempts=2)
        )
        self.query_budget_timeout = query_budget_timeout
        self.tenants: dict[str, Tenant] = {}
        self.draining = False
        self._budget = asyncio.Semaphore(max_workers)
        # Engine runs + queries + lifecycle work all execute here; a couple
        # of spare threads beyond the run budget keep queries moving while
        # every budget slot is busy.
        self.executor = ThreadPoolExecutor(
            max_workers=max_workers + 4, thread_name_prefix="repro-serve"
        )

    # ------------------------------------------------------------- directory

    def available_specs(self) -> dict[str, Path]:
        """``name -> path`` for every loadable spec in the tenants dir."""
        if self.tenants_dir is None or not self.tenants_dir.is_dir():
            return {}
        return {
            path.stem: path for path in sorted(self.tenants_dir.glob("*.json"))
        }

    def listing(self) -> list[dict[str, Any]]:
        """The ``GET /tenants`` document: loaded tenants + loadable specs."""
        rows = [tenant.describe() for tenant in self.tenants.values()]
        loaded = set(self.tenants)
        for name in sorted(set(self.available_specs()) - loaded):
            rows.append({"name": name, "state": AVAILABLE, "source": "dir"})
        return sorted(rows, key=lambda row: row["name"])

    def get(self, name: str) -> Tenant:
        tenant = self.tenants.get(name)
        if tenant is None:
            raise AdmissionError(404, "unknown_tenant", f"no tenant {name!r}")
        return tenant

    # -------------------------------------------------------------- lifecycle

    async def create(
        self, name: str, spec: ScenarioSpec, *, warm: bool | None = None
    ) -> Tenant:
        """Boot a tenant from an inline spec (``POST /tenants``)."""
        return await self._boot(name, spec, warm=warm, source="inline")

    async def load(self, name: str, *, warm: bool | None = None) -> Tenant:
        """Boot a tenant from the tenants dir (``POST /tenants/{name}/load``)."""
        path = self.available_specs().get(name)
        if path is None:
            raise AdmissionError(
                404, "unknown_tenant", f"no spec {name}.json in the tenants dir"
            )
        spec = ScenarioSpec.load_json(path)
        return await self._boot(name, spec, warm=warm, source=str(path))

    async def _boot(
        self, name: str, spec: ScenarioSpec, *, warm: bool | None, source: str
    ) -> Tenant:
        if self.draining:
            raise AdmissionError(503, "draining", "server is shutting down")
        if not name or "/" in name:
            raise AdmissionError(400, "bad_name", f"invalid tenant name {name!r}")
        if name in self.tenants:
            raise AdmissionError(
                409, "tenant_exists", f"tenant {name!r} is already loaded"
            )
        use_warm = self.warm if warm is None else warm
        if use_warm:
            spec = warm_spec(spec)
        tenant = Tenant(name, spec, queue_depth=self.queue_depth, source=source)
        self.tenants[name] = tenant
        loop = asyncio.get_running_loop()
        try:
            async with self._borrow_budget():
                await loop.run_in_executor(self.executor, tenant.open_session)
        except BaseException as error:
            self.tenants.pop(name, None)
            tenant.state = CLOSED
            if isinstance(error, ReproError):
                raise AdmissionError(400, "bad_spec", str(error))
            raise
        tenant.state = READY
        tenant.worker = loop.create_task(self._tenant_worker(tenant))
        self.publish(tenant, {"type": "lifecycle", "event": "ready"})
        log.info("tenant %s ready (%d nodes)", name, len(tenant.spec.schemas))
        return tenant

    async def close(self, name: str) -> dict[str, Any]:
        """Close a tenant: drain its queue, stop its pool, drop it."""
        tenant = self.get(name)
        tenant.state = CLOSED
        if tenant.worker is not None:
            tenant.worker.cancel()
            try:
                await tenant.worker
            except asyncio.CancelledError:
                pass
        while not tenant.queue.empty():
            _changes, future = tenant.queue.get_nowait()
            if not future.done():
                future.set_exception(
                    AdmissionError(503, "tenant_closed", f"tenant {name} closed")
                )
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self.executor, tenant.close_session)
        self.publish(tenant, {"type": "lifecycle", "event": "closed"})
        self.tenants.pop(name, None)
        log.info("tenant %s closed", name)
        return {"name": name, "state": CLOSED}

    async def shutdown(self) -> None:
        """Close every tenant and refuse new work (server shutdown path)."""
        self.draining = True
        for name in list(self.tenants):
            await self.close(name)
        self.executor.shutdown(wait=False)

    # ----------------------------------------------------- updates and queries

    def submit_update(self, name: str, changes: TenantChanges) -> asyncio.Future:
        """Enqueue one update; returns the future its outcome resolves.

        Raises a typed 429 :class:`AdmissionError` when the tenant's bounded
        queue is full — the caller gets the rejection immediately instead of
        a hang, which is the admission-control contract the overload test
        pins down.
        """
        if self.draining:
            raise AdmissionError(503, "draining", "server is shutting down")
        tenant = self.get(name)
        if tenant.state != READY:
            raise AdmissionError(
                503, "not_ready", f"tenant {name} is {tenant.state}"
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        try:
            tenant.queue.put_nowait((changes, future))
        except asyncio.QueueFull:
            tenant.updates_rejected += 1
            raise AdmissionError(
                429,
                "queue_full",
                f"tenant {name} update queue is at its bound "
                f"({tenant.queue.maxsize}); retry later",
                retry_after=retry_after_hint(self.retry_policy),
            )
        tenant.updates_accepted += 1
        return future

    async def run_query(self, name: str, node_id: str, query_text: str) -> list:
        """Run one read-only query under the worker budget."""
        tenant = self.get(name)
        if tenant.state != READY:
            raise AdmissionError(
                503, "not_ready", f"tenant {name} is {tenant.state}"
            )
        try:
            await asyncio.wait_for(
                self._budget.acquire(), timeout=self.query_budget_timeout
            )
        except asyncio.TimeoutError:
            raise AdmissionError(
                503,
                "busy",
                "worker budget exhausted; retry later",
                retry_after=retry_after_hint(self.retry_policy),
            )
        try:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                self.executor, tenant.answer_query, node_id, query_text
            )
        finally:
            self._budget.release()

    async def _tenant_worker(self, tenant: Tenant) -> None:
        """The per-tenant serializer: pop, run under budget, resolve, publish."""
        loop = asyncio.get_running_loop()
        while True:
            changes, future = await tenant.queue.get()
            if future.cancelled():
                continue
            try:
                async with self._borrow_budget():
                    outcome = await loop.run_in_executor(
                        self.executor,
                        tenant.run_update,
                        changes,
                        self.retry_policy,
                    )
            except BaseException as error:
                if isinstance(error, asyncio.CancelledError):
                    if not future.done():
                        future.set_exception(
                            AdmissionError(
                                503, "tenant_closed", f"tenant {tenant.name} closed"
                            )
                        )
                    raise
                tenant.updates_failed += 1
                tenant.last_error = f"{type(error).__name__}: {error}"
                self.publish(
                    tenant,
                    {
                        "type": "run",
                        "phase": "update",
                        "outcome": "error",
                        "error": tenant.last_error,
                    },
                )
                if not future.done():
                    future.set_exception(error)
            else:
                self.publish(
                    tenant,
                    {
                        "type": "run",
                        "phase": "update",
                        "outcome": "ok",
                        "mode": outcome.mode,
                        "completion_time": outcome.completion_time,
                        "wall_seconds": outcome.wall_seconds,
                        "tuples_added": outcome.tuples_added,
                        "messages": outcome.messages,
                        "spans": outcome.spans,
                    },
                )
                if not future.done():
                    future.set_result(outcome)

    def _borrow_budget(self) -> "_BudgetSlot":
        return _BudgetSlot(self._budget)

    # -------------------------------------------------------------- event bus

    def subscribe(self, name: str) -> asyncio.Queue:
        """A bounded event queue for one WebSocket subscriber."""
        tenant = self.get(name)
        queue: asyncio.Queue = asyncio.Queue(maxsize=256)
        tenant.subscribers.add(queue)
        return queue

    def unsubscribe(self, name: str, queue: asyncio.Queue) -> None:
        tenant = self.tenants.get(name)
        if tenant is not None:
            tenant.subscribers.discard(queue)

    def publish(self, tenant: Tenant, event: dict[str, Any]) -> None:
        """Fan one event out to the tenant's subscribers (never blocks).

        A subscriber that stopped draining its queue loses events rather
        than stalling the run loop — the channel is telemetry, not a log.
        """
        document = {"tenant": tenant.name, "time": time.time(), **event}
        for queue in list(tenant.subscribers):
            try:
                queue.put_nowait(document)
            except asyncio.QueueFull:
                pass


class _BudgetSlot:
    """``async with`` wrapper for the worker-budget semaphore."""

    def __init__(self, semaphore: asyncio.Semaphore):
        self._semaphore = semaphore

    async def __aenter__(self) -> None:
        await self._semaphore.acquire()

    async def __aexit__(self, *exc_info: object) -> None:
        self._semaphore.release()
