"""The multi-tenant serving front-end over warm pools.

``python -m repro.serve --bind 127.0.0.1:8750 --tenants scenarios/`` turns
the library into a long-running service: each *tenant* is one named
:class:`~repro.api.spec.ScenarioSpec` network kept warm behind a pooled
engine, updated through ``POST /tenants/{name}/update`` (insert-only change
sets ride the incremental evaluation path), queried concurrently through
``/tenants/{name}/query``, observed via ``/metrics`` (Prometheus, one
``tenant`` label per fleet member) and a per-tenant WebSocket event channel.
The full endpoint reference, the admission-control contract and a curl
walkthrough live in ``docs/serving.md``.

The package splits along the same seams as the rest of the codebase:
:mod:`~repro.serve.protocol` (the stdlib HTTP/WS wire layer),
:mod:`~repro.serve.tenants` (lifecycle, queues, budget — transport-free),
:mod:`~repro.serve.app` (routing and error mapping),
:mod:`~repro.serve.server` (the asyncio loop and the in-process
:class:`ServerHandle`), and :mod:`~repro.serve.client` (the synchronous
client the tests and the closed-loop benchmark drive).
"""

from repro.serve.app import ServeApp, ServerConfig
from repro.serve.client import EventStream, ServeClient, ServeError
from repro.serve.protocol import HttpRequest, HttpResponse, ProtocolViolation
from repro.serve.server import ServerHandle, parse_bind, serve_forever
from repro.serve.tenants import (
    AdmissionError,
    Tenant,
    TenantChanges,
    TenantManager,
    parse_changes,
    warm_spec,
)

__all__ = [
    "AdmissionError",
    "EventStream",
    "HttpRequest",
    "HttpResponse",
    "ProtocolViolation",
    "ServeApp",
    "ServeClient",
    "ServeError",
    "ServerConfig",
    "ServerHandle",
    "Tenant",
    "TenantChanges",
    "TenantManager",
    "parse_bind",
    "parse_changes",
    "serve_forever",
    "warm_spec",
]
