"""``python -m repro.serve`` — boot the multi-tenant serving front-end."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.serve.app import ServerConfig
from repro.serve.server import parse_bind, preload_names, serve_forever


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description=(
            "Serve many warm scenario networks over HTTP/WebSocket "
            "(see docs/serving.md)."
        ),
    )
    parser.add_argument(
        "--bind",
        default="127.0.0.1:8750",
        help="HOST:PORT to listen on (port 0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--tenants",
        type=Path,
        default=None,
        metavar="DIR",
        help="directory of <name>.json ScenarioSpec files loadable as tenants",
    )
    parser.add_argument(
        "--preload",
        action="append",
        default=[],
        metavar="NAME[,NAME...]",
        help="tenant spec(s) to load at boot ('all' loads every spec)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        help="bound of each tenant's serialized update queue (429 beyond it)",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=4,
        help="global budget of concurrently executing engine runs",
    )
    parser.add_argument(
        "--cold",
        action="store_true",
        help="serve specs on their declared transports instead of warm pools",
    )
    parser.add_argument(
        "--retry-attempts",
        type=int,
        default=2,
        help="transient-failure retries per update run before a typed 503",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    options = build_parser().parse_args(argv)
    try:
        host, port = parse_bind(options.bind)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if options.preload and options.tenants is None:
        print("error: --preload needs --tenants DIR", file=sys.stderr)
        return 2
    config = ServerConfig(
        host=host,
        port=port,
        tenants_dir=options.tenants,
        queue_depth=options.queue_depth,
        max_workers=options.max_workers,
        warm=not options.cold,
        retry_attempts=options.retry_attempts,
        preload=preload_names(options.preload),
    )
    serve_forever(config)
    return 0


if __name__ == "__main__":
    sys.exit(main())
