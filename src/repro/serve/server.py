"""The asyncio server: connections, keep-alive, and the WebSocket channel.

:func:`serve_forever` is what ``python -m repro.serve`` runs; tests,
benchmarks and examples use :class:`ServerHandle` instead, which boots the
same server on an ephemeral localhost port inside a background thread and
tears it down deterministically.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Iterable

from repro.obs.logs import get_logger
from repro.serve.app import ServeApp, ServerConfig
from repro.serve.protocol import (
    WS_CLOSE,
    WS_PING,
    WS_PONG,
    WS_TEXT,
    HttpRequest,
    HttpResponse,
    ProtocolViolation,
    build_frame,
    read_request,
    read_ws_frame,
    render_response,
    websocket_handshake_response,
)

log = get_logger("serve")

#: How often the event channel pings an idle subscriber (liveness probe).
_WS_IDLE_PING_SECONDS = 15.0


async def handle_connection(
    app: ServeApp, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    """Serve one client connection: requests until close, or one WS session."""
    try:
        while True:
            try:
                request = await read_request(reader)
            except ProtocolViolation as error:
                writer.write(
                    render_response(
                        HttpResponse.error(400, "protocol_error", str(error)),
                        keep_alive=False,
                    )
                )
                await writer.drain()
                return
            if request is None:
                return
            if request.wants_websocket:
                await serve_websocket(app, request, reader, writer)
                return
            response = await app.handle(request)
            keep_alive = request.header("connection", "keep-alive").lower() != "close"
            writer.write(render_response(response, keep_alive=keep_alive))
            await writer.drain()
            if not keep_alive:
                return
    except (ConnectionError, asyncio.CancelledError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def serve_websocket(
    app: ServeApp,
    request: HttpRequest,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """The event channel: ``GET /tenants/{name}/events`` upgraded to WS.

    Streams the tenant's run-phase and lifecycle events (JSON text frames)
    as the manager publishes them; answers pings; closes cleanly on a close
    frame, the tenant disappearing, or the subscriber's queue being dropped.
    """
    segments = request.segments
    if len(segments) != 3 or segments[0] != "tenants" or segments[2] != "events":
        writer.write(
            render_response(
                HttpResponse.error(
                    404, "unknown_route", f"no WebSocket route at {request.path}"
                ),
                keep_alive=False,
            )
        )
        await writer.drain()
        return
    name = segments[1]
    try:
        queue = app.manager.subscribe(name)
    except Exception as error:  # noqa: BLE001 - admission errors become 404s
        writer.write(
            render_response(
                HttpResponse.error(404, "unknown_tenant", str(error)),
                keep_alive=False,
            )
        )
        await writer.drain()
        return
    writer.write(websocket_handshake_response(request))
    await writer.drain()
    app.registry.counter(
        "repro_serve_ws_connections_total", {"tenant": name}
    ).inc()

    hello = {"type": "hello", "tenant": name, "events": "run, lifecycle"}
    writer.write(build_frame(WS_TEXT, json.dumps(hello).encode("utf-8")))
    await writer.drain()

    async def pump_events() -> None:
        while True:
            try:
                event = await asyncio.wait_for(
                    queue.get(), timeout=_WS_IDLE_PING_SECONDS
                )
            except asyncio.TimeoutError:
                writer.write(build_frame(WS_PING, b"alive?"))
                await writer.drain()
                continue
            writer.write(
                build_frame(WS_TEXT, json.dumps(event, default=str).encode("utf-8"))
            )
            await writer.drain()
            if event.get("type") == "lifecycle" and event.get("event") == "closed":
                writer.write(build_frame(WS_CLOSE, b"\x03\xe8tenant closed"))
                await writer.drain()
                return

    async def pump_frames() -> None:
        while True:
            opcode, payload = await read_ws_frame(reader)
            if opcode == WS_CLOSE:
                writer.write(build_frame(WS_CLOSE, payload[:2]))
                await writer.drain()
                return
            if opcode == WS_PING:
                writer.write(build_frame(WS_PONG, payload))
                await writer.drain()
            # Text frames from the subscriber are ignored: the channel is
            # one-way telemetry, not an RPC surface.

    tasks = [
        asyncio.ensure_future(pump_events()),
        asyncio.ensure_future(pump_frames()),
    ]
    try:
        done, pending = await asyncio.wait(
            tasks, return_when=asyncio.FIRST_COMPLETED
        )
        for task in pending:
            task.cancel()
        for task in done:
            # Surface protocol violations; swallow clean EOFs from the peer.
            error = task.exception()
            if error is not None and not isinstance(
                error, (ProtocolViolation, ConnectionError)
            ):
                raise error
    finally:
        for task in tasks:
            task.cancel()
        app.manager.unsubscribe(name, queue)


async def run_server(
    app: ServeApp,
    *,
    ready: "threading.Event | None" = None,
    bound: list | None = None,
    stop: asyncio.Event | None = None,
) -> None:
    """Bind, preload, and serve until ``stop`` (or forever)."""
    await app.startup()
    connections: set[asyncio.Task] = set()

    async def serve_client(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            connections.add(task)
        try:
            await handle_connection(app, reader, writer)
        finally:
            if task is not None:
                connections.discard(task)

    server = await asyncio.start_server(
        serve_client, app.config.host, app.config.port
    )
    addresses = ", ".join(
        f"{sock.getsockname()[0]}:{sock.getsockname()[1]}"
        for sock in server.sockets
    )
    if bound is not None:
        bound.append(server.sockets[0].getsockname()[:2])
    log.info("serving on %s (%d tenants loaded)", addresses, len(app.manager.tenants))
    if ready is not None:
        ready.set()
    try:
        async with server:
            if stop is None:
                await server.serve_forever()
            else:
                await stop.wait()
    finally:
        # Idle keep-alive connections are parked in read_request; cancel
        # them so nothing outlives the loop, then drain the tenants.
        for task in list(connections):
            task.cancel()
        if connections:
            await asyncio.gather(*connections, return_exceptions=True)
        await app.shutdown()


def serve_forever(config: ServerConfig) -> None:
    """Blocking entry point of ``python -m repro.serve``."""
    app = ServeApp(config)
    try:
        asyncio.run(run_server(app))
    except KeyboardInterrupt:
        log.info("interrupted; draining tenants")


class ServerHandle:
    """An in-process server on an ephemeral port, for tests and benchmarks.

    ::

        with ServerHandle(ServerConfig(port=0)) as handle:
            client = ServeClient(handle.host, handle.port)
            ...

    The event loop runs in a daemon thread; ``close()`` (or the context
    manager exit) stops the listener, drains every tenant, and joins the
    thread, so pooled workers never outlive the test that started them.
    """

    def __init__(self, config: ServerConfig | None = None):
        self.config = config if config is not None else ServerConfig(port=0)
        self.app = ServeApp(self.config)
        self._ready = threading.Event()
        self._bound: list = []
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._failure: list[BaseException] = []
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=60):
            failure = self._failure[0] if self._failure else None
            raise RuntimeError(f"server failed to boot: {failure!r}")
        if self._failure:
            raise self._failure[0]

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self._stop = asyncio.Event()
        try:
            loop.run_until_complete(
                run_server(
                    self.app, ready=self._ready, bound=self._bound, stop=self._stop
                )
            )
        except BaseException as error:  # noqa: BLE001 - reported to the booter
            self._failure.append(error)
            self._ready.set()
        finally:
            loop.close()

    @property
    def host(self) -> str:
        return self._bound[0][0]

    @property
    def port(self) -> int:
        return self._bound[0][1]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def close(self) -> None:
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(stop.set)
        self._thread.join(timeout=60)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def parse_bind(value: str) -> tuple[str, int]:
    """Parse ``HOST:PORT`` (the CLI's ``--bind``); port 0 means ephemeral."""
    host, separator, port_text = value.rpartition(":")
    if not separator or not host:
        raise ValueError(f"--bind wants HOST:PORT, got {value!r}")
    return host, int(port_text)


def preload_names(values: Iterable[str]) -> tuple[str, ...]:
    """Normalise repeated/comma-separated ``--preload`` values."""
    names: list[str] = []
    for value in values:
        names.extend(part.strip() for part in value.split(",") if part.strip())
    return tuple(names)
