"""Structured spans: one run trace across coordinator and worker processes.

A :class:`Tracer` records *spans* — named intervals with a trace id, a span
id, a parent, wall-aligned start/end times and free-form attributes — around
the run phases of every engine: shard planning, world shipping, chase
iterations, delta sync, quiescence-barrier rounds, merge.  Spans are measured
with ``time.perf_counter`` (monotonic) and converted to an epoch-anchored
wall timeline on export, so spans from different processes line up on one
axis.

Cross-process story: every worker process creates its own tracer (same trace
id, its own ``process`` label), records spans locally, and ships the drained
records home inside its ordinary result payload — over the existing mp.Queue
or length-prefixed-frame channel, no new wire format.  The coordinator's
tracer :meth:`Tracer.adopt`\\ s them, re-parenting top-level worker spans
under the currently open run span and correcting clock offset when the
shipped wall clock disagrees with the local one by more than
:data:`CLOCK_SKEW_THRESHOLD` (same-host processes share ``time.time`` and
must *not* be shifted by queue latency; a remote host minutes off must be).

Tracing off is the default and costs nothing: engines fetch their tracer via
:func:`tracer_of`, which returns the no-op :data:`NULL_TRACER` unless a
:class:`~repro.api.session.Session` opened with ``trace=True`` attached a
real one to the system — results stay bit-identical either way, because the
trace only ever lands in ``RunResult.extras``.
"""

from __future__ import annotations

import time
import uuid
from typing import Any, Iterator, Mapping

from repro.obs.metrics import ChaseProfile, MetricsRegistry

#: Wall-clock disagreement (seconds) below which two processes are assumed to
#: share one clock.  Queue/frame transit on one host is milliseconds; real
#: cross-machine skew worth correcting is seconds to minutes.
CLOCK_SKEW_THRESHOLD = 1.0

#: One exported span record (a plain dict so it pickles and JSON-serialises).
SpanRecord = dict


class Span:
    """One open interval; call :meth:`set` to attach attributes before it ends."""

    __slots__ = ("name", "span_id", "parent_id", "attributes", "start", "end")

    def __init__(self, name: str, span_id: str, parent_id: str | None, **attributes):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes: dict[str, Any] = dict(attributes)
        self.start = time.perf_counter()
        self.end: float | None = None

    def set(self, **attributes: Any) -> None:
        """Attach (or overwrite) span attributes."""
        self.attributes.update(attributes)

    def __repr__(self) -> str:
        state = "open" if self.end is None else "closed"
        return f"Span({self.name!r}, {self.span_id}, {state})"


class _SpanContext:
    """Context manager pairing ``start_span``/``end_span`` around a block."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        self._tracer.end_span(self._span)


class Tracer:
    """Span recorder for one process's view of a run trace.

    Finished spans are stored as plain, export-ready dict records (see
    :meth:`export` for the schema), so shipping them across a process
    boundary is free and :meth:`adopt` can append foreign records directly.
    """

    enabled = True

    def __init__(self, *, trace_id: str | None = None, process: str = "coordinator"):
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self.process = process
        #: Span-duration histograms etc. — the metrics side of the tracer.
        self.metrics = MetricsRegistry()
        #: A6 projection-check counters (see :class:`ChaseProfile`).
        self.chase = ChaseProfile()
        self._epoch_perf = time.perf_counter()
        self._epoch_wall = time.time()
        self._records: list[SpanRecord] = []
        self._stack: list[Span] = []
        self._next_id = 0

    # ---------------------------------------------------------------- spans

    def start_span(self, name: str, **attributes: Any) -> Span:
        """Open a span as a child of the innermost open span."""
        self._next_id += 1
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(name, f"{self.process}-{self._next_id}", parent, **attributes)
        self._stack.append(span)
        return span

    def end_span(self, span: Span, **attributes: Any) -> None:
        """Close a span and record it (tolerates out-of-order closes)."""
        if attributes:
            span.attributes.update(attributes)
        span.end = time.perf_counter()
        try:
            self._stack.remove(span)
        except ValueError:
            pass  # already closed (defensive; double end is a no-op record)
        else:
            self._records.append(self._record(span))
            self.metrics.histogram(
                "repro_span_seconds", {"name": span.name}
            ).observe(span.end - span.start)

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """``with tracer.span("merge", shards=4) as s: ...``"""
        return _SpanContext(self, self.start_span(name, **attributes))

    def _wall(self, perf_time: float) -> float:
        return self._epoch_wall + (perf_time - self._epoch_perf)

    def _record(self, span: Span) -> SpanRecord:
        assert span.end is not None
        return {
            "trace_id": self.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "name": span.name,
            "process": self.process,
            "start": self._wall(span.start),
            "end": self._wall(span.end),
            "attributes": span.attributes,
        }

    # ------------------------------------------------------- export / adopt

    def mark(self) -> int:
        """A position marker; pass to :meth:`export` to slice one run's spans."""
        return len(self._records)

    def export(self, since: int = 0) -> list[SpanRecord]:
        """Finished span records (wall-aligned), oldest first."""
        return [dict(record) for record in self._records[since:]]

    def trace(self, since: int = 0) -> dict:
        """The trace document: ``{"trace_id", "process", "spans"}``."""
        return {
            "trace_id": self.trace_id,
            "process": self.process,
            "spans": self.export(since),
        }

    def drain(self) -> list[SpanRecord]:
        """Export all finished spans and forget them (the worker ship path).

        Open spans stay on the stack and are recorded by whichever drain
        follows their close, so a warm worker never re-ships old spans.
        """
        records, self._records = self.export(), []
        return records

    def adopt(
        self,
        records: list[SpanRecord],
        *,
        clock: float | None = None,
    ) -> None:
        """Append span records shipped from another process.

        ``clock`` is the shipper's ``time.time()`` at export; a disagreement
        with the local wall clock beyond :data:`CLOCK_SKEW_THRESHOLD` is
        treated as clock skew and subtracted from the shipped timestamps so
        cross-machine spans land on the coordinator's timeline.  Top-level
        shipped spans (no parent) are re-parented under the outermost open
        local span — the run span — so the whole run nests as one trace.
        """
        offset = 0.0
        if clock is not None:
            measured = time.time() - clock
            if abs(measured) >= CLOCK_SKEW_THRESHOLD:
                offset = measured
        parent = self._stack[0].span_id if self._stack else None
        for record in records:
            adopted = dict(record)
            adopted["trace_id"] = self.trace_id
            adopted["start"] += offset
            adopted["end"] += offset
            if adopted.get("parent_id") is None:
                adopted["parent_id"] = parent
            self._records.append(adopted)

    def __iter__(self) -> Iterator[SpanRecord]:
        return iter(self.export())

    def __repr__(self) -> str:
        return (
            f"Tracer({self.trace_id}, process={self.process!r}, "
            f"{len(self._records)} spans, {len(self._stack)} open)"
        )


# ---------------------------------------------------------------- null object


class _NullSpan:
    """The no-op span: ``set`` swallows attributes."""

    __slots__ = ()

    def set(self, **attributes: Any) -> None:
        pass


class _NullContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullContext()


class NullTracer:
    """The tracing-off tracer: every operation is a near-zero no-op.

    Engines call :func:`tracer_of` unconditionally; with tracing off they get
    this shared instance, so the instrumented code paths stay branch-free and
    results are bit-identical to the un-instrumented ones.
    """

    enabled = False
    trace_id = None
    process = "null"

    def span(self, name: str, **attributes: Any) -> _NullContext:
        return _NULL_CONTEXT

    def start_span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def end_span(self, span: object, **attributes: Any) -> None:
        pass

    def adopt(self, records: object, *, clock: float | None = None) -> None:
        pass

    def mark(self) -> int:
        return 0

    def export(self, since: int = 0) -> list:
        return []

    def __repr__(self) -> str:
        return "NullTracer()"


NULL_TRACER = NullTracer()


def tracer_of(system: object) -> Tracer | NullTracer:
    """The system's attached tracer, or :data:`NULL_TRACER` when tracing is off."""
    tracer = getattr(system, "tracer", None)
    return tracer if tracer is not None else NULL_TRACER


def summarize(records: Mapping | list[SpanRecord]) -> dict[str, dict[str, float]]:
    """Per-span-name aggregates: count, total/mean/max wall seconds.

    Accepts a trace document (``{"spans": [...]}``) or a bare record list;
    :func:`repro.obs.export.format_trace_summary` renders the table.
    """
    spans = records.get("spans", []) if isinstance(records, Mapping) else records
    summary: dict[str, dict[str, float]] = {}
    for record in spans:
        duration = record["end"] - record["start"]
        entry = summary.setdefault(
            record["name"], {"count": 0, "total": 0.0, "max": 0.0}
        )
        entry["count"] += 1
        entry["total"] += duration
        entry["max"] = max(entry["max"], duration)
    for entry in summary.values():
        entry["mean"] = entry["total"] / entry["count"] if entry["count"] else 0.0
    return summary
