"""The metrics registry: counters, gauges and histograms with labels.

:class:`MetricsRegistry` is the one aggregation substrate of the
observability layer.  The per-run :class:`~repro.stats.collector.StatsSnapshot`
is assembled *from* a registry (see
:class:`~repro.stats.collector.StatisticsCollector`), worker processes ship
their registries home as plain :meth:`MetricsRegistry.dump` payloads, and the
coordinator folds them in with :meth:`MetricsRegistry.merge` — one code path
for counter aggregation whatever the engine.  Exporters
(:mod:`repro.obs.export`) render a registry as JSON or Prometheus text.

Merge semantics: counters and histograms are additive (every delivery is
recorded in exactly one process, so summing is double-count free); gauges
merge by maximum (they report levels, not flows — e.g. a shard's clock).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Mapping

#: Labels in their canonical, hashable form: sorted ``(key, value)`` pairs.
LabelItems = tuple[tuple[str, str], ...]

#: Default histogram bucket upper bounds (seconds-oriented, like Prometheus').
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
)


def _label_items(labels: Mapping[str, object] | None) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class Counter:
    """A monotonically increasing count (exposed for direct ``.value`` bumps)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative; not enforced for speed)."""
        self.value += amount


class Gauge:
    """A level that can go up and down (a clock, a queue depth, a pool size)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus ``le`` semantics)."""

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)  # +1 for the +Inf bucket
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def cumulative_counts(self) -> list[int]:
        """Counts with ``le`` semantics: each bucket includes all below it."""
        total = 0
        cumulative = []
        for count in self.counts:
            total += count
            cumulative.append(total)
        return cumulative


class MetricsRegistry:
    """Named, labelled metrics with get-or-create access and dump/merge.

    Handles returned by :meth:`counter` / :meth:`gauge` / :meth:`histogram`
    stay valid until :meth:`reset`, so hot paths can cache them and bump
    ``.value`` directly.
    """

    def __init__(self) -> None:
        self.counters: dict[tuple[str, LabelItems], Counter] = {}
        self.gauges: dict[tuple[str, LabelItems], Gauge] = {}
        self.histograms: dict[tuple[str, LabelItems], Histogram] = {}
        self._help: dict[str, str] = {}

    # ---------------------------------------------------------------- access

    def describe(self, name: str, help_text: str) -> None:
        """Attach a ``# HELP`` line to a metric name (optional)."""
        self._help[name] = help_text

    def help_for(self, name: str) -> str:
        return self._help.get(name, name.replace("_", " "))

    def counter(self, name: str, labels: Mapping[str, object] | None = None) -> Counter:
        key = (name, _label_items(labels))
        metric = self.counters.get(key)
        if metric is None:
            metric = self.counters[key] = Counter(*key)
        return metric

    def gauge(self, name: str, labels: Mapping[str, object] | None = None) -> Gauge:
        key = (name, _label_items(labels))
        metric = self.gauges.get(key)
        if metric is None:
            metric = self.gauges[key] = Gauge(*key)
        return metric

    def histogram(
        self,
        name: str,
        labels: Mapping[str, object] | None = None,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        key = (name, _label_items(labels))
        metric = self.histograms.get(key)
        if metric is None:
            metric = self.histograms[key] = Histogram(key[0], key[1], buckets)
        return metric

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        yield from self.counters.values()
        yield from self.gauges.values()
        yield from self.histograms.values()

    # ----------------------------------------------------------- dump / merge

    def dump(self) -> dict:
        """A picklable snapshot (the worker payload / merge wire format)."""
        return {
            "counters": [
                (c.name, c.labels, c.value) for c in self.counters.values()
            ],
            "gauges": [(g.name, g.labels, g.value) for g in self.gauges.values()],
            "histograms": [
                (h.name, h.labels, h.buckets, tuple(h.counts), h.sum, h.count)
                for h in self.histograms.values()
            ],
        }

    def merge(
        self,
        dump: Mapping,
        *,
        extra_labels: Mapping[str, object] | None = None,
    ) -> None:
        """Fold a :meth:`dump` in: counters/histograms add, gauges take max.

        ``extra_labels`` are stamped onto every merged metric — the serving
        front-end uses this to fold many tenants' registries into one
        exposition with a distinguishing ``tenant`` label, the same way a
        Prometheus federation job would relabel scraped series.
        """
        extra = dict(extra_labels) if extra_labels else {}

        def relabel(labels: LabelItems) -> dict[str, object]:
            return {**dict(labels), **extra}

        for name, labels, value in dump.get("counters", ()):
            self.counter(name, relabel(labels)).value += value
        for name, labels, value in dump.get("gauges", ()):
            gauge = self.gauge(name, relabel(labels))
            gauge.value = max(gauge.value, value)
        for name, labels, buckets, counts, total, count in dump.get(
            "histograms", ()
        ):
            histogram = self.histogram(name, relabel(labels), buckets=tuple(buckets))
            if histogram.buckets != tuple(sorted(buckets)):
                # Different bucket layouts cannot be combined bucket-wise;
                # keep the receiver's layout and fold into sum/count only.
                histogram.sum += total
                histogram.count += count
                continue
            for index, bucket_count in enumerate(counts):
                histogram.counts[index] += bucket_count
            histogram.sum += total
            histogram.count += count

    def total(self, name: str) -> float:
        """Sum a counter across all of its label sets (0.0 when absent)."""
        return sum(
            counter.value
            for (counter_name, _), counter in self.counters.items()
            if counter_name == name
        )

    def reset(self) -> None:
        """Drop every metric (cached handles become stale — re-acquire them)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


# --------------------------------------------------------------- A6 profiling


@dataclass
class ChaseProfile:
    """Counters for the A6 projection check (``_projection_present``).

    Attached to every :class:`~repro.database.database.LocalDatabase` of a
    traced session (and of traced worker processes), accumulated across runs,
    and surfaced as attributes of the run span — the ROADMAP's "profile the
    runtime projection check" instrumentation.
    """

    calls: int = 0
    projection_checks: int = 0
    candidates_scanned: int = 0
    skipped_by_projection: int = 0
    rows_inserted: int = 0
    wall_seconds: float = 0.0

    def merge(self, other: "ChaseProfile | Mapping[str, float]") -> None:
        """Fold another profile (or its ``vars()`` dict) into this one."""
        values = other if isinstance(other, Mapping) else vars(other)
        for name, value in values.items():
            setattr(self, name, getattr(self, name) + value)

    def snapshot(self) -> "ChaseProfile":
        return replace(self)

    def delta_attributes(self, since: "ChaseProfile") -> dict[str, float]:
        """Span attributes for the change since ``since`` (``a6_``-prefixed)."""
        attributes = {}
        for name, value in vars(self).items():
            delta = value - getattr(since, name)
            attributes[f"a6_{name}"] = (
                round(delta, 6) if name == "wall_seconds" else delta
            )
        return attributes
