"""Observability: distributed tracing, metrics registry, exporters, logging.

Import surface::

    from repro.obs import Tracer, MetricsRegistry, tracer_of, NULL_TRACER

Exporters live in :mod:`repro.obs.export` (imported lazily by callers — it
depends on :mod:`repro.stats.report`, which in turn must be free to import
this package).
"""

from repro.obs.logs import configure_logging, get_logger
from repro.obs.metrics import (
    ChaseProfile,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    CLOCK_SKEW_THRESHOLD,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    summarize,
    tracer_of,
)

__all__ = [
    "CLOCK_SKEW_THRESHOLD",
    "ChaseProfile",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "configure_logging",
    "get_logger",
    "summarize",
    "tracer_of",
]
