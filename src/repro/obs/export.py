"""Exporters: Chrome trace-event JSON (Perfetto), Prometheus text, summaries.

The trace documents produced by :meth:`repro.obs.trace.Tracer.trace` convert
to the Chrome trace-event format — a JSON object with a ``traceEvents`` list
of complete (``"ph": "X"``) events — which https://ui.perfetto.dev and
``chrome://tracing`` both open directly.  Each source process becomes a
Perfetto "process" track (via ``M`` metadata events), so coordinator and
shard-worker spans render as parallel swim-lanes under one run.

Metrics registries export as plain JSON (for machines) and as Prometheus
text exposition format (for scrapes and humans), including full
``_bucket``/``_sum``/``_count`` histogram series with cumulative ``le``
semantics.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import SpanRecord, summarize
from repro.stats.report import format_table

#: Stable ordering for the per-phase summary table: run phases first, in
#: their execution order, then anything else alphabetically.
_PHASE_ORDER = (
    "run",
    "plan",
    "build",
    "ship",
    "chase",
    "sync",
    "quiescence",
    "collect",
    "merge",
)


# ------------------------------------------------------------------- tracing


def trace_to_chrome(trace: Mapping | list[SpanRecord]) -> dict:
    """Convert a trace document (or bare span list) to Chrome trace events.

    Timestamps are microseconds; ``pid``/``tid`` are synthesised per source
    process label, with ``M`` (metadata) events naming each track so Perfetto
    shows ``coordinator`` / ``shard-0`` / ... instead of bare numbers.
    """
    spans = trace.get("spans", []) if isinstance(trace, Mapping) else trace
    processes: dict[str, int] = {}
    events: list[dict] = []
    for record in spans:
        process = record.get("process", "unknown")
        pid = processes.setdefault(process, len(processes) + 1)
        args = {
            key: value
            for key, value in record.get("attributes", {}).items()
            if isinstance(value, (str, int, float, bool)) or value is None
        }
        args["span_id"] = record["span_id"]
        if record.get("parent_id") is not None:
            args["parent_id"] = record["parent_id"]
        events.append(
            {
                "ph": "X",
                "name": record["name"],
                "cat": "repro",
                "ts": record["start"] * 1e6,
                "dur": (record["end"] - record["start"]) * 1e6,
                "pid": pid,
                "tid": 1,
                "args": args,
            }
        )
    for process, pid in processes.items():
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 1,
                "args": {"name": process},
            }
        )
    document = {"traceEvents": events, "displayTimeUnit": "ms"}
    if isinstance(trace, Mapping) and trace.get("trace_id"):
        document["otherData"] = {"trace_id": trace["trace_id"]}
    return document


def write_chrome_trace(trace: Mapping | list[SpanRecord], path: str | Path) -> Path:
    """Write ``trace`` as Chrome trace-event JSON; returns the path written."""
    target = Path(path)
    target.write_text(json.dumps(trace_to_chrome(trace), indent=2) + "\n")
    return target


def validate_chrome_trace(document: object) -> list[str]:
    """Schema-check a Chrome trace document; returns problems (empty = valid)."""
    problems: list[str] = []
    if not isinstance(document, Mapping):
        return ["document is not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents list"]
    if not any(event.get("ph") == "X" for event in events if isinstance(event, Mapping)):
        problems.append("no complete ('X') span events")
    for index, event in enumerate(events):
        if not isinstance(event, Mapping):
            problems.append(f"event {index} is not an object")
            continue
        phase = event.get("ph")
        if phase not in ("X", "M"):
            problems.append(f"event {index}: unsupported phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"event {index}: missing name")
        if not isinstance(event.get("pid"), int):
            problems.append(f"event {index}: missing pid")
        if phase == "X":
            for field in ("ts", "dur"):
                if not isinstance(event.get(field), (int, float)):
                    problems.append(f"event {index}: missing {field}")
            if isinstance(event.get("dur"), (int, float)) and event["dur"] < 0:
                problems.append(f"event {index}: negative duration")
    return problems


def chrome_trace_summary(document: Mapping) -> dict[str, dict[str, float]]:
    """Per-phase aggregates from a Chrome trace document (µs → seconds)."""
    spans = [
        {
            "name": event["name"],
            "start": event["ts"] / 1e6,
            "end": (event["ts"] + event["dur"]) / 1e6,
        }
        for event in document.get("traceEvents", [])
        if isinstance(event, Mapping) and event.get("ph") == "X"
    ]
    return summarize(spans)


def format_trace_summary(summary: Mapping[str, Mapping[str, float]]) -> str:
    """Render a per-phase wall-clock table from :func:`summarize` output."""
    wall = sum(entry["total"] for name, entry in summary.items() if name != "run")
    ordered = sorted(
        summary,
        key=lambda name: (
            _PHASE_ORDER.index(name) if name in _PHASE_ORDER else len(_PHASE_ORDER),
            name,
        ),
    )
    rows = []
    for name in ordered:
        entry = summary[name]
        share = 0.0 if not wall or name == "run" else 100.0 * entry["total"] / wall
        rows.append(
            [
                name,
                int(entry["count"]),
                entry["total"],
                entry["mean"],
                entry["max"],
                "-" if name == "run" else f"{share:.1f}%",
            ]
        )
    return format_table(
        ["phase", "spans", "total s", "mean s", "max s", "share"],
        rows,
        title="Per-phase wall clock",
    )


# ------------------------------------------------------------------- metrics


def metrics_to_json(registry: MetricsRegistry) -> dict:
    """A JSON-ready rendering of every metric in ``registry``."""
    return {
        "counters": [
            {"name": c.name, "labels": dict(c.labels), "value": c.value}
            for c in registry.counters.values()
        ],
        "gauges": [
            {"name": g.name, "labels": dict(g.labels), "value": g.value}
            for g in registry.gauges.values()
        ],
        "histograms": [
            {
                "name": h.name,
                "labels": dict(h.labels),
                "buckets": list(h.buckets),
                "counts": h.cumulative_counts(),
                "sum": h.sum,
                "count": h.count,
            }
            for h in registry.histograms.values()
        ],
    }


def _prom_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{key}="{_prom_escape(value)}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_number(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def metrics_to_prometheus(registry: MetricsRegistry) -> str:
    """Render ``registry`` in the Prometheus text exposition format."""
    lines: list[str] = []

    def header(name: str, kind: str) -> None:
        lines.append(f"# HELP {name} {registry.help_for(name)}")
        lines.append(f"# TYPE {name} {kind}")

    seen: set[str] = set()
    for counter in registry.counters.values():
        if counter.name not in seen:
            seen.add(counter.name)
            header(counter.name, "counter")
        lines.append(
            f"{counter.name}{_prom_labels(counter.labels)}"
            f" {_prom_number(counter.value)}"
        )
    for gauge in registry.gauges.values():
        if gauge.name not in seen:
            seen.add(gauge.name)
            header(gauge.name, "gauge")
        lines.append(
            f"{gauge.name}{_prom_labels(gauge.labels)} {_prom_number(gauge.value)}"
        )
    for histogram in registry.histograms.values():
        if histogram.name not in seen:
            seen.add(histogram.name)
            header(histogram.name, "histogram")
        cumulative = histogram.cumulative_counts()
        bounds = [*histogram.buckets, float("inf")]
        for bound, count in zip(bounds, cumulative):
            le = "+Inf" if bound == float("inf") else _prom_number(bound)
            labels = _prom_labels(histogram.labels, f'le="{le}"')
            lines.append(f"{histogram.name}_bucket{labels} {count}")
        lines.append(
            f"{histogram.name}_sum{_prom_labels(histogram.labels)}"
            f" {_prom_number(histogram.sum)}"
        )
        lines.append(
            f"{histogram.name}_count{_prom_labels(histogram.labels)}"
            f" {histogram.count}"
        )
    return "\n".join(lines) + "\n" if lines else ""
