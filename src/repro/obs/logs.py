"""The ``repro.obs`` logging hierarchy.

Every module that wants a logger asks :func:`get_logger` for a named child of
the ``repro.obs`` root (``repro.obs.session``, ``repro.obs.engine``,
``repro.obs.pool``, ...).  Nothing is emitted until
:func:`configure_logging` attaches a handler — the library stays silent by
default, exactly like the rest of the standard library's logging etiquette.

The CLI's ``--verbose`` flag calls ``configure_logging(verbose=True)`` to
stream DEBUG-level progress (plans computed, worlds shipped, workers
respawned, quiescence rounds) to stderr; without it only WARNING and above
surface.
"""

from __future__ import annotations

import logging
import sys

#: Root of the observability logging hierarchy.
ROOT_LOGGER_NAME = "repro.obs"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def get_logger(area: str) -> logging.Logger:
    """A logger named ``repro.obs.<area>`` (e.g. ``get_logger("pool")``)."""
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{area}")


def configure_logging(
    *,
    verbose: bool = False,
    stream: object | None = None,
) -> logging.Logger:
    """Attach one stream handler to the ``repro.obs`` root and set its level.

    Idempotent: re-configuring replaces the previously attached handler
    rather than stacking duplicates, so tests and repeated CLI invocations
    in one process never double-log.  Returns the configured root logger.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in [h for h in root.handlers if getattr(h, "_repro_obs", False)]:
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    handler._repro_obs = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(logging.DEBUG if verbose else logging.WARNING)
    root.propagate = False
    return root
