"""Persistent multi-process worker pools: spawn once, run many times.

:class:`~repro.sharding.multiproc.MultiprocEngine` pays a fixed price on
*every* run: one interpreter spawn per shard plus a pickle of the full
schema/rule world (~1-2 s before the first message moves).  That is fine for
one-shot sweeps and fatal for the workloads the paper motivates — the same
rule world updated again and again as peers' data shifts.  This module keeps
the engine's exact execution model (the
:class:`~repro.sharding.planner.ShardPlanner` partition, one OS process per
shard, mp-queue mailboxes, the cumulative-counter quiescence barrier) but
makes the worker processes *persistent*:

* :class:`WorkerPool` spawns the shard workers once and ships each its
  pickled :class:`~repro.sharding.multiproc.ShardWorld` a single time.
  Successive runs re-ship only **deltas**: rows inserted into the
  coordinator since the last run, relations whose contents were rewritten,
  and ``addLink``/``deleteLink`` rule changes — never the schemas or the
  unchanged data.  :func:`compute_sync_delta` derives that delta
  structurally, by diffing the live system against the pool's mirror of
  what the workers last reported (the same fingerprint-style invalidation
  that :meth:`repro.api.session.Session.update` uses for its strategy
  cache: state is compared, not change notifications trusted).
* :class:`PooledEngine` is the :class:`~repro.api.engine.ExecutionEngine`
  over a pool.  It owns the pool's lifecycle: the first run spawns it,
  later runs reuse it warm, a crashed worker is detected (a dead process
  with an outstanding reply) and the pool is respawned cold on the next
  run, and a rule-graph change triggers **re-plan invalidation** — the
  planner runs again, and if the fresh plan moves any peer to a different
  shard the pool restarts with the new partition (otherwise the rule delta
  is shipped to the warm workers and the partition is kept).
* :class:`PooledTransport` is the coordinator-side marker transport:
  identical to :class:`~repro.sharding.multiproc.MultiprocTransport`, but
  its type selects :class:`PooledEngine` in
  :func:`repro.api.engine.engine_for`.  Build it with
  ``transport="pooled"`` (or ``transport="multiproc", pool=True``) through
  :class:`~repro.api.spec.ScenarioSpec` / :meth:`P2PSystem.build
  <repro.core.system.P2PSystem.build>`.

Close the pool deterministically with ``session.close()`` (or use the
session as a context manager); workers are daemons, so they also die with
the coordinator process, but an explicit close is what benchmarks and
long-lived services should do.

Per-run accounting: each worker resets its delivery/cross-shard counters and
statistics after every ``collect``, so a warm run reports the same per-run
numbers a cold :class:`MultiprocEngine` run would — merge, traffic stats and
the regression gates read identically over both engines.  Worker virtual
clocks are *not* reset: like the in-process transports' persistent clocks,
simulated completion times stay monotone across consecutive runs.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import traceback
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Protocol, cast

from repro.coordination.changeset import (
    ChangeAccumulator,
    ChangeSet,
    StructuralDigest,
    rules_fingerprint as _rules_fingerprint,
    structural_digest,
)
from repro.coordination.rule import CoordinationRule, NodeId
from repro.errors import NetworkError, ReproError
from repro.database.relation import Row
from repro.faults.injector import NULL_INJECTOR, WorkerFrameInjector, injector_of
from repro.obs import NULL_TRACER, Tracer, get_logger, tracer_of
from repro.sharding.multiproc import (
    _DRAIN_BATCH,
    MultiprocEngine,
    MultiprocTransport,
    ShardWorld,
    _await_replies,
    _build_worker_system,
    _quiescence_rounds,
    _start_worker_phase,
    _worker_payload,
    _WorkerTransport,
    _worlds_from_system,
)
from repro.sharding.planner import ShardPlan, ShardPlanner

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.system import P2PSystem
    from repro.sharding.multiproc import MultiprocTransport

#: Facts as the pool mirrors them: per node, per relation, a row set.
FactsMirror = dict[NodeId, dict[str, frozenset]]

_log = get_logger("pool")


# ------------------------------------------------------------------- deltas


@dataclass(frozen=True)
class SyncDelta:
    """What changed in the coordinator since the workers last synced.

    ``inserts`` carries rows that only *appeared* in a relation (the common
    case: the chase and bulk loads insert, never delete), ``replaces``
    rewrites a relation wholesale — used when rows vanished, or when the
    relation itself is new to the workers (then ``schema`` rides along so
    the worker can create it).  ``remove_rules`` are applied before
    ``add_rules`` so a changed rule body (same id) re-installs cleanly.
    """

    add_rules: tuple[CoordinationRule, ...] = ()
    remove_rules: tuple[str, ...] = ()
    inserts: Mapping[NodeId, Mapping[str, tuple[Row, ...]]] = field(
        default_factory=dict
    )
    replaces: Mapping[NodeId, Mapping[str, tuple[object, tuple[Row, ...]]]] = field(
        default_factory=dict
    )

    @property
    def empty(self) -> bool:
        """True when there is nothing to ship."""
        return not (
            self.add_rules or self.remove_rules or self.inserts or self.replaces
        )

    def for_shard(self, plan: ShardPlan, shard: int) -> dict:
        """The slice one worker needs: global rule changes + its owned data."""
        return {
            "add_rules": self.add_rules,
            "remove_rules": self.remove_rules,
            "inserts": {
                node: dict(relations)
                for node, relations in self.inserts.items()
                if plan.shard(node) == shard
            },
            "replaces": {
                node: dict(relations)
                for node, relations in self.replaces.items()
                if plan.shard(node) == shard
            },
        }


def rules_fingerprint(system: P2PSystem) -> dict[str, str]:
    """``rule_id -> str(rule)`` for the system's current rule set.

    Delegates to the shared fingerprint in
    :mod:`repro.coordination.changeset` (the same one the structural digest
    is built from), so editing a rule under the same id reads as remove +
    add everywhere.
    """
    return _rules_fingerprint(system.registry)


def compute_sync_delta(
    system, known_rules: Mapping[str, str], known_facts: FactsMirror
) -> SyncDelta:
    """Diff the live coordinator against the pool's mirror of worker state.

    Structural by construction: whatever mutated the system — ``load_data``,
    ``addLink``/``deleteLink``, a direct relation write — shows up in the
    diff, with no change-notification protocol to forget to call.
    """
    current_rules = rules_fingerprint(system)
    remove_rules = tuple(
        rule_id
        for rule_id, text in known_rules.items()
        if current_rules.get(rule_id) != text
    )
    add_rules = tuple(
        rule
        for rule in system.registry
        if known_rules.get(rule.rule_id) != current_rules[rule.rule_id]
    )

    inserts: dict[NodeId, dict[str, tuple[Row, ...]]] = {}
    replaces: dict[NodeId, dict[str, tuple[object, tuple[Row, ...]]]] = {}
    for node_id, node in system.nodes.items():
        mirrored = known_facts.get(node_id, {})
        for relation_name, rows in node.database.facts().items():
            old = mirrored.get(relation_name)
            if old is not None and rows == old:
                continue
            if old is not None and rows >= old:
                inserts.setdefault(node_id, {})[relation_name] = tuple(rows - old)
            else:
                # Rows vanished, or the relation is new to the workers: the
                # only always-correct move is a wholesale rewrite (with the
                # schema along, so a brand-new relation can be created).
                schema = next(
                    relation_schema
                    for relation_schema in node.database.schema
                    if relation_schema.name == relation_name
                )
                replaces.setdefault(node_id, {})[relation_name] = (
                    schema,
                    tuple(rows),
                )
    return SyncDelta(
        add_rules=add_rules,
        remove_rules=remove_rules,
        inserts=inserts,
        replaces=replaces,
    )


class WorldMirror:
    """Coordinator-side mirror of what a set of remote workers currently hold.

    One instance backs every persistent-worker driver — the mp-queue
    :class:`WorkerPool` here and the TCP
    :class:`~repro.sharding.sockets.SocketPool` — so the delta-sync protocol
    (what to re-ship, when a re-plan invalidates the partition) is a single
    implementation whatever the transport underneath.
    """

    def __init__(self, worlds):
        # The mirror starts as the worlds' own rule set and data slices:
        # that is exactly what the workers load at build time.
        self.rules: dict[str, str] = _rules_fingerprint(
            worlds[0].rules if worlds else ()
        )
        self.facts: FactsMirror = {}
        for world in worlds:
            for node_id, relations in world.data_slice.items():
                self.facts[node_id] = {
                    relation: frozenset(rows)
                    for relation, rows in relations.items()
                }

    def digest(self) -> StructuralDigest:
        """The mirrored state's structural digest.

        The same :class:`~repro.coordination.changeset.StructuralDigest` that
        ``Session.update`` keys its memo cache on and
        :meth:`P2PSystem.structural_digest
        <repro.core.system.P2PSystem.structural_digest>` computes live — one
        fingerprint definition, two consumers.
        """
        return structural_digest(self.rules, self.facts)

    def delta(self, system: P2PSystem) -> SyncDelta:
        """What changed in the coordinator since the workers last synced."""
        return compute_sync_delta(system, self.rules, self.facts)

    def note_synced(self, system: P2PSystem) -> None:
        """Record that the workers now hold the coordinator's current state."""
        self.rules = _rules_fingerprint(system.registry)
        for node_id, node in system.nodes.items():
            self.facts[node_id] = dict(node.database.facts())

    def note_collected(self, payloads: Iterable[Mapping]) -> None:
        """Adopt the facts the workers just shipped home as the new mirror."""
        for payload in payloads:
            for node_id, facts in payload["facts"].items():
                self.facts[node_id] = dict(facts)

    def plan_if_stale(
        self, plan: ShardPlan, system: P2PSystem, planner: ShardPlanner
    ) -> ShardPlan | None:
        """Re-plan after a rule-graph change; a moved peer invalidates the pool.

        Returns ``None`` while the rule graph is unchanged *or* the fresh plan
        keeps every peer on its current shard (then a sync ships the rule
        delta to the warm workers); returns the fresh plan when any peer would
        move — the caller must restart its workers over the new partition,
        because data slices live in worker memory.
        """
        if _rules_fingerprint(system.registry) == self.rules:
            return None
        fresh = planner.plan_system(system)
        if dict(fresh.shard_of) == dict(plan.shard_of):
            return None
        return fresh


# ------------------------------------------------------------ worker process


def _apply_sync(system: P2PSystem, world: ShardWorld, delta: dict) -> None:
    """Apply one coordinator delta inside a worker process."""
    from repro.database.schema import RelationSchema

    for rule_id in delta["remove_rules"]:
        system.remove_rule(rule_id)
    for rule in delta["add_rules"]:
        system.add_rule(rule)
    for node_id, relations in delta["replaces"].items():
        node = system.node(node_id)
        for relation_name, (schema, rows) in relations.items():
            if relation_name not in node.database:
                node.database.add_relation(
                    RelationSchema(schema.name, list(schema.attributes))
                )
            relation = node.database.relation(relation_name)
            relation.clear()
            relation.insert_many(rows)
    for node_id, relations in delta["inserts"].items():
        node = system.node(node_id)
        for relation_name, rows in relations.items():
            node.database.relation(relation_name).insert_many(rows)


def _start_incremental_phase(
    system: P2PSystem,
    world: ShardWorld,
    changes: ChangeSet,
    origins: Iterable[NodeId],
) -> None:
    """Kick an incremental update off inside a worker: seed owned dirty nodes.

    The delta-driven counterpart of
    :func:`repro.sharding.multiproc._start_worker_phase`: instead of opening
    every owned origin for naive pull rounds, only the owned nodes that
    actually received inserts since the last converged run seed their delta
    frontier (see :meth:`repro.core.update.UpdateProtocol.start_incremental`).
    Nodes untouched by the delta do nothing until a fragment push reaches
    them — that is the whole point of the incremental mode.
    """
    allowed = set(world.owned) & set(origins)
    system.seed_update_delta(changes, nodes=allowed)


def _invalidate_incremental(system: P2PSystem, world: ShardWorld) -> None:
    """Drop incremental bookkeeping on every owned node before a naive run.

    A naive ``start()`` invalidates the origin's own bookkeeping, but a run
    may start at a subset of origins while fragment caches on *other* owned
    nodes also go stale once pull rounds rewrite their fragments — so a
    naive update start clears all owned nodes wholesale.
    """
    for node_id in world.owned:
        system.node(node_id).update.invalidate_incremental()


def _reset_run_counters(transport: _WorkerTransport) -> None:
    """Zero the per-run counters after a collect (the clock stays).

    Every worker resets while the network is provably quiescent (collect
    follows the barrier), so the cross-shard sent/received ledgers stay
    balanced — the next run's quiescence check starts from zeros everywhere.
    """
    transport.stats.reset()
    transport.delivered = 0
    transport.cross_sent = [0] * len(transport.cross_sent)
    transport.cross_received = 0


def _pool_worker_main(world: ShardWorld, inboxes: list, results) -> None:
    """Entry point of one persistent shard worker.

    The protocol extends the one-shot worker loop of
    :func:`repro.sharding.multiproc._worker_main` with two commands that make
    the process reusable: ``sync`` applies a coordinator delta between runs
    (rule changes first, then data), and ``collect`` ships the shard's
    current state home *without* exiting, resetting the per-run counters so
    the next run starts from a clean ledger.  ``stop`` ends the process.
    Inbox commands are FIFO per worker, so a ``sync`` queued before a
    ``start`` is always applied before the phase begins.

    Every ``sync`` delta is also folded into a worker-side
    :class:`~repro.coordination.changeset.ChangeAccumulator`.  When a
    ``start`` arrives for the update phase, the accumulated changes are
    consumed: if the coordinator requested ``mode="incremental"`` *and* the
    worker's own accumulator agrees the changes were insert-only
    (``incremental_ok``), the owned dirty nodes seed their delta frontier
    instead of re-opening for naive pull rounds.  The worker-side check is
    authoritative — a coordinator that over-asks (say, after a rule change
    it did not notice) still gets a correct naive run.
    """
    inbox = inboxes[world.shard_index]
    phase = "update"
    pending = ChangeAccumulator()
    try:
        transport = _WorkerTransport(
            world.shard_index,
            world.shard_of,
            inboxes,
            world.latency,
            world.max_messages,
            clock_start=world.clock_start,
        )
        tracer = (
            Tracer(trace_id=world.trace_id, process=f"shard-{world.shard_index}")
            if world.trace_id is not None
            else NULL_TRACER
        )
        transport.tracer = tracer
        if world.fault_plan is not None:
            transport.fault_injector = WorkerFrameInjector(
                world.fault_plan,
                world.shard_index,
                transport.stats.registry,
            )
        with tracer.span("build", shard=world.shard_index):
            system = _build_worker_system(world, transport)
        if tracer.enabled:
            for node in system.nodes.values():
                node.database.profile = tracer.chase
        results.put(("ready", world.shard_index))
        chase_span = None
        delivered_mark = 0
        while True:
            if transport.has_local_work:
                if chase_span is None and tracer.enabled:
                    chase_span = tracer.start_span("chase", shard=world.shard_index)
                    delivered_mark = transport.delivered
                try:
                    item = inbox.get_nowait()
                except queue_module.Empty:
                    transport.drain(_DRAIN_BATCH)
                    continue
            else:
                if chase_span is not None:
                    tracer.end_span(
                        chase_span, delivered=transport.delivered - delivered_mark
                    )
                    chase_span = None
                item = inbox.get()
            kind = item[0]
            if kind == "start":
                if transport.fault_injector is not None:
                    transport.fault_injector.start_run()
                phase = item[1]
                mode = item[3] if len(item) > 3 else None
                if phase == "update":
                    changes = pending.take()
                    if mode == "incremental" and changes.incremental_ok:
                        _start_incremental_phase(system, world, changes, item[2])
                    else:
                        _invalidate_incremental(system, world)
                        _start_worker_phase(system, world, phase, item[2])
                else:
                    # Discovery runs neither consume nor stale the pending
                    # delta; it still belongs to the next update start.
                    _start_worker_phase(system, world, phase, item[2])
            elif kind == "msg":
                transport.receive_cross(item[1], item[2])
            elif kind == "ping":
                results.put(("status", world.shard_index, transport.status()))
            elif kind == "sync":
                with tracer.span("sync", shard=world.shard_index):
                    _apply_sync(system, world, item[1])
                    pending.note_sync_payload(item[1])
            elif kind == "collect":
                payload = _worker_payload(system, world, transport, phase)
                results.put(("collected", world.shard_index, payload))
                _reset_run_counters(transport)
            elif kind == "stop":
                return
            else:  # pragma: no cover - coordinator never sends other kinds
                raise NetworkError(f"unknown control message {kind!r}")
    except BaseException:  # noqa: BLE001 - shipped to the coordinator
        results.put(("error", world.shard_index, traceback.format_exc()))


# ------------------------------------------------------------------ the pool


class WorkerPool:
    """K persistent shard-worker processes behind command queues.

    Spawn with :meth:`WorkerPool.spawn` (ships each worker its world once),
    then call :meth:`sync` + :meth:`run_phase` per run.  The pool mirrors the
    facts its workers last reported, so :meth:`sync` ships only what changed
    in the coordinator since.  Any failure — a crashed worker, a stall, an
    exceeded message bound — closes the pool; the caller (normally
    :class:`PooledEngine`) respawns a fresh one on the next run.
    """

    def __init__(self, plan: ShardPlan, worlds: list[ShardWorld]):
        if len(worlds) != plan.shard_count:
            raise ReproError(
                f"the pool needs one world per shard: got {len(worlds)} "
                f"worlds for {plan.shard_count} shards"
            )
        self.plan = plan
        self.closed = False
        #: Fault injector firing kill faults at this pool's phase hook points
        #: (attached per run by :class:`WarmPoolLifecycle`; the null injector
        #: keeps every hook a no-op on fault-free runs).
        self.injector = NULL_INJECTOR
        self._max_messages = worlds[0].max_messages if worlds else 1_000_000
        self._mirror = WorldMirror(worlds)
        context = multiprocessing.get_context("spawn")
        self._inboxes = [context.Queue() for _ in range(plan.shard_count)]
        self._results = context.Queue()
        self._workers = [
            context.Process(
                target=_pool_worker_main,
                args=(world, self._inboxes, self._results),
                daemon=True,
            )
            for world in worlds
        ]
        try:
            for worker in self._workers:
                worker.start()
            _await_replies(
                self._results, "ready", plan.shard_count, self._workers
            )
        except BaseException:
            self.close()
            raise

    @classmethod
    def spawn(cls, system: P2PSystem, plan: ShardPlan) -> "WorkerPool":
        """Spawn a pool over the live system's current state."""
        return cls(plan, _worlds_from_system(system, plan))

    # ---------------------------------------------------------------- status

    @property
    def shard_count(self) -> int:
        """Number of worker processes."""
        return self.plan.shard_count

    @property
    def alive(self) -> bool:
        """True while the pool is open and every worker process lives."""
        return not self.closed and all(
            worker.is_alive() for worker in self._workers
        )

    @property
    def worker_pids(self) -> tuple[int | None, ...]:
        """The workers' process ids (stable across warm runs by design)."""
        return tuple(worker.pid for worker in self._workers)

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Stop the workers and release the queues (idempotent)."""
        if self.closed:
            return
        self.closed = True
        for worker, inbox in zip(self._workers, self._inboxes):
            if worker.is_alive():
                try:
                    inbox.put(("stop",))
                except (OSError, ValueError):  # pragma: no cover - teardown race
                    pass
        for worker in self._workers:
            if worker.pid is None:
                continue  # never started (a spawn that failed part-way)
            worker.join(timeout=5.0)
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=1.0)
        for queue in (*self._inboxes, self._results):
            queue.close()
            queue.cancel_join_thread()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _require_open(self) -> None:
        if self.closed:
            raise ReproError("the worker pool is closed")
        for shard, worker in enumerate(self._workers):
            if not worker.is_alive():
                raise NetworkError(
                    f"shard {shard} worker died (exit code {worker.exitcode}); "
                    "the pool must be respawned"
                )

    def kill_worker(self, shard: int) -> None:
        """Terminate one worker process (the fault injector's kill primitive)."""
        worker = self._workers[shard]
        if worker.is_alive():
            worker.terminate()
            worker.join(timeout=5.0)

    # --------------------------------------------------------------- re-plan

    def plan_if_stale(
        self, system: P2PSystem, planner: ShardPlanner
    ) -> ShardPlan | None:
        """Re-plan after a rule-graph change; a new partition invalidates the pool.

        Returns ``None`` while the rule graph is unchanged *or* the fresh plan
        keeps every peer on its current shard (then :meth:`sync` ships the
        rule delta to the warm workers); returns the fresh plan when any peer
        would move — the caller must close this pool and spawn a new one over
        the new partition, because data slices live in worker memory.
        """
        return self._mirror.plan_if_stale(self.plan, system, planner)

    # ------------------------------------------------------------------ runs

    def sync(self, system: P2PSystem) -> SyncDelta:
        """Ship the coordinator's changes since the last run to the workers.

        Returns the delta that was shipped (empty deltas ship nothing), so
        callers and tests can observe exactly what went over the wire.
        """
        self._require_open()
        delta = self._mirror.delta(system)
        if not delta.empty:
            for shard, inbox in enumerate(self._inboxes):
                inbox.put(("sync", delta.for_shard(self.plan, shard)))
            self._mirror.note_synced(system)
        # A sync-phase kill lands here: the dead worker is detected by the
        # next run_phase's liveness check, never by a wedged barrier.
        self.injector.fire("sync", self)
        return delta

    def run_phase(
        self,
        phase: str,
        origins: Iterable[NodeId],
        *,
        tracer=None,
        mode: str | None = None,
    ) -> list[dict]:
        """Drive one phase over the warm workers and collect their payloads.

        The run starts at the owned origins, reaches distributed quiescence
        through the shared cumulative-counter barrier, then ``collect`` ships
        every shard's per-run state home (the workers keep running).
        ``mode="incremental"`` asks the workers for the delta-driven update
        path; each worker double-checks eligibility against its own
        accumulated sync deltas and falls back to naive when they disagree.
        Any error closes the pool — a half-synced pool must never serve
        another run.
        """
        tracer = tracer if tracer is not None else NULL_TRACER
        try:
            self._require_open()
            for inbox in self._inboxes:
                inbox.put(("start", phase, tuple(origins), mode))
            self.injector.fire("chase", self)
            with tracer.span("quiescence") as quiescence_span:
                rounds = _quiescence_rounds(
                    self._results,
                    self._inboxes,
                    self.shard_count,
                    self._max_messages,
                    self._workers,
                )
                quiescence_span.set(rounds=rounds)
            self.injector.fire("quiescence", self)
            with tracer.span("collect"):
                for inbox in self._inboxes:
                    inbox.put(("collect",))
                collected = _await_replies(
                    self._results, "collected", self.shard_count, self._workers
                )
        except BaseException:
            self.close()
            raise
        payloads = [payload for _shard, payload in sorted(collected.items())]
        # After the merge the coordinator will hold exactly these facts, and
        # so do the workers: the mirror is the shipped state itself.
        self._mirror.note_collected(payloads)
        return payloads

    def __repr__(self) -> str:
        state = "closed" if self.closed else ("alive" if self.alive else "dead")
        return f"WorkerPool({self.shard_count} shards, {state})"


# ------------------------------------------------------- transport and engine


class PooledTransport(MultiprocTransport):
    """Coordinator handle whose type selects the *pooled* multiproc engine.

    Behaviour is identical to :class:`MultiprocTransport` (it registers peers
    and accumulates merged counters, never delivers); the subclass exists so
    :func:`repro.api.engine.engine_for` can route systems built with
    ``transport="pooled"`` (or ``transport="multiproc", pool=True``) to
    :class:`PooledEngine` and everything else stays shared.
    """

    def __repr__(self) -> str:
        planned = "planned" if self.plan is not None else "unplanned"
        return (
            f"PooledTransport({self.shard_count} shards, {planned}, "
            f"{self.delivered_count} delivered)"
        )


class PoolLike(Protocol):
    """What :class:`WarmPoolLifecycle` needs from a pool it keeps warm."""

    injector: object

    @property
    def alive(self) -> bool: ...

    @property
    def shard_count(self) -> int: ...

    def kill_worker(self, shard: int) -> None: ...

    def close(self) -> None: ...

    def plan_if_stale(
        self, system: P2PSystem, planner: ShardPlanner
    ) -> ShardPlan | None: ...

    def sync(self, system: P2PSystem) -> SyncDelta: ...

    def run_phase(
        self,
        phase: str,
        origins: Iterable[NodeId],
        *,
        tracer=None,
        mode: str | None = None,
    ) -> list[dict]: ...


class WarmPoolLifecycle:
    """The warm-pool run driver shared by the mp and socket pooled engines.

    Mixed in front of the engine base class; subclasses provide
    :meth:`_spawn_pool` (how to bring a cold pool up over the live system)
    and everything else — dead-pool detection, re-plan invalidation, delta
    sync, forget-on-error — is one implementation, like
    :class:`WorldMirror` is for the mirror bookkeeping.
    """

    planner: ShardPlanner | None
    _pool = None
    #: Set False (on the engine instance) to pin every warm update to the
    #: naive path — the parity tests use this to compare both paths over
    #: the same engine.
    incremental: bool = True
    #: True once the warm workers hold a *converged* update fix-point — the
    #: precondition for the delta path, which pushes along the owner edges
    #: the previous run registered.  Cold spawns and non-update phases do
    #: not set it; any cold respawn clears it.
    _primed: bool = False

    def _spawn_pool(self, system: P2PSystem, transport) -> PoolLike:
        raise NotImplementedError  # pragma: no cover - mixin contract

    def _drive_workers(
        self,
        system: P2PSystem,
        plan: ShardPlan,
        phase: str,
        origins: Iterable[NodeId],
    ) -> list[dict]:
        """Reuse the warm pool when possible; (re)spawn when it is not.

        Cold paths: no pool yet, a worker died since the last run, or the
        rule graph changed in a way that re-partitions the network (the
        re-plan invalidation described in :meth:`WorkerPool.plan_if_stale`).
        Warm path: ship the delta, run the phase — as a delta-driven
        incremental update when the pool is primed (previous update
        converged) and the delta is insert-only, naively otherwise.
        """
        transport = cast("MultiprocTransport", system.transport)
        tracer = tracer_of(system)
        injector = injector_of(system)
        planner = self.planner or ShardPlanner(transport.shard_count)
        pool = self._pool
        mode: str | None = None
        if pool is not None and not pool.alive:
            _log.warning("warm pool died; respawning cold")
            pool.close()
            pool = self._pool = None
        if pool is not None:
            fresh_plan = pool.plan_if_stale(system, planner)
            if fresh_plan is not None:
                _log.debug("rule graph re-partitioned the network; pool restarts")
                pool.close()
                pool = self._pool = None
                transport.apply_plan(fresh_plan)
            else:
                pool.injector = injector
                with tracer.span("sync") as sync_span:
                    delta = pool.sync(system)
                    sync_span.set(empty=delta.empty)
                if (
                    phase == "update"
                    and self.incremental
                    and self._primed
                    and ChangeSet.from_sync_delta(delta).incremental_ok
                ):
                    # Coordinator-side gate only: each worker re-checks
                    # against the deltas it actually accumulated (a sync may
                    # have been shipped before a discovery run) and falls
                    # back to naive on its own if they disagree.
                    mode = "incremental"
        if pool is None:
            _log.debug("spawning worker pool (%d shards)", plan.shard_count)
            self._primed = False
            with tracer.span("ship", shards=plan.shard_count):
                pool = self._pool = self._spawn_pool(system, transport)
            pool.injector = injector
            injector.fire("ship", pool)
        try:
            payloads = pool.run_phase(phase, origins, tracer=tracer, mode=mode)
        except BaseException:
            # run_phase closed the pool; forget it so the next run respawns.
            self._pool = None
            self._primed = False
            raise
        if phase == "update":
            self._primed = True
        return payloads


class PooledEngine(WarmPoolLifecycle, MultiprocEngine):
    """The multiproc engine over a persistent :class:`WorkerPool`.

    The first :meth:`run` spawns the pool (paying the same spawn/ship price
    as a cold :class:`MultiprocEngine` run); every later run reuses the warm
    workers and ships only deltas.  The engine object owns the pool, so a
    :class:`~repro.api.session.Session` holding this engine keeps its workers
    warm across ``session.run(...)`` calls — close the session (or the
    engine) to stop them.
    """

    name = "pooled"

    def __init__(self, planner: ShardPlanner | None = None):
        super().__init__(planner)
        self._pool: WorkerPool | None = None

    @property
    def pool(self) -> WorkerPool | None:
        """The live pool, or None before the first run / after close()."""
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent; a later run respawns)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "PooledEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass

    def _spawn_pool(self, system: P2PSystem, transport) -> WorkerPool:
        return WorkerPool.spawn(system, transport.plan)
