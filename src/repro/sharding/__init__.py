"""Sharded execution: partition the network, run one worker per shard.

The paper's experiments stop at 31 peers; this subsystem is the scaling
layer that pushes the same protocols toward thousands.  Three pieces:

* :class:`~repro.sharding.planner.ShardPlanner` — partitions peers across K
  shards by greedily cutting the coordination-rule import graph, so chatty
  neighbours co-locate (:class:`~repro.sharding.planner.ShardPlan` is the
  resulting assignment; :func:`~repro.sharding.planner.round_robin_plan` the
  locality-blind baseline),
* :class:`~repro.sharding.transport.ShardedTransport` — K per-shard event
  queues with inter-shard mailboxes for cross-cut messages and a
  distributed-quiescence barrier (per-shard idle + empty mailboxes),
* :class:`~repro.sharding.engine.ShardedEngine` — the
  :class:`~repro.api.engine.ExecutionEngine` implementation over that
  transport, reached like any other engine through
  ``Session.run(...)`` / ``ScenarioSpec(transport="sharded", shards=K)``,
* :class:`~repro.sharding.multiproc.MultiprocTransport` /
  :class:`~repro.sharding.multiproc.MultiprocEngine` — the same shard
  boundary with one OS *process* per shard (``multiprocessing`` spawn,
  queue-backed mailboxes, a cross-process quiescence barrier), selected via
  ``ScenarioSpec(transport="multiproc", shards=K)`` — the first engine with
  real multi-core wall-clock speedups on the 500+-node sweeps.
"""

from repro.sharding.engine import ShardedEngine
from repro.sharding.multiproc import MultiprocEngine, MultiprocTransport
from repro.sharding.planner import ShardPlan, ShardPlanner, round_robin_plan
from repro.sharding.transport import ShardedTransport

__all__ = [
    "MultiprocEngine",
    "MultiprocTransport",
    "ShardPlan",
    "ShardPlanner",
    "ShardedEngine",
    "ShardedTransport",
    "round_robin_plan",
]
