"""Sharded execution: partition the network, run one worker per shard.

The paper's experiments stop at 31 peers; this subsystem is the scaling
layer that pushes the same protocols toward thousands.  Four pieces:

* :class:`~repro.sharding.planner.ShardPlanner` — partitions peers across K
  shards by greedily cutting the coordination-rule import graph, so chatty
  neighbours co-locate (:class:`~repro.sharding.planner.ShardPlan` is the
  resulting assignment; :func:`~repro.sharding.planner.round_robin_plan` the
  locality-blind baseline),
* :class:`~repro.sharding.transport.ShardedTransport` — K per-shard event
  queues with inter-shard mailboxes for cross-cut messages and a
  distributed-quiescence barrier (per-shard idle + empty mailboxes), driven
  by :class:`~repro.sharding.engine.ShardedEngine` behind the usual
  :class:`~repro.api.engine.ExecutionEngine` protocol
  (``ScenarioSpec(transport="sharded", shards=K)``),
* :class:`~repro.sharding.multiproc.MultiprocTransport` /
  :class:`~repro.sharding.multiproc.MultiprocEngine` — the same shard
  boundary with one OS *process* per shard (``multiprocessing`` spawn,
  queue-backed mailboxes, a cross-process quiescence barrier), selected via
  ``ScenarioSpec(transport="multiproc", shards=K)`` — the first engine with
  real multi-core wall-clock speedups on the 500+-node sweeps,
* :class:`~repro.sharding.pool.WorkerPool` /
  :class:`~repro.sharding.pool.PooledEngine` — the *persistent* variant of
  the multiproc engine (``transport="pooled"``, or ``"multiproc"`` with
  ``pool=True``): workers spawn once, worlds ship once, and successive runs
  re-ship only deltas (new facts, ``addLink``/``deleteLink``), amortising
  the 1-2 s spawn/ship overhead across repeat-run workloads,
* :class:`~repro.sharding.sockets.ShardHost` /
  :class:`~repro.sharding.sockets.SocketPool` /
  :class:`~repro.sharding.sockets.SocketEngine` — the *cross-machine*
  variant (``transport="socket"``, plus ``pool=True`` for the warm
  :class:`~repro.sharding.sockets.PooledSocketEngine`): shard workers live
  in ``python -m repro.shardhost`` server processes anywhere TCP reaches,
  the coordinator ships worlds and drives the same delta-sync protocol and
  quiescence barrier over length-prefixed frames, and a localhost
  auto-spawn helper (:class:`~repro.sharding.sockets.LocalHostCluster`)
  keeps tests and CI cluster-free.

See ``docs/architecture.md`` for where this layer sits in the system and
``docs/engines.md`` for when to pick which engine.
"""

from repro.sharding.engine import ShardedEngine
from repro.sharding.multiproc import MultiprocEngine, MultiprocTransport
from repro.sharding.planner import ShardPlan, ShardPlanner, round_robin_plan
from repro.sharding.pool import (
    PooledEngine,
    PooledTransport,
    SyncDelta,
    WorkerPool,
    WorldMirror,
    compute_sync_delta,
)
from repro.sharding.sockets import (
    LocalHostCluster,
    PooledSocketEngine,
    PooledSocketTransport,
    ShardHost,
    SocketEngine,
    SocketPool,
    SocketTransport,
)
from repro.sharding.transport import ShardedTransport

__all__ = [
    "LocalHostCluster",
    "MultiprocEngine",
    "MultiprocTransport",
    "PooledEngine",
    "PooledSocketEngine",
    "PooledSocketTransport",
    "PooledTransport",
    "ShardHost",
    "ShardPlan",
    "ShardPlanner",
    "ShardedEngine",
    "ShardedTransport",
    "SocketEngine",
    "SocketPool",
    "SocketTransport",
    "SyncDelta",
    "WorkerPool",
    "WorldMirror",
    "compute_sync_delta",
    "round_robin_plan",
]
