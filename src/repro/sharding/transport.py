"""A partitioned transport: one worker per shard, mailboxes across the cut.

:class:`ShardedTransport` scales the simulation past what one global event
queue handles comfortably by partitioning the peers across K shards (see
:mod:`repro.sharding.planner`).  Each shard owns

* a local discrete-event queue with its own virtual clock (messages between
  co-located peers never leave the shard),
* an inter-shard *mailbox* receiving messages whose sender lives in another
  shard (the cross-cut traffic the planner minimises),
* one asyncio task (the shard worker) draining queue and mailbox in
  (delivery time, sequence) order.

Quiescence is detected with a distributed-style barrier: the run is over when
every shard worker is idle, every mailbox and queue is empty, and no delivery
is in flight — double-checked after a scheduler yield, because the last
delivery of one shard may have refilled another shard's mailbox.

Clock semantics: a message is stamped ``sender shard clock + latency`` when
sent and the receiving shard's clock advances to at least that stamp on
delivery, so per-shard clocks model shards executing *in parallel* and the
simulated completion time of a run is the maximum shard clock — the quantity
the scalability experiments compare against the single-queue
:class:`~repro.network.transport.SyncTransport`.  There is deliberately no
global time synchronisation between shards (each worker drains its own queue
in local timestamp order): a shard whose local chain ran ahead stamps late
cross-shard arrivals at its already-advanced clock, so topologies with a
dense cut report a *longer* sharded completion time than the global
discrete-event clock would — the simulated cost of unsynchronised shard
workers, which the planner's cut minimisation is there to contain.
"""

from __future__ import annotations

import asyncio
import heapq
import time
from collections import deque
from dataclasses import dataclass, field

from repro.errors import NetworkError, UnknownPeerError
from repro.network.latency import LatencyModel
from repro.network.message import Message
from repro.network.transport import BaseTransport
from repro.sharding.planner import ShardPlan
from repro.stats.collector import StatisticsCollector


@dataclass
class _Shard:
    """One shard's queue, mailbox, clock and worker bookkeeping."""

    index: int
    queue: list[tuple[float, int, Message]] = field(default_factory=list)
    mailbox: deque[tuple[float, int, Message]] = field(default_factory=deque)
    clock: float = 0.0
    idle: bool = True
    delivered: int = 0
    cross_received: int = 0
    wakeup: asyncio.Event | None = None

    def wake(self) -> None:
        if self.wakeup is not None:
            self.wakeup.set()


class ShardedTransport(BaseTransport):
    """K per-shard event queues joined by inter-shard mailboxes."""

    def __init__(
        self,
        shard_count: int = 2,
        latency: LatencyModel | None = None,
        stats: StatisticsCollector | None = None,
        max_messages: int = 1_000_000,
    ):
        if shard_count < 1:
            raise NetworkError("a sharded transport needs at least one shard")
        super().__init__(latency=latency, stats=stats)
        self.shard_count = shard_count
        self.max_messages = max_messages
        self.delivered_count = 0
        self.plan: ShardPlan | None = None
        self._shards: list[_Shard] = [_Shard(i) for i in range(shard_count)]
        self._shard_of: dict[str, int] = {}
        self._in_flight = 0
        self._quiescent: asyncio.Event | None = None
        self._stopping = False
        self._error: BaseException | None = None

    # ------------------------------------------------------------ partitioning

    def apply_plan(self, plan: ShardPlan) -> None:
        """Adopt a shard plan; every registered peer must be covered.

        The plan may name fewer shards than the transport was created with
        (the planner never opens more shards than there are peers); the extra
        shards simply stay empty.
        """
        if plan.shard_count > self.shard_count:
            raise NetworkError(
                f"plan uses {plan.shard_count} shards but the transport "
                f"has only {self.shard_count}"
            )
        missing = [peer for peer in self._handlers if peer not in plan.shard_of]
        if missing:
            raise NetworkError(
                f"shard plan does not cover registered peers {sorted(missing)}"
            )
        if self._in_flight:
            raise NetworkError("cannot re-plan while deliveries are in flight")
        self.plan = plan
        self._shard_of = {node: plan.shard(node) for node in plan.shard_of}

    def shard_of(self, node_id: str) -> int:
        """The shard a peer is (or will be) assigned to.

        Peers that join after planning — the dynamic-network case — are
        pinned to the currently least-loaded shard on first use.
        """
        shard = self._shard_of.get(node_id)
        if shard is None:
            sizes = [0] * self.shard_count
            for owner in self._shard_of.values():
                sizes[owner] += 1
            shard = min(range(self.shard_count), key=lambda s: (sizes[s], s))
            self._shard_of[node_id] = shard
        return shard

    @property
    def shards(self) -> tuple[_Shard, ...]:
        """The shard records (read-only view for stats and tests)."""
        return tuple(self._shards)

    # ---------------------------------------------------------------- sending

    def send(self, message: Message) -> None:
        """Queue ``message`` on the recipient's shard.

        Same-shard messages go straight into the shard's event queue;
        cross-shard messages go through the recipient shard's mailbox (and
        are counted as cut traffic).  Sends are legal both inside a running
        worker (a handler forwarding data) and outside any event loop (a
        protocol phase being started before the workers spin up).
        """
        if message.recipient not in self._handlers:
            raise UnknownPeerError(
                f"cannot send {message}: recipient is not registered"
            )
        if self.plan is None:
            raise NetworkError(
                "the sharded transport has no shard plan yet; apply_plan() "
                "first (Session.run / ShardedEngine do this automatically)"
            )
        sender_shard = (
            self._shards[self.shard_of(message.sender)]
            if message.sender in self._handlers or message.sender in self._shard_of
            else None
        )
        target = self._shards[self.shard_of(message.recipient)]
        origin_clock = sender_shard.clock if sender_shard is not None else target.clock
        deliver_at = origin_clock + self.latency.delay_for(message)
        entry = (deliver_at, message.sequence, message)
        self._in_flight += 1
        if sender_shard is target:
            heapq.heappush(target.queue, entry)
        else:
            target.mailbox.append(entry)
            target.cross_received += 1
        target.wake()

    @property
    def pending(self) -> int:
        """Messages queued or in delivery across all shards."""
        return self._in_flight

    # ----------------------------------------------------------------- running

    async def run_until_quiescent(self) -> float:
        """Drive every shard worker until the whole network is quiescent.

        Returns the simulated completion time (the maximum shard clock).
        Raises :class:`NetworkError` after ``max_messages`` deliveries — a
        non-terminating protocol — and re-raises any handler error.
        """
        if self.plan is None:
            raise NetworkError(
                "the sharded transport has no shard plan yet; apply_plan() first"
            )
        started = time.perf_counter()
        self._stopping = False
        self._error = None
        # Events bind to the running loop, and each blocking run uses a fresh
        # asyncio.run loop, so they are recreated per run.
        self._quiescent = asyncio.Event()
        if self._in_flight == 0:
            self._quiescent.set()
        for shard in self._shards:
            shard.wakeup = asyncio.Event()
            shard.idle = False
        loop = asyncio.get_running_loop()
        workers = [loop.create_task(self._shard_worker(s)) for s in self._shards]
        try:
            await self._quiescence_barrier()
        finally:
            self._stopping = True
            for shard in self._shards:
                shard.wake()
            await asyncio.gather(*workers)
            self.stats.elapsed_wall_seconds += time.perf_counter() - started
        if self._error is not None:
            raise self._error
        return self.completion_time

    @property
    def completion_time(self) -> float:
        """The simulated completion time so far: the maximum shard clock."""
        return max(shard.clock for shard in self._shards)

    async def _shard_worker(self, shard: _Shard) -> None:
        """One shard's event loop: drain mailbox + queue, then wait for work."""
        while True:
            if self._stopping:
                # Set only after the barrier decided quiescence (queues empty)
                # or after a worker failed (remaining traffic is moot).
                shard.idle = True
                return
            while shard.mailbox:
                heapq.heappush(shard.queue, shard.mailbox.popleft())
            if shard.queue:
                shard.idle = False
                deliver_at, _sequence, message = heapq.heappop(shard.queue)
                shard.clock = max(shard.clock, deliver_at)
                try:
                    self.delivered_count += 1
                    shard.delivered += 1
                    if self.delivered_count > self.max_messages:
                        raise NetworkError(
                            f"exceeded {self.max_messages} deliveries; "
                            "the protocol does not appear to terminate"
                        )
                    self._deliver(message, shard.clock)
                except BaseException as error:  # noqa: BLE001 - stored, re-raised
                    self._error = error
                    self._signal_quiescent()
                    return
                finally:
                    self._in_flight -= 1
                    if self._in_flight == 0:
                        self._signal_quiescent()
                # Yield so the K workers interleave deterministically instead
                # of one shard draining to exhaustion while the others starve.
                await asyncio.sleep(0)
                continue
            shard.idle = True
            if self._stopping:
                return
            assert shard.wakeup is not None
            shard.wakeup.clear()
            if shard.mailbox or shard.queue or self._stopping:
                continue  # work (or shutdown) raced the clear; re-check
            await shard.wakeup.wait()

    def _signal_quiescent(self) -> None:
        if self._quiescent is not None:
            self._quiescent.set()

    async def _quiescence_barrier(self) -> None:
        """Block until the network is globally quiescent (or a worker failed).

        The barrier is the distributed-termination double check: the fast
        signal is the in-flight counter reaching zero, but that alone only
        proves no message is queued *right now* — it is confirmed only once
        every shard reports idle with an empty mailbox and queue after a
        scheduler yield.
        """
        assert self._quiescent is not None
        while True:
            if self._error is not None:
                return
            if self._in_flight == 0:
                if all(
                    shard.idle and not shard.mailbox and not shard.queue
                    for shard in self._shards
                ):
                    return
                # Workers are finishing their bookkeeping; let them run.
                await asyncio.sleep(0)
                continue
            self._quiescent.clear()
            await self._quiescent.wait()

    # ------------------------------------------------------------------ stats

    def shard_message_counts(self) -> dict[int, int]:
        """Messages delivered per shard so far."""
        return {shard.index: shard.delivered for shard in self._shards}

    @property
    def cross_shard_messages(self) -> int:
        """Messages that crossed the cut (routed through a mailbox)."""
        return sum(shard.cross_received for shard in self._shards)

    @property
    def intra_shard_messages(self) -> int:
        """Delivered messages that stayed inside their shard."""
        return self.delivered_count - min(
            self.cross_shard_messages, self.delivered_count
        )

    def __repr__(self) -> str:
        planned = "planned" if self.plan is not None else "unplanned"
        return (
            f"ShardedTransport({self.shard_count} shards, {planned}, "
            f"{self.delivered_count} delivered, {self._in_flight} pending)"
        )
