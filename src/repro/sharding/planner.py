"""Partitioning peers across shards by cutting the coordination-rule graph.

The sharded transport runs one worker (an asyncio task) per shard, so every
coordination-rule edge whose two endpoints live in different shards becomes
*cross-shard* traffic through the inter-shard mailboxes.  The planner's job is
to keep chatty neighbours co-located: it partitions the peers into K balanced
shards while greedily minimising the number of cut import edges — the same
locality argument that makes log-based reconciliation and incremental
integrity checking tractable when the workload is partitioned.

The algorithm is a deterministic greedy min-cut heuristic (exact balanced
min-cut is NP-hard):

1. peers are visited in BFS order over the undirected rule graph, starting
   from the highest-degree peer of each connected component, so neighbours
   are considered back-to-back;
2. each peer goes to the shard holding most of its already-placed neighbours
   (edge weights count parallel rules), subject to a balance cap of
   ``ceil(n / K)`` peers per shard;
3. a bounded refinement pass then moves single peers between shards whenever
   the move reduces the cut without breaking the balance cap.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from math import ceil
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.coordination.rule import CoordinationRule, NodeId
from repro.errors import ReproError

if TYPE_CHECKING:
    from repro.core.system import P2PSystem
    from repro.workloads.topologies import TopologySpec

Edge = tuple[NodeId, NodeId]


@dataclass(frozen=True)
class ShardPlan:
    """An assignment of every peer to one of ``shard_count`` shards."""

    shard_count: int
    shard_of: Mapping[NodeId, int]
    edges: tuple[Edge, ...] = field(default=(), compare=False)

    def __post_init__(self) -> None:
        for node, shard in self.shard_of.items():
            if not 0 <= shard < self.shard_count:
                raise ReproError(
                    f"node {node!r} assigned to shard {shard} "
                    f"outside 0..{self.shard_count - 1}"
                )

    @property
    def nodes(self) -> tuple[NodeId, ...]:
        """All assigned peers, sorted."""
        return tuple(sorted(self.shard_of))

    def shard(self, node: NodeId) -> int:
        """The shard holding ``node``."""
        try:
            return self.shard_of[node]
        except KeyError:
            raise ReproError(
                f"node {node!r} is not covered by the shard plan"
            ) from None

    def members(self, shard: int) -> tuple[NodeId, ...]:
        """The peers of one shard, sorted."""
        return tuple(
            sorted(node for node, owner in self.shard_of.items() if owner == shard)
        )

    @property
    def shard_sizes(self) -> tuple[int, ...]:
        """Number of peers per shard."""
        sizes = [0] * self.shard_count
        for shard in self.shard_of.values():
            sizes[shard] += 1
        return tuple(sizes)

    def cut_edges(self, edges: Iterable[Edge] | None = None) -> tuple[Edge, ...]:
        """The edges whose endpoints live in different shards."""
        candidate = self.edges if edges is None else tuple(edges)
        return tuple(
            (a, b)
            for a, b in candidate
            if a in self.shard_of
            and b in self.shard_of
            and self.shard_of[a] != self.shard_of[b]
        )

    def cut_fraction(self, edges: Iterable[Edge] | None = None) -> float:
        """Cut edges as a fraction of all edges (0.0 when there are no edges)."""
        candidate = self.edges if edges is None else tuple(edges)
        if not candidate:
            return 0.0
        return len(self.cut_edges(candidate)) / len(candidate)

    def __repr__(self) -> str:
        sizes = "/".join(str(size) for size in self.shard_sizes)
        return (
            f"ShardPlan({self.shard_count} shards, sizes {sizes}, "
            f"{len(self.cut_edges())} cut edges)"
        )


class ShardPlanner:
    """Greedy balanced min-cut partitioning of peers into K shards."""

    def __init__(self, shard_count: int, *, refinement_passes: int = 2):
        if shard_count < 1:
            raise ReproError("a shard plan needs at least one shard")
        if refinement_passes < 0:
            raise ReproError("refinement_passes must be non-negative")
        self.shard_count = shard_count
        self.refinement_passes = refinement_passes

    # ------------------------------------------------------------ entry points

    def plan(self, nodes: Iterable[NodeId], edges: Iterable[Edge]) -> ShardPlan:
        """Partition ``nodes`` given undirected affinity ``edges``.

        Parallel edges (several rules between the same pair) count as extra
        affinity weight; self-loops and edges touching unknown nodes are
        ignored.
        """
        node_list = sorted(set(nodes))
        if not node_list:
            raise ReproError("cannot plan shards for an empty network")
        edge_list = tuple(edges)
        shard_count = min(self.shard_count, len(node_list))

        weights: dict[NodeId, dict[NodeId, int]] = defaultdict(lambda: defaultdict(int))
        known = set(node_list)
        for a, b in edge_list:
            if a == b or a not in known or b not in known:
                continue
            weights[a][b] += 1
            weights[b][a] += 1

        capacity = ceil(len(node_list) / shard_count)
        assignment = self._greedy_assign(node_list, weights, shard_count, capacity)
        for _ in range(self.refinement_passes):
            if not self._refine(node_list, weights, assignment, shard_count, capacity):
                break
        return ShardPlan(
            shard_count=shard_count, shard_of=dict(assignment), edges=edge_list
        )

    def plan_topology(self, spec: TopologySpec) -> ShardPlan:
        """Partition a :class:`~repro.workloads.topologies.TopologySpec`."""
        return self.plan(spec.nodes, spec.edges)

    def plan_rules(
        self, rules: Iterable[CoordinationRule], nodes: Iterable[NodeId] = ()
    ) -> ShardPlan:
        """Partition the nodes of a rule set along its dependency edges."""
        rules = list(rules)
        mentioned: set[NodeId] = set(nodes)
        edges: list[Edge] = []
        for rule in rules:
            mentioned.add(rule.target)
            mentioned.update(rule.sources)
            edges.extend(rule.dependency_edges)
        return self.plan(mentioned, edges)

    def plan_system(self, system: P2PSystem) -> ShardPlan:
        """Partition a live :class:`~repro.core.system.P2PSystem`."""
        return self.plan_rules(system.registry, system.nodes)

    # --------------------------------------------------------------- internals

    def _greedy_assign(
        self,
        node_list: list[NodeId],
        weights: Mapping[NodeId, Mapping[NodeId, int]],
        shard_count: int,
        capacity: int,
    ) -> dict[NodeId, int]:
        degree = {node: sum(weights.get(node, {}).values()) for node in node_list}
        assignment: dict[NodeId, int] = {}
        sizes = [0] * shard_count
        visited: set[NodeId] = set()

        # BFS component by component, heaviest peers first, so each peer is
        # placed right after the neighbours it talks to most.
        for seed in sorted(node_list, key=lambda n: (-degree[n], n)):
            if seed in visited:
                continue
            queue = deque([seed])
            visited.add(seed)
            while queue:
                node = queue.popleft()
                assignment[node] = self._best_shard(
                    node, weights, assignment, sizes, shard_count, capacity
                )
                sizes[assignment[node]] += 1
                for neighbour in sorted(
                    weights.get(node, {}), key=lambda n: (-weights[node][n], n)
                ):
                    if neighbour not in visited:
                        visited.add(neighbour)
                        queue.append(neighbour)
        return assignment

    @staticmethod
    def _best_shard(
        node: NodeId,
        weights: Mapping[NodeId, Mapping[NodeId, int]],
        assignment: Mapping[NodeId, int],
        sizes: list[int],
        shard_count: int,
        capacity: int,
    ) -> int:
        affinity = [0] * shard_count
        for neighbour, weight in weights.get(node, {}).items():
            owner = assignment.get(neighbour)
            if owner is not None:
                affinity[owner] += weight
        open_shards = [s for s in range(shard_count) if sizes[s] < capacity]
        if not open_shards:  # pragma: no cover - capacity covers all nodes
            open_shards = list(range(shard_count))
        # Most affinity wins; ties go to the emptiest shard so components
        # without edges spread out instead of piling into shard 0.
        return min(open_shards, key=lambda s: (-affinity[s], sizes[s], s))

    @staticmethod
    def _refine(
        node_list: list[NodeId],
        weights: Mapping[NodeId, Mapping[NodeId, int]],
        assignment: dict[NodeId, int],
        shard_count: int,
        capacity: int,
    ) -> bool:
        """One local-move sweep; returns True when any move improved the cut."""
        sizes = [0] * shard_count
        for shard in assignment.values():
            sizes[shard] += 1
        improved = False
        for node in node_list:
            current = assignment[node]
            affinity = [0] * shard_count
            for neighbour, weight in weights.get(node, {}).items():
                affinity[assignment[neighbour]] += weight
            best = current
            for shard in range(shard_count):
                if shard == current or sizes[shard] + 1 > capacity:
                    continue
                if affinity[shard] > affinity[best]:
                    best = shard
            if best != current:
                assignment[node] = best
                sizes[current] -= 1
                sizes[best] += 1
                improved = True
        return improved


def round_robin_plan(nodes: Iterable[NodeId], shard_count: int) -> ShardPlan:
    """A locality-blind baseline plan (node *i* → shard *i* mod K).

    Exists so tests and experiments can quantify how much cut traffic the
    greedy planner saves over not planning at all.
    """
    node_list = sorted(set(nodes))
    if not node_list:
        raise ReproError("cannot plan shards for an empty network")
    shard_count = min(shard_count, len(node_list))
    return ShardPlan(
        shard_count=shard_count,
        shard_of={node: i % shard_count for i, node in enumerate(node_list)},
    )
