"""The third execution engine: the protocol phases over a sharded transport.

:class:`ShardedEngine` implements the same :class:`~repro.api.engine.ExecutionEngine`
protocol as :class:`~repro.api.engine.SyncEngine` and
:class:`~repro.api.engine.AsyncEngine`, so ``Session.run(...)`` and every
registered update strategy work unchanged over a partitioned network.  Its one
extra responsibility is *planning*: on first use it partitions the system's
peers across the transport's shards by cutting the coordination-rule graph
(unless a plan was applied explicitly), and after each run it attaches a
:class:`~repro.stats.collector.ShardTrafficStats` to the snapshot so
experiments can read per-shard and cross-shard traffic uniformly.
"""

from __future__ import annotations

import asyncio
from dataclasses import replace
from typing import TYPE_CHECKING, Iterable

from repro.api.engine import finalize_phase, start_phase
from repro.coordination.rule import NodeId
from repro.errors import ReproError
from repro.obs import tracer_of
from repro.sharding.planner import ShardPlanner
from repro.sharding.transport import ShardedTransport
from repro.stats.collector import ShardTrafficStats, StatsSnapshot

if TYPE_CHECKING:
    from repro.core.system import P2PSystem


class ShardedEngine:
    """Engine for the partitioned transport (one worker per shard)."""

    name = "sharded"

    def __init__(self, planner: ShardPlanner | None = None):
        self.planner = planner

    def _check(self, system: P2PSystem) -> ShardedTransport:
        transport = system.transport
        if not isinstance(transport, ShardedTransport):
            raise ReproError(
                "the sharded engine needs a ShardedTransport; "
                "use Session.run (which picks the engine) or build the system "
                "with transport='sharded'"
            )
        return transport

    def _ensure_plan(self, system: P2PSystem, transport: ShardedTransport) -> None:
        if transport.plan is not None:
            return
        planner = self.planner or ShardPlanner(transport.shard_count)
        transport.apply_plan(planner.plan_system(system))

    def traffic_stats(
        self, transport: ShardedTransport, snapshot: StatsSnapshot
    ) -> ShardTrafficStats:
        """Assemble the per-shard traffic view of one run."""
        tuples_by_shard = {shard.index: 0 for shard in transport.shards}
        for node_id, node_stats in snapshot.nodes.items():
            shard = transport.shard_of(node_id)
            tuples_by_shard[shard] = (
                tuples_by_shard.get(shard, 0) + node_stats.tuples_received
            )
        return ShardTrafficStats(
            shard_count=transport.shard_count,
            messages_by_shard=transport.shard_message_counts(),
            tuples_by_shard=tuples_by_shard,
            cross_shard_messages=transport.cross_shard_messages,
            intra_shard_messages=transport.intra_shard_messages,
        )

    def run(
        self, system, phase: str, origins: Iterable[NodeId] | None = None
    ) -> tuple[float, StatsSnapshot]:
        self._check(system)
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            pass
        else:
            raise ReproError(
                "the blocking run() was called from inside an event loop; "
                "use 'await session.run_async(...)' there"
            )
        return asyncio.run(self.run_async(system, phase, origins))

    async def run_async(
        self, system, phase: str, origins: Iterable[NodeId] | None = None
    ) -> tuple[float, StatsSnapshot]:
        transport = self._check(system)
        tracer = tracer_of(system)
        with tracer.span("plan", shards=transport.shard_count):
            self._ensure_plan(system, transport)
        start_phase(system, phase, origins)
        with tracer.span("chase", engine=self.name) as span:
            completion = await transport.run_until_quiescent()
            span.set(
                delivered=transport.delivered_count,
                cross_shard=transport.cross_shard_messages,
            )
        finalize_phase(system, phase)
        snapshot = system.stats.snapshot()
        snapshot = replace(
            snapshot, sharding=self.traffic_stats(transport, snapshot)
        )
        return completion, snapshot
