"""Socket-backed shard hosts: the partitioned engines across machines.

Every engine so far — sharded, multiproc, pooled — confines all K shards to
one box's cores, which caps the sweeps near 1023 nodes.  The paper's
coordination model is inherently distributed (peers on different machines
exchanging update messages), and the pool's delta-sync protocol and
cumulative-counter quiescence barrier are already transport-shaped for the
wire.  This module puts them on it:

* :class:`ShardHost` is a standalone server process
  (``python -m repro.shardhost --bind HOST:PORT``) that can run anywhere and
  hosts one or more shard workers — the exact persistent worker loop of
  :func:`repro.sharding.pool._pool_worker_main`, run as threads inside the
  host process (one *process per host*, so a cluster of hosts is what buys
  multi-core/multi-machine parallelism).
* :class:`SocketPool` is the coordinator side: it dials a list of hosts over
  TCP, ships each its pickled :class:`~repro.sharding.multiproc.ShardWorld`\\ s
  with length-prefixed framing, and drives the same delta-sync protocol and
  cumulative-counter quiescence barrier as the in-box
  :class:`~repro.sharding.pool.WorkerPool` — over sockets instead of
  ``mp.Queue``\\ s.  Inter-shard messages between workers on *different* hosts
  route through the coordinator (hub-and-spoke: hosts never need to reach
  each other, only the coordinator needs to reach the hosts); workers
  co-hosted on one host exchange messages directly in memory.
* :class:`SocketEngine` / :class:`PooledSocketEngine` expose it behind the
  usual :class:`~repro.api.engine.ExecutionEngine` protocol
  (``transport="socket"``, plus ``pool=True`` for the warm variant that keeps
  host connections and workers alive between runs, re-shipping only
  structural deltas).
* :class:`LocalHostCluster` auto-spawns K localhost hosts as subprocesses, so
  tests, benchmarks and CI need no real cluster: a system built with
  ``transport="socket"`` and no ``hosts`` list gets one spawned on demand
  (and torn down by ``session.close()``).

Liveness mirrors the pool's crashed-worker handling: every await loop checks
the host connections, a dead host surfaces as a
:class:`~repro.errors.NetworkError` (never a silent stall), and the next run
reconnects — respawning auto-spawned hosts that died.

Trust model: frames are **pickles**.  Unpickling executes code, so a shard
host must only ever listen on localhost or inside a trusted network segment —
the same deployment boundary as every pickle-based RPC (and as the
``multiprocessing`` spawn pipes this replaces).  Hosts also run the same
``repro`` codebase as the coordinator; version skew is not negotiated.
"""

from __future__ import annotations

import atexit
import copy
import os
import pickle
import queue as queue_module
import select
import socket
import struct
import subprocess
import sys
import tempfile
import threading
import time
import traceback
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.coordination.rule import NodeId
from repro.errors import NetworkError, ReproError
from repro.faults.injector import NULL_INJECTOR, injector_of
from repro.faults.recovery import retry_call
from repro.network.latency import LatencyModel
from repro.obs import NULL_TRACER, get_logger, tracer_of
from repro.sharding.multiproc import (
    _WORKER_TIMEOUT,
    MultiprocEngine,
    MultiprocTransport,
    ShardWorld,
    _await_replies,
    _quiescence_rounds,
    _worlds_from_system,
)
from repro.sharding.planner import ShardPlan, ShardPlanner
from repro.sharding.pool import (
    SyncDelta,
    WarmPoolLifecycle,
    WorldMirror,
    _pool_worker_main,
)
from repro.stats.collector import StatisticsCollector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.system import P2PSystem

#: Hard bound on one frame's pickled payload.  Large enough for a shipped
#: world at the 1000+-node sweeps, small enough that a corrupt or hostile
#: length header cannot make the receiver allocate unbounded memory.
DEFAULT_MAX_FRAME = 256 * 1024 * 1024

#: The line a shard host prints (and flushes) once its listener is bound —
#: what :class:`LocalHostCluster` parses to learn an auto-assigned port.
HOST_ANNOUNCE = "shardhost listening on "

#: Seconds the spawn helper waits for a host subprocess to announce itself.
_SPAWN_TIMEOUT = 30.0

#: Seconds the coordinator allows for the TCP connect to one host.
_CONNECT_TIMEOUT = 10.0

_FRAME_HEADER = struct.Struct(">Q")

_log = get_logger("sockets")


def parse_address(address: str) -> tuple[str, int]:
    """Split ``"HOST:PORT"`` into a ``(host, port)`` pair."""
    host, separator, port_text = address.rpartition(":")
    if not separator or not host:
        raise ReproError(
            f"invalid shard-host address {address!r}; expected 'HOST:PORT'"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ReproError(f"invalid port in shard-host address {address!r}") from None
    return host, port


# -------------------------------------------------------------------- framing
#
# Wire format: an 8-byte big-endian length followed by that many bytes of
# pickle.  The receive side never trusts the header — an oversized length
# fails before any payload is read, and a connection that closes mid-frame is
# a distinct, diagnosable error (a crashed host, not a protocol bug).


class ConnectionClosed(NetworkError):
    """The peer closed the connection cleanly at a frame boundary."""


class _IdleTimeout(Exception):
    """A timed read expired while *no* frame was in progress.

    Long-lived connections (a warm pool between runs, a host waiting for its
    coordinator's next command) legitimately idle for minutes; their readers
    catch this and keep waiting.  A timeout once any frame byte has arrived
    is never idle — that peer is wedged, and it surfaces as a
    :class:`~repro.errors.NetworkError` instead.
    """


def _recv_exact(sock: socket.socket, count: int, *, idle_ok: bool = False) -> bytes:
    """Read exactly ``count`` bytes, surviving arbitrarily partial reads."""
    chunks: list[bytes] = []
    received = 0
    while received < count:
        try:
            chunk = sock.recv(min(count - received, 1 << 20))
        except TimeoutError:
            if idle_ok and not chunks:
                raise _IdleTimeout() from None
            raise NetworkError(
                f"socket read timed out mid-frame ({received} of {count} "
                "bytes read); the peer appears wedged"
            ) from None
        except OSError as error:
            raise NetworkError(f"socket read failed: {error}") from None
        if not chunk:
            if not chunks:
                raise ConnectionClosed("connection closed")
            raise NetworkError(
                f"connection closed mid-frame ({received} of {count} bytes read)"
            )
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: socket.socket,
    *,
    max_frame: int = DEFAULT_MAX_FRAME,
    idle_ok: bool = False,
):
    """Receive one length-prefixed pickled frame.

    With ``idle_ok`` a read timeout *between* frames raises
    :class:`_IdleTimeout` (the caller's loop continues); once the header has
    started arriving, timeouts are hard errors like everywhere else.
    """
    header = _recv_exact(sock, _FRAME_HEADER.size, idle_ok=idle_ok)
    (length,) = _FRAME_HEADER.unpack(header)
    if length > max_frame:
        raise NetworkError(
            f"incoming frame of {length} bytes exceeds the {max_frame}-byte "
            "bound (max_frame); refusing to allocate"
        )
    try:
        payload = _recv_exact(sock, length)
    except ConnectionClosed:
        # The header arrived, so this is not a clean frame-boundary close:
        # diagnose it as the truncated frame it is.
        raise NetworkError(
            f"connection closed mid-frame (0 of {length} payload bytes read)"
        ) from None
    try:
        return pickle.loads(payload)
    except Exception as error:  # pickle raises a zoo of types
        raise NetworkError(f"could not unpickle a frame: {error}") from None


class _FrameWriter:
    """Serialised frame sends over one socket (many threads, one writer lock)."""

    def __init__(self, sock: socket.socket, max_frame: int):
        self._sock = sock
        self._max_frame = max_frame
        self._lock = threading.Lock()

    def send(self, obj) -> None:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        if len(payload) > self._max_frame:
            raise NetworkError(
                f"outgoing frame of {len(payload)} bytes exceeds the "
                f"{self._max_frame}-byte bound (max_frame)"
            )
        header = _FRAME_HEADER.pack(len(payload))
        try:
            # Two sendalls under the one lock: frame atomicity without
            # materialising header+payload (a second full-size copy of a
            # world-sized frame) just to concatenate.
            with self._lock:
                self._sock.sendall(header)
                self._sock.sendall(payload)
        except OSError as error:
            raise NetworkError(f"socket write failed: {error}") from None


# ------------------------------------------------------------- the host side


class _RemoteOutbox:
    """A worker's outbox for a shard living on another host.

    Quacks like the local inbox queues: :meth:`put` takes the worker
    transport's ``("msg", deliver_at, message)`` tuple and frames it to the
    coordinator (tagged with the target shard), which routes it onward.
    """

    def __init__(self, writer: _FrameWriter, target_shard: int):
        self._writer = writer
        self._target = target_shard

    def put(self, item) -> None:
        _kind, deliver_at, message = item
        self._writer.send(("msg", self._target, deliver_at, message))


def _host_worker(
    world: ShardWorld, routing: list, results, isolate: bool
) -> None:
    """One hosted shard worker: isolate the world, run the persistent loop.

    Workers co-hosted on one host are threads sharing the unpickled
    ``worlds`` frame, but the worker loop mutates its world's schemas and
    databases — with ``isolate`` each thread gets a private deep copy,
    restoring the separation that distinct processes give the mp engines
    for free.  A host running a *single* worker skips the copy (nothing
    shares the world), which matters at large worlds: the default
    one-shard-per-host layout would otherwise hold every world twice.
    """
    try:
        if isolate:
            world = copy.deepcopy(world)
    except BaseException:  # noqa: BLE001 - shipped to the coordinator
        results.put(("error", world.shard_index, traceback.format_exc()))
        return
    _pool_worker_main(world, routing, results)


class ShardHost:
    """A server process hosting shard workers for one coordinator at a time.

    The host accepts a TCP connection, receives its workers' worlds, runs
    them as persistent threads (the same command loop the worker pool uses:
    ``start`` / ``msg`` / ``ping`` / ``sync`` / ``collect`` / ``stop``), and
    forwards their replies back over the wire.  When the coordinator
    disconnects — or sends ``teardown`` — the workers are stopped and the
    host loops back to ``accept``, ready for the next coordinator, so a
    fleet of hosts can serve many successive runs without respawning.
    """

    def __init__(
        self,
        bind: tuple[str, int] = ("127.0.0.1", 0),
        *,
        max_frame: int = DEFAULT_MAX_FRAME,
    ):
        self.max_frame = max_frame
        self._listener = socket.create_server(bind, backlog=4)
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._shutdown = False
        self._conn: socket.socket | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (useful with ``--bind HOST:0``)."""
        return self.address[1]

    # -------------------------------------------------------------- lifecycle

    def serve_forever(self) -> None:
        """Accept and serve coordinators until :meth:`close` is called."""
        while not self._shutdown:
            try:
                conn, _peer = self._listener.accept()
            except OSError:
                break  # listener closed by close()
            self._conn = conn
            try:
                self._serve_connection(conn)
            finally:
                self._conn = None
                try:
                    conn.close()
                except OSError:  # pragma: no cover - teardown race
                    pass

    def start(self) -> "ShardHost":
        """Serve in a daemon thread (in-process hosts for tests)."""
        if self._thread is None:
            self._thread = threading.Thread(target=self.serve_forever, daemon=True)
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving: close the listener and any live connection."""
        self._shutdown = True
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass
        conn = self._conn
        if conn is not None:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def __enter__(self) -> "ShardHost":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ connection

    def _serve_connection(self, conn: socket.socket) -> None:
        # A timed socket bounds every blocking call: a wedged coordinator
        # (connected, not draining) cannot hold this host's writes forever.
        # Reads tolerate idling — the coordinator may sit quiet for minutes
        # between warm runs — via the _IdleTimeout continue below.
        conn.settimeout(_WORKER_TIMEOUT)
        writer = _FrameWriter(conn, self.max_frame)
        inboxes: dict[int, queue_module.Queue] = {}
        threads: list[threading.Thread] = []
        results: queue_module.Queue = queue_module.Queue()
        forwarder: threading.Thread | None = None
        stop_sentinel = object()

        def stop_workers() -> None:
            nonlocal forwarder
            for inbox in inboxes.values():
                inbox.put(("stop",))
            for thread in threads:
                thread.join(timeout=5.0)
            inboxes.clear()
            threads.clear()
            if forwarder is not None:
                results.put(stop_sentinel)
                forwarder.join(timeout=5.0)
                forwarder = None

        def forward_results() -> None:
            while True:
                item = results.get()
                if item is stop_sentinel:
                    return
                try:
                    writer.send(item)
                except NetworkError as error:
                    # A reply too big to frame must not become a silent
                    # stall: tell the coordinator which shard's reply was
                    # dropped (a tiny control frame) and keep forwarding —
                    # other workers' replies may still fit.  If even that
                    # fails the connection itself is gone; teardown follows
                    # via the recv loop.
                    shard = (
                        item[1]
                        if len(item) > 1 and isinstance(item[1], int)
                        else -1
                    )
                    try:
                        writer.send(
                            (
                                "error",
                                shard,
                                f"could not ship a {item[0]!r} reply: {error}",
                            )
                        )
                    except NetworkError:
                        return

        try:
            while True:
                try:
                    frame = recv_frame(conn, max_frame=self.max_frame, idle_ok=True)
                except _IdleTimeout:
                    continue  # a quiet coordinator is a healthy coordinator
                except ConnectionClosed:
                    return
                except NetworkError:
                    return  # unframeable input: drop the coordinator
                try:
                    kind = frame[0]
                    if kind == "worlds":
                        stop_workers()  # a re-ship replaces previous workers
                        total, worlds = frame[1], frame[2]
                        inboxes = {
                            world.shard_index: queue_module.Queue()
                            for world in worlds
                        }
                        routing = [
                            inboxes[shard]
                            if shard in inboxes
                            else _RemoteOutbox(writer, shard)
                            for shard in range(total)
                        ]
                        threads = [
                            threading.Thread(
                                target=_host_worker,
                                args=(world, routing, results, len(worlds) > 1),
                                daemon=True,
                            )
                            for world in worlds
                        ]
                        forwarder = threading.Thread(
                            target=forward_results, daemon=True
                        )
                        forwarder.start()
                        for thread in threads:
                            thread.start()
                    elif kind == "start":
                        # Frame layout matches the mp-pool inbox tuple; the
                        # optional 4th slot carries the update mode (None or
                        # "incremental") and is absent in frames from older
                        # coordinators.
                        start_mode = frame[3] if len(frame) > 3 else None
                        for inbox in inboxes.values():
                            inbox.put(("start", frame[1], frame[2], start_mode))
                    elif kind == "msg":
                        inbox = inboxes.get(frame[1])
                        if inbox is None:
                            writer.send(
                                (
                                    "error",
                                    frame[1],
                                    "message routed to a non-hosted shard",
                                )
                            )
                        else:
                            inbox.put(("msg", frame[2], frame[3]))
                    elif kind == "ping":
                        inbox = inboxes.get(frame[2])
                        if inbox is None:
                            writer.send(
                                ("error", frame[2], "ping for a non-hosted shard")
                            )
                        else:
                            inbox.put(("ping", frame[1]))
                    elif kind == "sync":
                        inbox = inboxes.get(frame[1])
                        if inbox is None:
                            writer.send(
                                ("error", frame[1], "sync for a non-hosted shard")
                            )
                        else:
                            inbox.put(("sync", frame[2]))
                    elif kind == "collect":
                        for inbox in inboxes.values():
                            inbox.put(("collect",))
                    elif kind == "teardown":
                        stop_workers()
                    else:
                        writer.send(("error", -1, f"unknown frame kind {kind!r}"))
                except (TypeError, IndexError, AttributeError) as error:
                    # A well-pickled frame of the wrong *shape* (version
                    # skew, a buggy client): report it and drop this
                    # coordinator — the host must outlive any one client.
                    try:
                        writer.send(("error", -1, f"malformed frame: {error}"))
                    except NetworkError:
                        pass
                    return
                except NetworkError:
                    # An inline reply (a non-hosted-shard or unknown-kind
                    # error frame) failed to write: the coordinator is gone
                    # or wedged.  Drop it; the host must outlive any client.
                    return
        finally:
            stop_workers()


# ------------------------------------------------------- the coordinator side


class _HostLink:
    """One coordinator↔host connection: framed sends plus a reader thread.

    The reader routes cross-host ``msg`` frames through the pool (the
    hub-and-spoke path) and funnels every other reply into the pool's shared
    results queue — the queue :func:`_await_replies` and the quiescence
    rounds already know how to drain.  A closed or failing connection flips
    :attr:`alive`, which the liveness checks read.
    """

    def __init__(self, address: str, results, router, max_frame: int):
        self.address = address
        self.alive = False
        self.exitcode: str | None = None
        self.injector = NULL_INJECTOR
        self._results = results
        self._router = router
        self._max_frame = max_frame
        host, port = parse_address(address)
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=_CONNECT_TIMEOUT
            )
        except OSError as error:
            raise NetworkError(
                f"cannot connect to shard host {address}: {error}"
            ) from None
        # Keep the socket timed: a wedged host (alive TCP, not reading or
        # not sending) must bound sendall and mid-frame reads instead of
        # blocking forever.  Idle reads between frames are tolerated in
        # _read_loop — a warm pool legitimately sits quiet between runs.
        self._sock.settimeout(_WORKER_TIMEOUT)
        self._writer = _FrameWriter(self._sock, max_frame)
        self.alive = True
        _log.debug("connected to shard host %s", address)
        self._reader = threading.Thread(target=self._read_loop, daemon=True)
        self._reader.start()

    def _read_loop(self) -> None:
        try:
            while True:
                try:
                    frame = recv_frame(
                        self._sock, max_frame=self._max_frame, idle_ok=True
                    )
                except _IdleTimeout:
                    continue  # no frame in progress; keep listening
                try:
                    if frame[0] == "msg":
                        self._router(frame[1], frame[2], frame[3])
                    else:
                        self._results.put(frame)
                except (TypeError, IndexError, KeyError) as error:
                    # A well-pickled frame of the wrong shape (version skew,
                    # a buggy host) must read as a protocol failure on this
                    # link, not kill the reader with a bare traceback and a
                    # misleading "lost connection" diagnosis.
                    raise NetworkError(
                        f"malformed frame from shard host {self.address}: "
                        f"{error!r}"
                    ) from None
        except NetworkError as error:
            self.exitcode = str(error)
        finally:
            self.alive = False

    def send(self, obj) -> None:
        injector = self.injector
        if not injector.enabled:
            self._send_raw(obj)
            return

        def attempt() -> None:
            # A simulated partition blocks the write but leaves the TCP
            # connection intact, so it must not flip ``alive`` — raising
            # before the raw send keeps the two failure modes distinct.
            injector.check_partition(self.address)
            self._send_raw(obj)

        policy = injector.retry_policy
        if policy is None:
            attempt()
        else:
            retry_call(attempt, policy=policy, on_retry=injector.note_retry)

    def _send_raw(self, obj) -> None:
        try:
            self._writer.send(obj)
        except NetworkError:
            self.alive = False
            raise

    def close(self) -> None:
        self.alive = False
        # shutdown() first: close() alone does not send FIN (nor wake this
        # link's reader) while the reader thread is blocked in recv on the
        # same fd, which would leave the host serving a dead connection.
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # peer already gone
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already closed
            pass


class _ShardLiveness:
    """Presents one shard's host link through the worker-liveness protocol.

    :func:`repro.sharding.multiproc._check_workers` expects per-shard objects
    with ``is_alive()`` and ``exitcode``; for a socket shard, "the worker
    died" means "its host's connection is gone".
    """

    def __init__(self, link: _HostLink):
        self._link = link

    def is_alive(self) -> bool:
        return self._link.alive

    @property
    def exitcode(self) -> str:
        return self._link.exitcode or f"lost connection to {self._link.address}"


class _PingChannel:
    """Per-shard ping outlet with the inbox ``put`` shape the barrier expects."""

    def __init__(self, link: _HostLink, shard: int):
        self._link = link
        self._shard = shard

    def put(self, item) -> None:
        self._link.send(("ping", item[1], self._shard))


class SocketPool:
    """K shard workers behind TCP host connections (spawn once, run many).

    The socket twin of :class:`~repro.sharding.pool.WorkerPool`: shards are
    assigned to hosts round-robin, each host receives its workers' worlds
    once, and successive runs drive the same delta-sync protocol and
    cumulative-counter quiescence barrier — framed over the wire.  Any
    failure (a dead host, a stalled barrier, an exceeded message bound)
    closes the pool; the engines respawn/reconnect on the next run.
    """

    def __init__(
        self,
        plan: ShardPlan,
        worlds: list[ShardWorld],
        hosts: Sequence[str],
        *,
        max_frame: int = DEFAULT_MAX_FRAME,
        injector=NULL_INJECTOR,
    ):
        if len(worlds) != plan.shard_count:
            raise ReproError(
                f"the pool needs one world per shard: got {len(worlds)} "
                f"worlds for {plan.shard_count} shards"
            )
        if not hosts:
            raise ReproError("the socket pool needs at least one shard host")
        if len(set(hosts)) != len(hosts):
            raise NetworkError(
                f"duplicate shard-host addresses in {tuple(hosts)}; list "
                "each host once (shards are assigned round-robin across them)"
            )
        self.plan = plan
        # Round-robin assignment uses at most one host per shard, so hosts
        # past the shard count would never own a worker — don't dial them,
        # and never let an idle machine's restart fail a run.  (Trimming
        # preserves the mapping: shard % len(hosts[:K]) == shard % len(hosts)
        # for shard < K ≤ len(hosts).)
        self.hosts = tuple(hosts)[: plan.shard_count]
        self.closed = False
        self._injector = injector
        self._max_frame = max_frame
        self._max_messages = worlds[0].max_messages if worlds else 1_000_000
        self._mirror = WorldMirror(worlds)
        self._host_of_shard = {
            shard: shard % len(self.hosts) for shard in range(plan.shard_count)
        }
        self._results: queue_module.Queue = queue_module.Queue()
        self._links: list[_HostLink] = []
        try:
            for address in self.hosts:
                link = _HostLink(address, self._results, self._route, max_frame)
                link.injector = injector
                self._links.append(link)
            for host_index, link in enumerate(self._links):
                link.send(
                    (
                        "worlds",
                        plan.shard_count,
                        [
                            world
                            for world in worlds
                            if self._host_of_shard[world.shard_index] == host_index
                        ],
                    )
                )
            _await_replies(self._results, "ready", plan.shard_count, self._liveness)
        except BaseException:
            self.close()
            raise

    @classmethod
    def spawn(
        cls,
        system: P2PSystem,
        plan: ShardPlan,
        hosts: Sequence[str],
        *,
        max_frame: int = DEFAULT_MAX_FRAME,
        injector=NULL_INJECTOR,
    ) -> "SocketPool":
        """Open a pool over the live system's current state."""
        return cls(
            plan,
            _worlds_from_system(system, plan),
            hosts,
            max_frame=max_frame,
            injector=injector,
        )

    # ------------------------------------------------------------------ status

    @property
    def shard_count(self) -> int:
        """Number of shard workers across all hosts."""
        return self.plan.shard_count

    @property
    def alive(self) -> bool:
        """True while the pool is open and every host connection lives."""
        return not self.closed and all(link.alive for link in self._links)

    @property
    def _liveness(self) -> list[_ShardLiveness]:
        return [
            _ShardLiveness(self._links[self._host_of_shard[shard]])
            for shard in range(self.shard_count)
        ]

    @property
    def injector(self):
        """The fault injector driving this pool's chaos hooks."""
        return self._injector

    @injector.setter
    def injector(self, injector) -> None:
        self._injector = injector
        for link in self._links:
            link.injector = injector

    def host_of(self, shard: int) -> str:
        """The host address a shard's worker runs on."""
        return self.hosts[self._host_of_shard[shard]]

    def kill_worker(self, shard: int) -> None:
        """Sever the connection to the host owning ``shard`` (chaos kill).

        The host itself survives — its read loop sees the close, stops its
        workers and loops back to ``accept`` — so the next (re)spawned pool
        can reconnect, which is exactly the crash-recovery path the fault
        suite exercises.
        """
        self._links[self._host_of_shard[shard]].close()

    # --------------------------------------------------------------- routing

    def _route(self, target: int, deliver_at: float, message) -> None:
        """Forward one cross-host message to the host owning ``target``."""
        link = self._links[self._host_of_shard[target]]
        try:
            link.send(("msg", target, deliver_at, message))
        except NetworkError:
            # The run is doomed; surface it through the results queue so the
            # await loops fail fast instead of stalling out the barrier.
            self._results.put(
                (
                    "error",
                    target,
                    f"lost connection to {link.address} while routing a "
                    "cross-host message",
                )
            )

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Tear down the workers and drop the connections (idempotent).

        The hosts themselves stay up — they loop back to ``accept`` for the
        next coordinator; only this coordinator's workers stop.
        """
        if self.closed:
            return
        self.closed = True
        for link in self._links:
            if link.alive:
                try:
                    link.send(("teardown",))
                except NetworkError:  # pragma: no cover - teardown race
                    pass
            link.close()

    def __enter__(self) -> "SocketPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _require_open(self) -> None:
        if self.closed:
            raise ReproError("the socket pool is closed")
        for link in self._links:
            if not link.alive:
                raise NetworkError(
                    f"lost connection to shard host {link.address} "
                    f"({link.exitcode or 'connection dropped'}); "
                    "the pool must be respawned"
                )

    # --------------------------------------------------------------- re-plan

    def plan_if_stale(
        self, system: P2PSystem, planner: ShardPlanner
    ) -> ShardPlan | None:
        """Re-plan after a rule-graph change (see :class:`WorldMirror`)."""
        return self._mirror.plan_if_stale(self.plan, system, planner)

    # ------------------------------------------------------------------ runs

    def sync(self, system: P2PSystem) -> SyncDelta:
        """Ship the coordinator's changes since the last run to the hosts.

        Warm repeat runs re-ship only the structural delta — inserted rows,
        wholesale relation replaces, rule add/removes — never the schemas or
        unchanged data; an empty delta ships nothing at all.
        """
        self._require_open()
        delta = self._mirror.delta(system)
        if not delta.empty:
            for shard in range(self.shard_count):
                self._links[self._host_of_shard[shard]].send(
                    ("sync", shard, delta.for_shard(self.plan, shard))
                )
            self._mirror.note_synced(system)
        self._injector.fire("sync", self)
        return delta

    def run_phase(
        self,
        phase: str,
        origins: Iterable[NodeId],
        *,
        tracer=None,
        mode: str | None = None,
    ) -> list[dict]:
        """Drive one phase over the hosted workers and collect their payloads.

        ``mode="incremental"`` is forwarded to the hosted workers, which run
        the delta-driven update path when their accumulated sync deltas agree
        it is safe (see :func:`repro.sharding.pool._pool_worker_main`).
        """
        tracer = tracer if tracer is not None else NULL_TRACER
        try:
            self._require_open()
            origin_list = tuple(origins)
            for link in self._links:
                link.send(("start", phase, origin_list, mode))
            self._injector.fire("chase", self)
            with tracer.span("quiescence") as quiescence_span:
                rounds = _quiescence_rounds(
                    self._results,
                    [
                        _PingChannel(self._links[self._host_of_shard[shard]], shard)
                        for shard in range(self.shard_count)
                    ],
                    self.shard_count,
                    self._max_messages,
                    self._liveness,
                )
                quiescence_span.set(rounds=rounds)
            self._injector.fire("quiescence", self)
            with tracer.span("collect"):
                for link in self._links:
                    link.send(("collect",))
                collected = _await_replies(
                    self._results, "collected", self.shard_count, self._liveness
                )
        except BaseException:
            self.close()
            raise
        payloads = [payload for _shard, payload in sorted(collected.items())]
        self._mirror.note_collected(payloads)
        return payloads

    def __repr__(self) -> str:
        state = "closed" if self.closed else ("alive" if self.alive else "dead")
        return (
            f"SocketPool({self.shard_count} shards over "
            f"{len(self.hosts)} hosts, {state})"
        )


# ------------------------------------------------------- localhost auto-spawn


class LocalHostCluster:
    """K localhost shard hosts as subprocesses (tests and CI need no cluster).

    Each host is ``python -m repro.shardhost --bind 127.0.0.1:0``; the
    OS-assigned port is read from the host's announce line.  The cluster can
    :meth:`ensure_alive` (respawning hosts that died — the *respawn* half of
    the reconnect-and-respawn story) and registers an ``atexit`` hook so
    stray host processes never outlive the coordinator.
    """

    def __init__(self, count: int, *, python: str | None = None):
        if count < 1:
            raise ReproError("a local host cluster needs at least one host")
        self._python = python or sys.executable
        self._processes: list[subprocess.Popen] = []
        self._stderr_files: dict[subprocess.Popen, object] = {}
        self.addresses: list[str] = []
        try:
            # Launch every host first (Popen returns immediately), then wait
            # for the announces: the interpreter start-ups overlap, so a
            # K-host cluster pays roughly one start-up, not K in sequence.
            for _ in range(count):
                self._processes.append(self._launch_one())
            for process in self._processes:
                self.addresses.append(self._read_announce(process))
        except BaseException:
            self.close()
            raise
        _log.debug("spawned %d local shard host(s): %s", count, self.addresses)
        atexit.register(self.close)

    def _launch_one(self) -> subprocess.Popen:
        import repro

        env = dict(os.environ)
        package_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            os.pathsep.join([package_root, existing]) if existing else package_root
        )
        # stderr goes to an unnamed temp file, not a pipe: nobody drains the
        # host's stderr for its (long) lifetime, and a filled pipe buffer
        # would block the host mid-write — a stall with no visible cause.
        # The file keeps the output readable for spawn-failure diagnostics.
        stderr_file = tempfile.TemporaryFile(mode="w+")
        process = subprocess.Popen(
            [self._python, "-m", "repro.shardhost", "--bind", "127.0.0.1:0"],
            stdout=subprocess.PIPE,
            stderr=stderr_file,
            text=True,
            env=env,
        )
        self._stderr_files[process] = stderr_file
        return process

    def _read_announce(self, process: subprocess.Popen) -> str:
        line = ""
        deadline = time.monotonic() + _SPAWN_TIMEOUT
        while time.monotonic() < deadline:
            if process.poll() is not None:
                break
            ready, _, _ = select.select([process.stdout], [], [], 0.5)
            if ready:
                line = process.stdout.readline()
                break
        if not line.startswith(HOST_ANNOUNCE):
            stderr = ""
            stderr_file = self._stderr_files.get(process)
            try:
                process.kill()
                process.wait(timeout=5.0)
                if stderr_file is not None:
                    stderr_file.seek(0)
                    stderr = stderr_file.read()
            except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
                pass
            raise NetworkError(
                "failed to spawn a local shard host "
                f"(announce was {line!r}): {stderr.strip()}"
            )
        return line[len(HOST_ANNOUNCE):].strip()

    @property
    def host_count(self) -> int:
        """Number of host processes in the cluster."""
        return len(self._processes)

    @property
    def alive(self) -> bool:
        """True while every host process is running."""
        return bool(self._processes) and all(
            process.poll() is None for process in self._processes
        )

    def ensure_alive(self) -> list[str]:
        """Respawn any host process that died; return the live addresses."""
        for index, process in enumerate(self._processes):
            if process.poll() is not None:
                _log.warning(
                    "local shard host %s died (exit %s); respawning",
                    self.addresses[index],
                    process.returncode,
                )
                self._reap(process)
                replacement = self._launch_one()
                self._processes[index] = replacement
                self.addresses[index] = self._read_announce(replacement)
        return list(self.addresses)

    def _reap(self, process: subprocess.Popen) -> None:
        if process.stdout is not None:
            process.stdout.close()
        stderr_file = self._stderr_files.pop(process, None)
        if stderr_file is not None:
            stderr_file.close()

    def close(self) -> None:
        """Terminate every host process (idempotent)."""
        atexit.unregister(self.close)
        processes, self._processes = self._processes, []
        self.addresses = []
        for process in processes:
            if process.poll() is None:
                process.terminate()
        for process in processes:
            try:
                process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck host
                process.kill()
                process.wait(timeout=1.0)
            self._reap(process)

    def __enter__(self) -> "LocalHostCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"LocalHostCluster({self.addresses!r})"


# ------------------------------------------------------- transport and engines


class SocketTransport(MultiprocTransport):
    """Coordinator handle of a socket-backed run: configuration, merged counters.

    ``hosts`` is the list of ``"HOST:PORT"`` shard-host addresses the engine
    dials (shards are assigned round-robin across them); ``None`` means
    *auto-spawn* — the engine brings up one localhost host per shard on the
    first run and owns their lifecycle.  ``shard_count`` defaults to one
    shard per host.  Like its mp parent, the transport never delivers a
    message itself: execution happens inside the hosts.
    """

    def __init__(
        self,
        shard_count: int | None = None,
        hosts: Sequence[str] | None = None,
        latency: LatencyModel | None = None,
        stats: StatisticsCollector | None = None,
        max_messages: int = 1_000_000,
        max_frame: int = DEFAULT_MAX_FRAME,
    ):
        if shard_count is None:
            shard_count = len(hosts) if hosts else 2
        super().__init__(
            shard_count=shard_count,
            latency=latency,
            stats=stats,
            max_messages=max_messages,
        )
        self.hosts: tuple[str, ...] | None = tuple(hosts) if hosts else None
        self.max_frame = max_frame
        for address in self.hosts or ():
            parse_address(address)  # fail at build time, not first run
        if self.hosts and len(set(self.hosts)) != len(self.hosts):
            # A host serves one coordinator connection at a time, so a
            # duplicate entry would sit unanswered in its listen backlog
            # until the worker timeout.  Two workers on one box is already
            # expressible: list the host once and raise shards.
            raise NetworkError(
                f"duplicate shard-host addresses in {self.hosts}; list each "
                "host once (shards are assigned round-robin across them)"
            )

    def __repr__(self) -> str:
        where = (
            f"{len(self.hosts)} hosts" if self.hosts else "auto-spawned hosts"
        )
        return (
            f"{type(self).__name__}({self.shard_count} shards over {where}, "
            f"{self.delivered_count} delivered)"
        )


class PooledSocketTransport(SocketTransport):
    """Socket transport whose type selects the warm (pooled) socket engine."""


class SocketEngine(MultiprocEngine):
    """One-shot runs over shard hosts: connect, ship, run, tear down.

    Each :meth:`run` opens fresh host connections, ships the worlds, drives
    the phase to distributed quiescence and collects the merged state — the
    cold :class:`~repro.sharding.multiproc.MultiprocEngine` semantics, with
    TCP hosts instead of spawned processes.  Auto-spawned localhost hosts
    are kept (and revived) across runs on the engine; ``close()`` stops
    them.  For warm repeat runs use :class:`PooledSocketEngine`.
    """

    name = "socket"

    def __init__(self, planner: ShardPlanner | None = None):
        super().__init__(planner)
        self._cluster: LocalHostCluster | None = None

    def _check(self, system: P2PSystem) -> SocketTransport:
        transport = system.transport
        if not isinstance(transport, SocketTransport):
            raise ReproError(
                "the socket engine needs a SocketTransport; "
                "use Session.run (which picks the engine) or build the system "
                "with transport='socket'"
            )
        return transport

    @property
    def cluster(self) -> LocalHostCluster | None:
        """The auto-spawned localhost cluster, or None with explicit hosts."""
        return self._cluster

    def close(self) -> None:
        """Stop any auto-spawned localhost hosts (idempotent)."""
        if self._cluster is not None:
            self._cluster.close()
            self._cluster = None

    def __enter__(self) -> "SocketEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass

    def _hosts_for(self, transport: SocketTransport) -> Sequence[str]:
        """The transport's hosts, or the engine's (revived) localhost cluster."""
        if transport.hosts:
            return transport.hosts
        if self._cluster is None:
            self._cluster = LocalHostCluster(transport.shard_count)
            return self._cluster.addresses
        return self._cluster.ensure_alive()

    def _drive_workers(
        self,
        system: P2PSystem,
        plan: ShardPlan,
        phase: str,
        origins: Iterable[NodeId],
    ) -> list[dict]:
        transport = self._check(system)
        tracer = tracer_of(system)
        injector = injector_of(system)
        with tracer.span("ship", shards=plan.shard_count):
            pool = SocketPool.spawn(
                system,
                plan,
                self._hosts_for(transport),
                max_frame=transport.max_frame,
                injector=injector,
            )
        try:
            injector.fire("ship", pool)
            return pool.run_phase(phase, origins, tracer=tracer)
        finally:
            pool.close()


class PooledSocketEngine(WarmPoolLifecycle, SocketEngine):
    """Warm repeat runs over shard hosts: the :class:`SocketPool` kept open.

    The first run connects and ships the worlds; every later run reuses the
    live host connections and workers, re-shipping only structural deltas —
    the socket twin of :class:`~repro.sharding.pool.PooledEngine`, sharing
    its :class:`~repro.sharding.pool.WarmPoolLifecycle` run driver and so
    the exact same lifecycle rules: a dead host closes the pool and the next
    run reconnects (respawning auto-spawned hosts), and a rule-graph change
    that moves any peer restarts the pool over the fresh partition.
    """

    name = "socket-pooled"

    def __init__(self, planner: ShardPlanner | None = None):
        super().__init__(planner)
        self._pool: SocketPool | None = None

    @property
    def pool(self) -> SocketPool | None:
        """The live pool, or None before the first run / after close()."""
        return self._pool

    def close(self) -> None:
        """Shut the pool and any auto-spawned hosts down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        super().close()

    def _spawn_pool(self, system: P2PSystem, transport: SocketTransport) -> SocketPool:
        # The injector is passed at spawn time (not only attached afterwards
        # by WarmPoolLifecycle) so an unhealed partition already gates the
        # world-shipping sends of a cold re-spawn.
        return SocketPool.spawn(
            system,
            transport.plan,
            self._hosts_for(transport),
            max_frame=transport.max_frame,
            injector=injector_of(system),
        )
