"""Multi-process sharded execution: one OS process per shard.

:class:`~repro.sharding.transport.ShardedTransport` runs its K shard workers
as asyncio tasks inside one interpreter, so the 500+-node sweeps gain no
wall-clock parallelism from the partition.  This module keeps the exact same
shard boundary — the :class:`~repro.sharding.planner.ShardPlanner` partition,
inter-shard mailboxes, per-shard clocks, a distributed-quiescence barrier —
but gives every shard a real worker **process** (``multiprocessing`` spawn)
with its own interpreter, GIL and event queue:

* :class:`MultiprocTransport` is the coordinator-side handle: it carries the
  run configuration (shard count, latency, message bound), adopts the shard
  plan, and after a run exposes the merged per-shard counters through the
  same surface as the in-process transport (``shard_message_counts()``,
  ``cross_shard_messages``, ...).  It never delivers a message itself.
* ``_WorkerTransport`` lives inside each worker process: a discrete-event
  queue for intra-shard traffic plus outboxes (``multiprocessing`` queues)
  for messages whose recipient lives in another shard.  Cross-shard messages
  are stamped ``sender shard clock + latency`` by the sender and advance the
  receiving shard's clock on delivery, mirroring the in-process semantics.
* :class:`MultiprocEngine` implements the
  :class:`~repro.api.engine.ExecutionEngine` protocol: it plans the partition,
  ships each worker a serializable *world* (schemas, rules, its shard's data
  slice), drives the phase, detects distributed quiescence, then merges the
  workers' final databases, protocol state and statistics back into the
  coordinator's system so ``Session.run`` / parity checks / experiments read
  one consistent picture.

Clock caveat: each worker drains its local queue to exhaustion between
stimuli, so per-shard virtual clocks run further ahead than the in-process
sharded transport's interleaved workers — the *simulated* completion time of
a multiproc run over-approximates the sharded one on dense cuts.  Wall-clock
time is this engine's honest metric; the simulated clocks exist so traffic
ordering stays causally sane.

Quiescence across processes uses the classic cumulative-counter double check:
the coordinator pings every worker for ``(cross-sent per shard, cross-received,
delivered)``; when two consecutive rounds report identical counters, every
worker idle, and ``sent == received`` for every shard, no message can still be
in flight (a straggler would leave some shard's ``sent`` above its
``received``), so the network is quiescent.
"""

from __future__ import annotations

import heapq
import multiprocessing
import queue as queue_module
import time
import traceback
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.coordination.rule import CoordinationRule, NodeId
from repro.errors import NetworkError, ReproError
from repro.faults.injector import WorkerFrameInjector, injector_of
from repro.network.latency import LatencyModel
from repro.network.message import Message
from repro.network.transport import BaseTransport
from repro.obs import NULL_TRACER, Tracer, get_logger, tracer_of
from repro.sharding.planner import ShardPlan, ShardPlanner
from repro.stats.collector import (
    ShardTrafficStats,
    StatisticsCollector,
    StatsSnapshot,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports us)
    from repro.core.system import P2PSystem
    from repro.faults.plan import FaultPlan

#: Seconds the coordinator waits for a worker to come up / answer before the
#: run is declared stuck.  Generous: a spawn re-imports the whole package.
#: This is a *stall* bound, not a run budget — the quiescence loop resets it
#: whenever the counters show progress, so long phases are fine as long as
#: deliveries keep happening.
_WORKER_TIMEOUT = 120.0

#: Local deliveries a worker executes between inbox polls.  Bounded batches
#: keep ping replies prompt (a worker never disappears into an unbounded
#: drain), which is what lets the coordinator tell "stalled" from "busy".
_DRAIN_BATCH = 500

_log = get_logger("multiproc")


# --------------------------------------------------------------------- worlds


@dataclass(frozen=True)
class ShardWorld:
    """Everything one worker process needs to rebuild its shard of the system.

    The payload is pickled by ``multiprocessing`` spawn, so every field holds
    plain library objects (schemas, rules, rows — all module-level classes).
    Each worker rebuilds the *full* node and rule graph (rules span shards, so
    every peer must exist everywhere) but loads only its own shard's data
    slice and only ever executes handlers of the peers it owns.
    """

    shard_index: int
    shard_of: dict[NodeId, int]
    schemas: dict[NodeId, object]
    rules: tuple[CoordinationRule, ...]
    data_slice: dict[NodeId, dict[str, frozenset]]
    propagation: dict[NodeId, str]
    latency: LatencyModel | None
    max_messages: int
    #: Simulated time already accumulated by earlier phases on this system;
    #: worker clocks start here so completion times stay monotone across
    #: consecutive runs, like the in-process transports' persistent clocks.
    clock_start: float = 0.0
    #: Trace id of the coordinator's tracer, or None when tracing is off;
    #: a worker that receives one records spans and ships them home in its
    #: result payload.
    trace_id: str | None = None
    #: Frame-fault subset of the session's fault plan (a
    #: :class:`~repro.faults.plan.FaultPlan` or None): workers rebuild a
    #: :class:`~repro.faults.injector.WorkerFrameInjector` from it and perturb
    #: their own cross-shard sends.  Worlds ship once per spawn, so a worker's
    #: run index counts ``start`` commands within its generation.
    fault_plan: "FaultPlan | None" = None

    @property
    def owned(self) -> tuple[NodeId, ...]:
        """The peers this shard's worker executes."""
        return tuple(
            sorted(n for n, s in self.shard_of.items() if s == self.shard_index)
        )


def _worlds_from_system(system: P2PSystem, plan: ShardPlan) -> list[ShardWorld]:
    """Slice a live coordinator system into one world per shard.

    Schemas and data are read from the *live* node databases (not the spec):
    a prior phase may have added relations or rows, and each new worker
    generation must start from the merged state of the previous one.
    """
    facts = {node_id: node.database.facts() for node_id, node in system.nodes.items()}
    schemas = {node_id: node.database.schema for node_id, node in system.nodes.items()}
    propagation = {node_id: node.propagation for node_id, node in system.nodes.items()}
    rules = tuple(system.registry)
    shard_of = dict(plan.shard_of)
    tracer = tracer_of(system)
    fault_plan = injector_of(system).worker_plan()
    worlds = []
    for shard in range(plan.shard_count):
        owned = {n for n, s in shard_of.items() if s == shard}
        worlds.append(
            ShardWorld(
                shard_index=shard,
                shard_of=shard_of,
                schemas=schemas,
                rules=rules,
                data_slice={n: facts[n] for n in owned if n in facts},
                propagation=propagation,
                latency=system.transport.latency,
                max_messages=system.transport.max_messages,
                clock_start=system.stats.simulated_time,
                trace_id=tracer.trace_id if tracer.enabled else None,
                fault_plan=fault_plan,
            )
        )
    return worlds


# ------------------------------------------------------------ worker process


class _WorkerTransport(BaseTransport):
    """The in-worker transport: local event queue + cross-shard outboxes."""

    def __init__(
        self,
        shard_index: int,
        shard_of: Mapping[NodeId, int],
        outboxes: list,
        latency: LatencyModel | None,
        max_messages: int,
        clock_start: float = 0.0,
    ):
        super().__init__(latency=latency, stats=StatisticsCollector())
        self.shard_index = shard_index
        self.shard_of = dict(shard_of)
        self.outboxes = outboxes
        self.max_messages = max_messages
        self.clock = clock_start
        self.delivered = 0
        self.cross_sent = [0] * len(outboxes)
        self.cross_received = 0
        self._queue: list[tuple[float, int, Message]] = []
        self._tiebreak = 0
        #: Worker-side frame injector (set by the worker mains when the
        #: shipped world carries a fault plan); None keeps sends untouched.
        self.fault_injector: WorkerFrameInjector | None = None

    def _push(self, deliver_at: float, message: Message) -> None:
        # Local monotone tie-break: Message objects are not orderable, and
        # sequence numbers from different processes can collide.
        self._tiebreak += 1
        heapq.heappush(self._queue, (deliver_at, self._tiebreak, message))

    def send(self, message: Message) -> None:
        """Queue locally for owned recipients, ship across the cut otherwise."""
        if message.recipient not in self._handlers:
            raise NetworkError(
                f"cannot send {message}: recipient is not registered"
            )
        target = self.shard_of.get(message.recipient)
        if target is None:
            raise NetworkError(
                f"cannot send {message}: recipient is outside the shard plan"
            )
        deliver_at = self.clock + self.latency.delay_for(message)
        if target == self.shard_index:
            self._push(deliver_at, message)
        else:
            if self.fault_injector is not None:
                # Frame faults model drop-as-retransmit / delay: the frame
                # still arrives exactly once (the cumulative-counter barrier
                # stays balanced) but pays extra simulated latency.
                deliver_at += self.fault_injector.frame_fault()
            self.outboxes[target].put(("msg", deliver_at, message))
            self.cross_sent[target] += 1

    def receive_cross(self, deliver_at: float, message: Message) -> None:
        """Accept one message from another shard's worker."""
        self.cross_received += 1
        self._push(deliver_at, message)

    @property
    def has_local_work(self) -> bool:
        """True while local deliveries are queued."""
        return bool(self._queue)

    def drain(self, limit: int | None = None) -> None:
        """Deliver queued local events (handlers may enqueue more).

        ``limit`` bounds the batch so the worker loop can interleave inbox
        polls (control pings, cross-shard arrivals) with long local chains;
        without it the drain runs to exhaustion (handlers may keep the queue
        alive, so exhaustion is only reached via the ``max_messages`` bound
        on divergent protocols).
        """
        remaining = limit
        while self._queue and (remaining is None or remaining > 0):
            if remaining is not None:
                remaining -= 1
            deliver_at, _tiebreak, message = heapq.heappop(self._queue)
            self.clock = max(self.clock, deliver_at)
            self.delivered += 1
            if self.delivered > self.max_messages:
                raise NetworkError(
                    f"shard {self.shard_index} exceeded {self.max_messages} "
                    "deliveries; the protocol does not appear to terminate"
                )
            self._deliver(message, self.clock)

    def status(self) -> dict:
        """The cumulative counters the quiescence rounds compare.

        ``idle`` reports whether the local queue was empty at reply time —
        required for quiescence, because with batched drains a worker can
        answer a ping while deliveries are still pending locally.
        """
        return {
            "idle": not self._queue,
            "sent": tuple(self.cross_sent),
            "received": self.cross_received,
            "delivered": self.delivered,
            "clock": self.clock,
        }


def _build_worker_system(world: ShardWorld, transport: _WorkerTransport) -> P2PSystem:
    from repro.core.system import P2PSystem

    system = P2PSystem(transport)
    for node_id, schema in world.schemas.items():
        system.add_node(
            node_id, schema, propagation=world.propagation.get(node_id, "once")
        )
    for rule in world.rules:
        system.add_rule(rule)
    system.load_data(world.data_slice)
    return system


def _start_worker_phase(
    system: P2PSystem, world: ShardWorld, phase: str, origins: Iterable[NodeId]
) -> None:
    owned = set(world.owned)
    for origin in origins:
        if origin in owned:
            if phase == "discovery":
                system.node(origin).discovery.start()
            elif phase == "update":
                system.node(origin).update.start()
            else:  # pragma: no cover - the engine validates the phase
                raise ReproError(f"unknown phase {phase!r}")


def _worker_payload(
    system: P2PSystem, world: ShardWorld, transport: _WorkerTransport, phase: str
) -> dict:
    """The final state one worker ships back: facts, protocol state, stats."""
    if phase == "discovery":
        for node_id in world.owned:
            system.node(node_id).discovery.finalize_paths()
    facts = {}
    schemas = {}
    node_state = {}
    for node_id in world.owned:
        node = system.node(node_id)
        facts[node_id] = node.database.facts()
        schemas[node_id] = node.database.schema
        node_state[node_id] = {
            "closed": node.is_update_closed,
            "edges": set(node.state.edges),
            "paths": dict(node.state.paths),
        }
    payload = {
        "facts": facts,
        "schemas": schemas,
        "node_state": node_state,
        # One aggregation code path for every engine: the worker ships its
        # whole metrics registry; the coordinator folds it in with
        # StatisticsCollector.merge_counters.
        "counters": transport.stats.dump_counters(),
        "delivered": transport.delivered,
        "cross_sent": tuple(transport.cross_sent),
        "cross_received": transport.cross_received,
        "clock": transport.clock,
    }
    tracer = tracer_of(transport)
    if tracer.enabled:
        payload["spans"] = tracer.drain()
        payload["trace_clock"] = time.time()
        # Ship-and-zero in place: the worker's databases hold references to
        # this ChaseProfile, so it must stay the same object across runs.
        chase = tracer.chase
        payload["chase_profile"] = vars(chase).copy()
        for name, value in vars(chase).items():
            setattr(chase, name, type(value)())
    return payload


def _worker_main(world: ShardWorld, inboxes: list, results) -> None:
    """Entry point of one shard worker process.

    Control and data share the worker's single inbox queue, so the loop is
    fully event-driven: ``start`` kicks the phase off at the owned origins,
    ``msg`` is a cross-shard delivery, ``ping`` answers a quiescence round
    (with an ``idle`` flag saying whether the local queue was empty), and
    ``stop`` finalizes and ships the shard's state home.  Local deliveries
    run in bounded batches between inbox polls, so pings are answered
    promptly however long the local chain is — the coordinator can always
    tell a busy shard from a stalled one.
    """
    inbox = inboxes[world.shard_index]
    phase = "update"
    try:
        transport = _WorkerTransport(
            world.shard_index,
            world.shard_of,
            inboxes,
            world.latency,
            world.max_messages,
            clock_start=world.clock_start,
        )
        tracer = (
            Tracer(trace_id=world.trace_id, process=f"shard-{world.shard_index}")
            if world.trace_id is not None
            else NULL_TRACER
        )
        transport.tracer = tracer
        if world.fault_plan is not None:
            transport.fault_injector = WorkerFrameInjector(
                world.fault_plan,
                world.shard_index,
                transport.stats.registry,
            )
        with tracer.span("build", shard=world.shard_index):
            system = _build_worker_system(world, transport)
        if tracer.enabled:
            for node in system.nodes.values():
                node.database.profile = tracer.chase
        results.put(("ready", world.shard_index))
        # One "chase" span covers each busy period: opened when local work
        # appears, closed when the queue drains and the worker blocks again.
        chase_span = None
        delivered_mark = 0
        while True:
            if transport.has_local_work:
                if chase_span is None and tracer.enabled:
                    chase_span = tracer.start_span("chase", shard=world.shard_index)
                    delivered_mark = transport.delivered
                try:
                    item = inbox.get_nowait()
                except queue_module.Empty:
                    transport.drain(_DRAIN_BATCH)
                    continue
            else:
                if chase_span is not None:
                    tracer.end_span(
                        chase_span, delivered=transport.delivered - delivered_mark
                    )
                    chase_span = None
                item = inbox.get()
            kind = item[0]
            if kind == "start":
                phase = item[1]
                if transport.fault_injector is not None:
                    transport.fault_injector.start_run()
                _start_worker_phase(system, world, phase, item[2])
            elif kind == "msg":
                transport.receive_cross(item[1], item[2])
            elif kind == "ping":
                # Pings are lockstep (the coordinator sends the next round
                # only after every shard answered), so the reply does not
                # need to echo the generation in item[1].
                results.put(("status", world.shard_index, transport.status()))
            elif kind == "stop":
                results.put(
                    (
                        "done",
                        world.shard_index,
                        _worker_payload(system, world, transport, phase),
                    )
                )
                return
            else:  # pragma: no cover - coordinator never sends other kinds
                raise NetworkError(f"unknown control message {kind!r}")
    except BaseException:  # noqa: BLE001 - shipped to the coordinator
        results.put(("error", world.shard_index, traceback.format_exc()))


# ------------------------------------------------- coordinator-side plumbing
#
# The await/quiescence helpers are module-level so both worker-process
# drivers — the per-run MultiprocEngine here and the persistent WorkerPool in
# :mod:`repro.sharding.pool` — share one implementation of the cumulative-
# counter double check and of crashed-worker detection.


class _WorkerSet:
    """The minimal pool surface a fault injector fires kill faults against."""

    def __init__(self, workers):
        self._workers = workers
        self.shard_count = len(workers)

    def kill_worker(self, shard: int) -> None:
        worker = self._workers[shard]
        if worker.is_alive():
            worker.terminate()


def _check_workers(workers, collected) -> None:
    """Raise when a worker died before delivering an expected reply.

    A worker that already answered may exit legitimately (the ``stop`` path);
    only a dead process whose reply is still outstanding is a crash.
    """
    if not workers:
        return
    for shard, worker in enumerate(workers):
        if shard not in collected and not worker.is_alive():
            raise NetworkError(
                f"shard {shard} worker died unexpectedly "
                f"(exit code {worker.exitcode})"
            )


def _await_replies(results, kind: str, count: int, workers=None) -> dict[int, object]:
    """Collect one ``kind`` reply per shard (raising on errors and crashes)."""
    collected: dict[int, object] = {}
    deadline = time.monotonic() + _WORKER_TIMEOUT
    while len(collected) < count:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise NetworkError(
                f"timed out waiting for {count - len(collected)} shard "
                f"worker(s) to report {kind!r}"
            )
        try:
            item = results.get(timeout=min(remaining, 1.0))
        except queue_module.Empty:
            _check_workers(workers, collected)
            continue
        if item[0] == "error":
            raise NetworkError(
                f"shard {item[1]} worker failed:\n{item[2]}"
            )
        if item[0] == kind:
            collected[item[1]] = item[2] if len(item) > 2 else None
    return collected


def _quiescence_rounds(
    results, inboxes, shard_count: int, max_messages: int, workers=None
) -> int:
    """Ping workers until two identical, balanced, all-idle rounds agree.

    Counters are cumulative, so if round ``g`` equals round ``g-1`` with
    every worker idle (empty local queue at reply time) and every shard's
    received count matching the sum everyone sent to it, no delivery
    happened between the rounds and nothing is in flight — the
    distributed double check, with the mp queues as the channels.

    The stall deadline restarts whenever the counters move: a long phase
    that keeps delivering is healthy however many rounds it takes; only
    ``_WORKER_TIMEOUT`` seconds with *no* progress at all is a failure.

    Returns the number of ping rounds it took to certify quiescence (the
    "quiescence" span reports it as its ``rounds`` attribute).
    """
    previous = None
    last_progress = None
    generation = 0
    deadline = time.monotonic() + _WORKER_TIMEOUT
    while True:
        if time.monotonic() > deadline:
            raise NetworkError(
                "the multiproc run stalled: no delivery progress for "
                f"{_WORKER_TIMEOUT:.0f}s without reaching quiescence"
            )
        generation += 1
        for inbox in inboxes:
            inbox.put(("ping", generation))
        replies = _await_replies(results, "status", shard_count, workers)
        statuses = [replies[shard] for shard in sorted(replies)]
        if sum(status["delivered"] for status in statuses) > max_messages:
            raise NetworkError(
                f"exceeded {max_messages} deliveries across shards; "
                "the protocol does not appear to terminate"
            )
        all_idle = all(status["idle"] for status in statuses)
        balanced = all(
            sum(status["sent"][shard] for status in statuses)
            == statuses[shard]["received"]
            for shard in range(shard_count)
        )
        fingerprint = tuple(
            (status["sent"], status["received"], status["delivered"])
            for status in statuses
        )
        progress = tuple(status["delivered"] for status in statuses)
        if progress != last_progress:
            last_progress = progress
            deadline = time.monotonic() + _WORKER_TIMEOUT
        if all_idle and balanced and fingerprint == previous:
            _log.debug(
                "quiescence certified after %d round(s), %d delivered",
                generation,
                sum(progress),
            )
            return generation
        previous = fingerprint if (all_idle and balanced) else None
        # A failed check means traffic is still moving; yield briefly so
        # workers get scheduled before the next round.
        time.sleep(0.002)


class MultiprocTransport(BaseTransport):
    """Coordinator-side handle of a multi-process sharded run.

    It registers the system's peers like any transport (so the substrate
    builds unchanged) but never delivers: execution happens in the worker
    processes that :class:`MultiprocEngine` spawns.  After a run it holds the
    merged per-shard counters, exposed through the same properties as the
    in-process :class:`~repro.sharding.transport.ShardedTransport` so the
    traffic stats of the two engines are directly comparable.
    """

    def __init__(
        self,
        shard_count: int = 2,
        latency: LatencyModel | None = None,
        stats: StatisticsCollector | None = None,
        max_messages: int = 1_000_000,
    ):
        if shard_count < 1:
            raise NetworkError("a multiproc transport needs at least one shard")
        super().__init__(latency=latency, stats=stats)
        self.shard_count = shard_count
        self.max_messages = max_messages
        self.plan: ShardPlan | None = None
        self.delivered_count = 0
        self._delivered_by_shard: dict[int, int] = {}
        self._cross_shard = 0

    def apply_plan(self, plan: ShardPlan) -> None:
        """Adopt a shard plan covering every registered peer."""
        if plan.shard_count > self.shard_count:
            raise NetworkError(
                f"plan uses {plan.shard_count} shards but the transport "
                f"has only {self.shard_count}"
            )
        missing = [peer for peer in self._handlers if peer not in plan.shard_of]
        if missing:
            raise NetworkError(
                f"shard plan does not cover registered peers {sorted(missing)}"
            )
        self.plan = plan

    def shard_of(self, node_id: str) -> int:
        """The shard a peer is assigned to (after planning)."""
        if self.plan is None:
            raise NetworkError("the multiproc transport has no shard plan yet")
        return self.plan.shard(node_id)

    def send(self, message: Message) -> None:
        raise NetworkError(
            "the multiproc transport delivers only inside its worker "
            "processes; drive it through Session.run / MultiprocEngine"
        )

    @property
    def pending(self) -> int:
        """Always 0 between runs: deliveries only exist inside workers."""
        return 0

    # ---- merged counters (filled by the engine after each run) -------------

    def record_run(
        self, delivered_by_shard: Mapping[int, int], cross_shard: int
    ) -> None:
        """Accumulate one run's merged delivery counters."""
        for shard, count in delivered_by_shard.items():
            self._delivered_by_shard[shard] = (
                self._delivered_by_shard.get(shard, 0) + count
            )
        self.delivered_count += sum(delivered_by_shard.values())
        self._cross_shard += cross_shard

    def shard_message_counts(self) -> dict[int, int]:
        """Messages delivered per shard so far (merged across runs)."""
        counts = {shard: 0 for shard in range(self.shard_count)}
        counts.update(self._delivered_by_shard)
        return counts

    @property
    def cross_shard_messages(self) -> int:
        """Messages that crossed the cut (went through another process)."""
        return self._cross_shard

    @property
    def intra_shard_messages(self) -> int:
        """Delivered messages that stayed inside their worker process."""
        return self.delivered_count - min(self._cross_shard, self.delivered_count)

    def __repr__(self) -> str:
        planned = "planned" if self.plan is not None else "unplanned"
        return (
            f"MultiprocTransport({self.shard_count} shards, {planned}, "
            f"{self.delivered_count} delivered)"
        )


class MultiprocEngine:
    """Engine for the multi-process sharded transport.

    Each :meth:`run` spawns one worker process per shard, ships the worlds,
    drives the phase to distributed quiescence and merges the results back —
    workers live for exactly one run.  For repeat-run workloads use the
    persistent variant, :class:`repro.sharding.pool.PooledEngine`, which
    keeps the workers warm and re-ships only deltas (see
    ``docs/engines.md`` for the measured crossover points).
    """

    name = "multiproc"

    def __init__(self, planner: ShardPlanner | None = None):
        self.planner = planner

    def _check(self, system: P2PSystem) -> MultiprocTransport:
        transport = system.transport
        if not isinstance(transport, MultiprocTransport):
            raise ReproError(
                "the multiproc engine needs a MultiprocTransport; "
                "use Session.run (which picks the engine) or build the system "
                "with transport='multiproc'"
            )
        return transport

    def _ensure_plan(self, system: P2PSystem, transport: MultiprocTransport) -> None:
        if transport.plan is not None:
            return
        planner = self.planner or ShardPlanner(transport.shard_count)
        transport.apply_plan(planner.plan_system(system))
        _log.debug(
            "planned %d peers across %d shards",
            len(system.nodes),
            transport.shard_count,
        )

    # ------------------------------------------------------------- protocol

    def run(
        self, system, phase: str, origins: Iterable[NodeId] | None = None
    ) -> tuple[float, StatsSnapshot]:
        if phase not in ("discovery", "update"):
            raise ReproError(
                f"unknown phase {phase!r}; expected 'discovery' or 'update'"
            )
        transport = self._check(system)
        tracer = tracer_of(system)
        with tracer.span("plan", shards=transport.shard_count):
            self._ensure_plan(system, transport)
        plan = transport.plan
        assert plan is not None
        if phase == "discovery":
            origin_list = (
                list(origins) if origins is not None else [system.super_peer]
            )
        else:
            origin_list = (
                list(origins) if origins is not None else sorted(system.nodes)
            )

        started = time.perf_counter()
        # Fault-injected runs may degrade to a cold re-run: the injector
        # detects the failure (a killed worker, an unhealed partition) and
        # grants re-runs from its plan's budget.  The coordinator's state is
        # only mutated by a *successful* _merge below, so a re-run starts
        # from exactly the state the failed attempt started from.
        injector = injector_of(system)
        while True:
            injector.start_run()
            try:
                payloads = self._drive_workers(system, plan, phase, origin_list)
                break
            except NetworkError as error:
                if not injector.should_rerun(error):
                    raise
                _log.warning(
                    "%s run failed under fault injection (%s); "
                    "degrading to a cold re-run",
                    self.name,
                    error,
                )
        wall = time.perf_counter() - started
        completion = self._merge(system, transport, payloads, wall)
        snapshot = system.stats.snapshot()
        snapshot = replace(
            snapshot, sharding=self._traffic_stats(transport, snapshot)
        )
        return completion, snapshot

    async def run_async(
        self, system, phase: str, origins: Iterable[NodeId] | None = None
    ) -> tuple[float, StatsSnapshot]:
        # The run blocks on child processes, not on this loop's I/O; like
        # SyncEngine, the awaitable form simply wraps the blocking one.
        return self.run(system, phase, origins)

    # ------------------------------------------------------------ internals

    def _drive_workers(
        self, system, plan: ShardPlan, phase: str, origins: list[NodeId]
    ) -> list[dict]:
        """Spawn one worker per shard, run the phase, return their payloads."""
        tracer = tracer_of(system)
        ship_span = tracer.start_span("ship", shards=plan.shard_count)
        worlds = _worlds_from_system(system, plan)
        context = multiprocessing.get_context("spawn")
        inboxes = [context.Queue() for _ in range(plan.shard_count)]
        results = context.Queue()
        workers = [
            context.Process(
                target=_worker_main, args=(world, inboxes, results), daemon=True
            )
            for world in worlds
        ]
        for worker in workers:
            worker.start()
        injector = injector_of(system)
        targets = _WorkerSet(workers)
        try:
            _await_replies(results, "ready", plan.shard_count, workers)
            injector.fire("ship", targets)
            tracer.end_span(ship_span)
            for inbox in inboxes:
                inbox.put(("start", phase, tuple(origins)))
            injector.fire("chase", targets)
            with tracer.span("quiescence") as quiescence_span:
                rounds = _quiescence_rounds(
                    results,
                    inboxes,
                    plan.shard_count,
                    system.transport.max_messages,
                    workers,
                )
                quiescence_span.set(rounds=rounds)
            injector.fire("quiescence", targets)
            with tracer.span("collect"):
                for inbox in inboxes:
                    inbox.put(("stop",))
                done = _await_replies(results, "done", plan.shard_count, workers)
            return [payload for _shard, payload in sorted(done.items())]
        except BaseException:
            for worker in workers:
                if worker.is_alive():
                    worker.terminate()
            raise
        finally:
            for worker in workers:
                worker.join(timeout=5.0)
            for queue in (*inboxes, results):
                queue.close()
                queue.cancel_join_thread()

    def _merge(
        self, system, transport: MultiprocTransport, payloads: list[dict], wall: float
    ) -> float:
        """Fold the workers' final state back into the coordinator system."""
        from repro.core.state import UpdateState
        from repro.database.schema import RelationSchema

        collector = system.stats
        tracer = tracer_of(system)
        merge_span = tracer.start_span("merge", shards=len(payloads))
        delivered_by_shard: dict[int, int] = {}
        cross_shard = 0
        completion = 0.0
        total_delivered = 0
        for shard, payload in enumerate(payloads):
            delivered_by_shard[shard] = payload["delivered"]
            total_delivered += payload["delivered"]
            cross_shard += payload["cross_received"]
            completion = max(completion, payload["clock"])
            # --- databases: replace each owned node's relations wholesale.
            for node_id, facts in payload["facts"].items():
                node = system.node(node_id)
                shipped_schema = payload["schemas"][node_id]
                for relation_schema in shipped_schema:
                    if relation_schema.name not in node.database:
                        node.database.add_relation(
                            RelationSchema(
                                relation_schema.name,
                                list(relation_schema.attributes),
                            )
                        )
                for relation_name, rows in facts.items():
                    relation = node.database.relation(relation_name)
                    relation.clear()
                    relation.insert_many(rows)
            # --- protocol state: closed flags and discovery paths/edges.
            for node_id, state in payload["node_state"].items():
                node = system.node(node_id)
                if state["closed"]:
                    node.state.state_u = UpdateState.CLOSED
                node.state.edges |= state["edges"]
                node.state.paths.update(state["paths"])
            # --- statistics: every delivery was recorded in exactly one
            # worker (the recipient's), so summing via the shared registry
            # merge path is double-count free.
            collector.merge_counters(payload["counters"])
            # --- telemetry: worker spans nest under the open run span,
            # aligned for clock skew; chase profiles accumulate.
            if tracer.enabled and "spans" in payload:
                tracer.adopt(payload["spans"], clock=payload.get("trace_clock"))
                tracer.chase.merge(payload.get("chase_profile", {}))
        if total_delivered > transport.max_messages:
            raise NetworkError(
                f"exceeded {transport.max_messages} deliveries across shards; "
                "the protocol does not appear to terminate"
            )
        collector.advance_time(completion)
        collector.elapsed_wall_seconds += wall
        transport.record_run(delivered_by_shard, cross_shard)
        tracer.end_span(merge_span, completion=completion)
        return completion

    def _traffic_stats(
        self, transport: MultiprocTransport, snapshot: StatsSnapshot
    ) -> ShardTrafficStats:
        """The per-shard traffic view, same shape as the sharded engine's."""
        tuples_by_shard = {shard: 0 for shard in range(transport.shard_count)}
        for node_id, node_stats in snapshot.nodes.items():
            try:
                shard = transport.shard_of(node_id)
            except NetworkError:  # pragma: no cover - plan always applied here
                continue
            tuples_by_shard[shard] = (
                tuples_by_shard.get(shard, 0) + node_stats.tuples_received
            )
        return ShardTrafficStats(
            shard_count=transport.shard_count,
            messages_by_shard=transport.shard_message_counts(),
            tuples_by_shard=tuples_by_shard,
            cross_shard_messages=transport.cross_shard_messages,
            intra_shard_messages=transport.intra_shard_messages,
        )
