"""Plain-text tables and simple series summaries for experiment output.

The experiment harness prints the same kind of rows the paper reports
(messages and execution time per topology / depth / distribution).  These
helpers keep the formatting in one place and depend on nothing but the
standard library, so benchmark output stays readable under pytest-benchmark.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render ``rows`` as a fixed-width text table with ``headers``."""
    rendered_rows = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(format_row(row) for row in rendered_rows)
    return "\n".join(lines)


def _render_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def series_summary(xs: Sequence[float], ys: Sequence[float]) -> dict[str, float]:
    """Least-squares linear fit of ``ys`` against ``xs``.

    Returns slope, intercept and the coefficient of determination R²; used by
    the depth-linearity experiment (E4) to quantify the paper's "execution
    time is linear with respect to the depth" observation without pulling in
    scipy for a one-liner.
    """
    if len(xs) != len(ys):
        raise ValueError("series must have equal length")
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points for a linear fit")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        raise ValueError("all x values are identical")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return {"slope": slope, "intercept": intercept, "r_squared": r_squared}
