"""Counters for messages, queries, updates and transferred data.

:class:`StatisticsCollector` plays the role of the per-node statistical module
plus the super-peer's aggregation view of the paper's prototype: the transport
reports every delivered message to it, and nodes report local query executions
and local insertions.  Experiments read a :class:`StatsSnapshot` at the end of
a run and the super-peer can reset all counters between runs.

Since the observability layer landed, every counter lives in a
:class:`~repro.obs.metrics.MetricsRegistry` (``collector.registry``): the
in-process engines bump registry counters through cached handles, worker
processes ship their registries home as :meth:`dump_counters` payloads, and
the coordinator folds them in with :meth:`merge_counters` — one aggregation
code path for all engines, with :meth:`snapshot` assembling the familiar
:class:`StatsSnapshot` view from the registry on demand.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping

from repro.obs.metrics import Counter as MetricCounter
from repro.obs.metrics import MetricsRegistry


@dataclass
class MessageStats:
    """Aggregated message-level counters."""

    total_messages: int = 0
    total_bytes: int = 0
    by_type: Counter = field(default_factory=Counter)
    bytes_by_type: Counter = field(default_factory=Counter)

    def record(self, message_type: str, size: int) -> None:
        """Account for one delivered message of ``message_type`` and ``size`` bytes."""
        self.total_messages += 1
        self.total_bytes += size
        self.by_type[message_type] += 1
        self.bytes_by_type[message_type] += size


@dataclass
class NodeStats:
    """Per-node counters (one instance per peer)."""

    queries_executed: int = 0
    updates_applied: int = 0
    tuples_received: int = 0
    tuples_inserted: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    duplicate_queries: int = 0


@dataclass(frozen=True)
class ShardTrafficStats:
    """Traffic accounting of one sharded run (see :mod:`repro.sharding`).

    ``messages_by_shard`` counts deliveries executed by each shard worker,
    ``tuples_by_shard`` the tuples received by the peers of each shard, and
    ``cross_shard_messages`` the messages that crossed the partition cut
    (routed through an inter-shard mailbox) — the quantity the shard planner
    minimises.
    """

    shard_count: int
    messages_by_shard: dict[int, int]
    tuples_by_shard: dict[int, int]
    cross_shard_messages: int
    intra_shard_messages: int

    @property
    def total_messages(self) -> int:
        """Deliveries summed over all shards."""
        return sum(self.messages_by_shard.values())

    @property
    def cut_ratio(self) -> float:
        """Cross-shard messages as a fraction of all deliveries."""
        total = self.total_messages
        return self.cross_shard_messages / total if total else 0.0

    @property
    def max_shard_messages(self) -> int:
        """The busiest shard's delivery count (the parallel critical path)."""
        return max(self.messages_by_shard.values(), default=0)


@dataclass(frozen=True)
class StatsSnapshot:
    """An immutable snapshot of all counters at one point in (simulated) time."""

    messages: MessageStats
    nodes: dict[str, NodeStats]
    simulated_time: float
    elapsed_wall_seconds: float
    #: Filled by the sharded engine only; None for unsharded runs.
    sharding: ShardTrafficStats | None = None

    @property
    def total_messages(self) -> int:
        """Total delivered messages."""
        return self.messages.total_messages

    @property
    def total_tuples_transferred(self) -> int:
        """Sum of tuples received across all nodes."""
        return sum(node.tuples_received for node in self.nodes.values())

    @property
    def total_tuples_inserted(self) -> int:
        """Sum of tuples actually inserted across all nodes."""
        return sum(node.tuples_inserted for node in self.nodes.values())

    @property
    def total_queries_executed(self) -> int:
        """Sum of local query executions across all nodes."""
        return sum(node.queries_executed for node in self.nodes.values())

    @property
    def total_duplicate_queries(self) -> int:
        """Queries received more than once for the same original request."""
        return sum(node.duplicate_queries for node in self.nodes.values())


#: Registry counter name → :class:`NodeStats` field, one entry per counter.
_NODE_METRICS: dict[str, str] = {
    "repro_node_queries_total": "queries_executed",
    "repro_node_duplicate_queries_total": "duplicate_queries",
    "repro_node_updates_applied_total": "updates_applied",
    "repro_node_tuples_received_total": "tuples_received",
    "repro_node_tuples_inserted_total": "tuples_inserted",
    "repro_node_messages_sent_total": "messages_sent",
    "repro_node_messages_received_total": "messages_received",
}
_MESSAGES_TOTAL = "repro_messages_total"
_MESSAGE_BYTES_TOTAL = "repro_message_bytes_total"

#: Counters of the incremental (delta-driven) update mode, labelled by node.
#: ``seed_rows`` counts base rows that seeded the delta frontier,
#: ``rows_derived`` the rows the incremental chase derived (the frontier's
#: growth), ``rules_fired`` the delta joins that inserted at least one row,
#: and ``pushes`` the fragment-delta messages sent to dependants.  Naive runs
#: never touch these, so a zero total means "took the naive path".
_INCREMENTAL_METRICS: tuple[str, ...] = (
    "repro_incremental_seed_rows_total",
    "repro_incremental_rules_fired_total",
    "repro_incremental_rows_derived_total",
    "repro_incremental_pushes_total",
)


class _NodeHandles:
    """Cached registry-counter handles for one node's seven counters."""

    __slots__ = tuple(_NODE_METRICS.values())

    def __init__(self, registry: MetricsRegistry, node_id: str):
        labels = {"node": node_id}
        for metric_name, attr in _NODE_METRICS.items():
            setattr(self, attr, registry.counter(metric_name, labels))


class StatisticsCollector:
    """Mutable counters shared by the transport and all nodes of one system."""

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.registry.describe(_MESSAGES_TOTAL, "Messages delivered, by type")
        self.registry.describe(
            _MESSAGE_BYTES_TOTAL, "Estimated message payload bytes, by type"
        )
        self.simulated_time = 0.0
        self.elapsed_wall_seconds = 0.0
        # Hot-path handle caches; dropped (and lazily re-created) on reset().
        self._type_handles: dict[str, tuple[MetricCounter, MetricCounter]] = {}
        self._node_handles: dict[str, _NodeHandles] = {}

    # --------------------------------------------------------------- recording

    def _handles(self, node_id: str) -> _NodeHandles:
        handles = self._node_handles.get(node_id)
        if handles is None:
            handles = self._node_handles[node_id] = _NodeHandles(
                self.registry, node_id
            )
        return handles

    def record_message(
        self, message_type: str, sender: str, recipient: str, size: int
    ) -> None:
        """Record one message delivery (called by the transport)."""
        type_handles = self._type_handles.get(message_type)
        if type_handles is None:
            type_handles = self._type_handles[message_type] = (
                self.registry.counter(_MESSAGES_TOTAL, {"type": message_type}),
                self.registry.counter(_MESSAGE_BYTES_TOTAL, {"type": message_type}),
            )
        type_handles[0].value += 1
        type_handles[1].value += size
        self._handles(sender).messages_sent.value += 1
        self._handles(recipient).messages_received.value += 1

    def record_query(self, node_id: str, *, duplicate: bool = False) -> None:
        """Record a local query execution at ``node_id``."""
        handles = self._handles(node_id)
        handles.queries_executed.value += 1
        if duplicate:
            handles.duplicate_queries.value += 1

    def record_update(
        self, node_id: str, *, received: int, inserted: int
    ) -> None:
        """Record one local-update application at ``node_id``."""
        handles = self._handles(node_id)
        handles.updates_applied.value += 1
        handles.tuples_received.value += received
        handles.tuples_inserted.value += inserted

    def record_incremental(
        self,
        node_id: str,
        *,
        seed_rows: int = 0,
        rules_fired: int = 0,
        rows_derived: int = 0,
        pushes: int = 0,
    ) -> None:
        """Record delta-driven update work at ``node_id`` (incremental mode).

        Cold path by design: incremental runs bump these once per seeded node
        / fired rule / push batch, not per message, so the handles are not
        cached.  The counters ride the same registry dump/merge pipeline as
        every other metric, so worker-side increments surface in the
        coordinator's registry (and in ``Session.export_metrics``) unchanged.
        """
        labels = {"node": node_id}
        for name, amount in zip(
            _INCREMENTAL_METRICS, (seed_rows, rules_fired, rows_derived, pushes)
        ):
            if amount:
                self.registry.counter(name, labels).value += amount

    def incremental_totals(self) -> dict[str, int]:
        """The incremental counters summed over all nodes (zero-filled)."""
        totals = {name: 0 for name in _INCREMENTAL_METRICS}
        for counter in self.registry.counters.values():
            if counter.name in totals:
                totals[counter.name] += counter.value
        return totals

    def advance_time(self, simulated_time: float) -> None:
        """Advance the simulated clock to ``simulated_time`` (monotonic)."""
        if simulated_time > self.simulated_time:
            self.simulated_time = simulated_time

    # ----------------------------------------------------- cross-process merge

    def dump_counters(self) -> dict:
        """The picklable registry payload a worker ships to the coordinator."""
        return self.registry.dump()

    def merge_counters(self, dump: Mapping) -> None:
        """Fold a worker's :meth:`dump_counters` payload into this collector."""
        self.registry.merge(dump)

    # ------------------------------------------------------------- inspection

    @property
    def messages(self) -> MessageStats:
        """The message-level counters, assembled from the registry."""
        messages = MessageStats()
        for counter in self.registry.counters.values():
            if not counter.labels:
                continue
            label_value = counter.labels[0][1]
            if counter.name == _MESSAGES_TOTAL:
                messages.total_messages += counter.value
                messages.by_type[label_value] += counter.value
            elif counter.name == _MESSAGE_BYTES_TOTAL:
                messages.total_bytes += counter.value
                messages.bytes_by_type[label_value] += counter.value
        return messages

    def node(self, node_id: str) -> NodeStats:
        """The per-node counters for ``node_id``, assembled from the registry."""
        return self._assemble_nodes().get(node_id, NodeStats())

    def _assemble_nodes(self) -> dict[str, NodeStats]:
        nodes: dict[str, NodeStats] = {}
        for counter in self.registry.counters.values():
            attr = _NODE_METRICS.get(counter.name)
            if attr is None or not counter.labels:
                continue
            node_id = counter.labels[0][1]
            stats = nodes.get(node_id)
            if stats is None:
                stats = nodes[node_id] = NodeStats()
            setattr(stats, attr, getattr(stats, attr) + counter.value)
        return nodes

    def snapshot(self) -> StatsSnapshot:
        """An immutable copy of all counters."""
        return StatsSnapshot(
            messages=self.messages,
            nodes=self._assemble_nodes(),
            simulated_time=self.simulated_time,
            elapsed_wall_seconds=self.elapsed_wall_seconds,
        )

    def reset(self) -> None:
        """Reset every counter (the super-peer's "reset statistics at all peers")."""
        self.registry.reset()
        self._type_handles.clear()
        self._node_handles.clear()
        self.simulated_time = 0.0
        self.elapsed_wall_seconds = 0.0
