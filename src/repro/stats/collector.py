"""Counters for messages, queries, updates and transferred data.

:class:`StatisticsCollector` plays the role of the per-node statistical module
plus the super-peer's aggregation view of the paper's prototype: the transport
reports every delivered message to it, and nodes report local query executions
and local insertions.  Experiments read a :class:`StatsSnapshot` at the end of
a run and the super-peer can reset all counters between runs.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field


@dataclass
class MessageStats:
    """Aggregated message-level counters."""

    total_messages: int = 0
    total_bytes: int = 0
    by_type: Counter = field(default_factory=Counter)
    bytes_by_type: Counter = field(default_factory=Counter)

    def record(self, message_type: str, size: int) -> None:
        """Account for one delivered message of ``message_type`` and ``size`` bytes."""
        self.total_messages += 1
        self.total_bytes += size
        self.by_type[message_type] += 1
        self.bytes_by_type[message_type] += size


@dataclass
class NodeStats:
    """Per-node counters (one instance per peer)."""

    queries_executed: int = 0
    updates_applied: int = 0
    tuples_received: int = 0
    tuples_inserted: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    duplicate_queries: int = 0


@dataclass(frozen=True)
class ShardTrafficStats:
    """Traffic accounting of one sharded run (see :mod:`repro.sharding`).

    ``messages_by_shard`` counts deliveries executed by each shard worker,
    ``tuples_by_shard`` the tuples received by the peers of each shard, and
    ``cross_shard_messages`` the messages that crossed the partition cut
    (routed through an inter-shard mailbox) — the quantity the shard planner
    minimises.
    """

    shard_count: int
    messages_by_shard: dict[int, int]
    tuples_by_shard: dict[int, int]
    cross_shard_messages: int
    intra_shard_messages: int

    @property
    def total_messages(self) -> int:
        """Deliveries summed over all shards."""
        return sum(self.messages_by_shard.values())

    @property
    def cut_ratio(self) -> float:
        """Cross-shard messages as a fraction of all deliveries."""
        total = self.total_messages
        return self.cross_shard_messages / total if total else 0.0

    @property
    def max_shard_messages(self) -> int:
        """The busiest shard's delivery count (the parallel critical path)."""
        return max(self.messages_by_shard.values(), default=0)


@dataclass(frozen=True)
class StatsSnapshot:
    """An immutable snapshot of all counters at one point in (simulated) time."""

    messages: MessageStats
    nodes: dict[str, NodeStats]
    simulated_time: float
    elapsed_wall_seconds: float
    #: Filled by the sharded engine only; None for unsharded runs.
    sharding: ShardTrafficStats | None = None

    @property
    def total_messages(self) -> int:
        """Total delivered messages."""
        return self.messages.total_messages

    @property
    def total_tuples_transferred(self) -> int:
        """Sum of tuples received across all nodes."""
        return sum(node.tuples_received for node in self.nodes.values())

    @property
    def total_tuples_inserted(self) -> int:
        """Sum of tuples actually inserted across all nodes."""
        return sum(node.tuples_inserted for node in self.nodes.values())

    @property
    def total_queries_executed(self) -> int:
        """Sum of local query executions across all nodes."""
        return sum(node.queries_executed for node in self.nodes.values())

    @property
    def total_duplicate_queries(self) -> int:
        """Queries received more than once for the same original request."""
        return sum(node.duplicate_queries for node in self.nodes.values())


class StatisticsCollector:
    """Mutable counters shared by the transport and all nodes of one system."""

    def __init__(self) -> None:
        self.messages = MessageStats()
        self._nodes: dict[str, NodeStats] = defaultdict(NodeStats)
        self.simulated_time = 0.0
        self.elapsed_wall_seconds = 0.0

    # --------------------------------------------------------------- recording

    def node(self, node_id: str) -> NodeStats:
        """The per-node counters for ``node_id`` (created on first access)."""
        return self._nodes[node_id]

    def record_message(
        self, message_type: str, sender: str, recipient: str, size: int
    ) -> None:
        """Record one message delivery (called by the transport)."""
        self.messages.record(message_type, size)
        self._nodes[sender].messages_sent += 1
        self._nodes[recipient].messages_received += 1

    def record_query(self, node_id: str, *, duplicate: bool = False) -> None:
        """Record a local query execution at ``node_id``."""
        self._nodes[node_id].queries_executed += 1
        if duplicate:
            self._nodes[node_id].duplicate_queries += 1

    def record_update(
        self, node_id: str, *, received: int, inserted: int
    ) -> None:
        """Record one local-update application at ``node_id``."""
        stats = self._nodes[node_id]
        stats.updates_applied += 1
        stats.tuples_received += received
        stats.tuples_inserted += inserted

    def advance_time(self, simulated_time: float) -> None:
        """Advance the simulated clock to ``simulated_time`` (monotonic)."""
        if simulated_time > self.simulated_time:
            self.simulated_time = simulated_time

    # ------------------------------------------------------------- inspection

    def snapshot(self) -> StatsSnapshot:
        """An immutable copy of all counters."""
        messages = MessageStats(
            total_messages=self.messages.total_messages,
            total_bytes=self.messages.total_bytes,
            by_type=Counter(self.messages.by_type),
            bytes_by_type=Counter(self.messages.bytes_by_type),
        )
        nodes = {
            node_id: NodeStats(**vars(stats)) for node_id, stats in self._nodes.items()
        }
        return StatsSnapshot(
            messages=messages,
            nodes=nodes,
            simulated_time=self.simulated_time,
            elapsed_wall_seconds=self.elapsed_wall_seconds,
        )

    def reset(self) -> None:
        """Reset every counter (the super-peer's "reset statistics at all peers")."""
        self.messages = MessageStats()
        self._nodes.clear()
        self.simulated_time = 0.0
        self.elapsed_wall_seconds = 0.0
