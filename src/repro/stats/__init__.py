"""Statistics collection and reporting.

The paper's prototype attaches a statistical module to every node which
"accumulates information about number of executed queries and updates, total
time which was required to answer a certain query or fulfill an update
request, volumes of data transferred onto pipes, number of queries received
and sent for the same original query (due to different paths and loops)", and
a super-peer that can collect or reset those statistics.  This package is the
library counterpart used by every experiment.
"""

from repro.stats.collector import (
    MessageStats,
    NodeStats,
    ShardTrafficStats,
    StatisticsCollector,
)
from repro.stats.report import format_table, series_summary

__all__ = [
    "MessageStats",
    "NodeStats",
    "ShardTrafficStats",
    "StatisticsCollector",
    "format_table",
    "series_summary",
]
