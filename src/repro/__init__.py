"""repro — a reproduction of "A Distributed Algorithm for Robust Data Sharing
and Updates in P2P Database Networks" (Franconi, Kuper, Lopatenko, Zaihrayeu;
EDBT P2P&DB workshop, 2004).

The package implements the paper's P2P database model (local relational
databases connected by coordination rules), its distributed topology-discovery
and update algorithms, the dynamic-network semantics of Section 4, the
baselines it is positioned against, and the synthetic workloads and experiment
harness that regenerate its evaluation.

Quickstart::

    from repro import Session, build_paper_example

    session = Session.of(build_paper_example())
    session.run("discovery")
    result = session.update()          # or strategy="centralized" / "acyclic" / ...
    print(result.completion_time, result.tuples_added)
    print(session.query("A", "q(X, Y) :- a(X, Y)"))

See README.md for the architecture overview, the new-API quickstart and the
old → new migration table.
"""

from repro.errors import (
    ReproError,
    SchemaError,
    QueryError,
    RuleError,
    NetworkError,
    ProtocolError,
    TerminationError,
    ChangeError,
)
from repro.database import (
    Attribute,
    RelationSchema,
    DatabaseSchema,
    Relation,
    LocalDatabase,
    LabeledNull,
    Variable,
    Constant,
    Atom,
    Comparison,
    ConjunctiveQuery,
    parse_query,
    parse_atom,
)
from repro.coordination import (
    CoordinationRule,
    rule_from_text,
    RuleRegistry,
    DependencyGraph,
    maximal_dependency_paths,
)
from repro.network import (
    Message,
    MessageType,
    SyncTransport,
    AsyncTransport,
    ConstantLatency,
    UniformLatency,
)
from repro.core import (
    PeerNode,
    P2PSystem,
    SuperPeer,
    AddLink,
    DeleteLink,
    NetworkChange,
    sound_envelope,
    complete_envelope,
    is_sound_answer,
    is_complete_answer,
    verify_against_centralized,
)
from repro.api import (
    Session,
    ScenarioSpec,
    NetworkBuilder,
    RunResult,
    ExecutionEngine,
    SyncEngine,
    AsyncEngine,
    engine_for,
    UpdateStrategy,
    register_strategy,
    get_strategy,
    available_strategies,
)
from repro.baselines import centralized_update, acyclic_update, query_time_answer
from repro.workloads import (
    DblpGenerator,
    TopologySpec,
    tree_topology,
    layered_topology,
    clique_topology,
    chain_topology,
    star_topology,
    random_topology,
    build_paper_example,
    build_dblp_network,
)
from repro.sharding import (
    ShardPlan,
    ShardPlanner,
    ShardedEngine,
    ShardedTransport,
)
from repro.stats import StatisticsCollector, format_table

__version__ = "0.1.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "SchemaError",
    "QueryError",
    "RuleError",
    "NetworkError",
    "ProtocolError",
    "TerminationError",
    "ChangeError",
    # database
    "Attribute",
    "RelationSchema",
    "DatabaseSchema",
    "Relation",
    "LocalDatabase",
    "LabeledNull",
    "Variable",
    "Constant",
    "Atom",
    "Comparison",
    "ConjunctiveQuery",
    "parse_query",
    "parse_atom",
    # coordination
    "CoordinationRule",
    "rule_from_text",
    "RuleRegistry",
    "DependencyGraph",
    "maximal_dependency_paths",
    # network
    "Message",
    "MessageType",
    "SyncTransport",
    "AsyncTransport",
    "ConstantLatency",
    "UniformLatency",
    # core
    "PeerNode",
    "P2PSystem",
    "SuperPeer",
    "AddLink",
    "DeleteLink",
    "NetworkChange",
    "sound_envelope",
    "complete_envelope",
    "is_sound_answer",
    "is_complete_answer",
    "verify_against_centralized",
    # api façade
    "Session",
    "ScenarioSpec",
    "NetworkBuilder",
    "RunResult",
    "ExecutionEngine",
    "SyncEngine",
    "AsyncEngine",
    "engine_for",
    "UpdateStrategy",
    "register_strategy",
    "get_strategy",
    "available_strategies",
    # sharding
    "ShardPlan",
    "ShardPlanner",
    "ShardedEngine",
    "ShardedTransport",
    # baselines
    "centralized_update",
    "acyclic_update",
    "query_time_answer",
    # workloads
    "DblpGenerator",
    "TopologySpec",
    "tree_topology",
    "layered_topology",
    "clique_topology",
    "chain_topology",
    "star_topology",
    "random_topology",
    "build_paper_example",
    "build_dblp_network",
    # stats
    "StatisticsCollector",
    "format_table",
]
