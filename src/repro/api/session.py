"""The unified execution façade: one front door for every kind of run.

A :class:`Session` binds a :class:`~repro.core.system.P2PSystem` (the
state-holding substrate: nodes, rules, pipes, transport) to an
:class:`~repro.api.engine.ExecutionEngine` picked to match its transport, and
exposes the library's operations uniformly:

* ``session.run("discovery")`` / ``session.run("update")`` — the paper's two
  protocol phases, identical over the synchronous and the asyncio transport
  (``await session.run_async(...)`` for callers already inside a loop),
* ``session.update(strategy="centralized")`` — any registered
  :class:`~repro.api.strategies.UpdateStrategy` (the paper's algorithm or one
  of the three baselines), always returning a uniform
  :class:`~repro.api.result.RunResult`,
* ``session.query(node, "q(X) :- item(X, Y)")`` — local query answering.

Sessions are built from a declarative :class:`~repro.api.spec.ScenarioSpec`
(:meth:`Session.from_spec`), from loose parts (:meth:`Session.build`) or
around an existing system (:meth:`Session.of`).  A session also owns its
engine's resources: the pooled multiproc engine keeps worker OS processes
warm across runs, so use the session as a context manager (or call
:meth:`Session.close`) to stop them deterministically.  The layer map and
the run-time data flow are documented in ``docs/architecture.md``; the
engine selection guide in ``docs/engines.md``.
"""

from __future__ import annotations

import json
import time
from collections import OrderedDict
from dataclasses import replace
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.analysis.analyzer import analyze
from repro.analysis.diagnostics import AnalysisReport
from repro.api.engine import ExecutionEngine, engine_for
from repro.api.result import RunResult, diff_snapshots
from repro.api.spec import ScenarioSpec
from repro.api.strategies import get_strategy
from repro.coordination.rule import CoordinationRule, NodeId
from repro.database.parser import parse_query
from repro.database.query import ConjunctiveQuery
from repro.database.relation import Row
from repro.database.schema import DatabaseSchema
from repro.errors import ReproError
from repro.obs import Tracer
from repro.stats.collector import StatsSnapshot

if TYPE_CHECKING:
    from repro.coordination.changeset import StructuralDigest
    from repro.core.system import P2PSystem
    from repro.faults.plan import FaultPlan

#: Process-wide default for the pre-flight gate of :meth:`Session.from_spec`.
#: The CLI's ``--no-preflight`` flag flips it for experiment runs, which
#: build their sessions several layers below the argument parser.
_DEFAULT_PREFLIGHT = True


def set_default_preflight(enabled: bool) -> bool:
    """Set the process-wide pre-flight default; returns the previous value."""
    global _DEFAULT_PREFLIGHT
    previous = _DEFAULT_PREFLIGHT
    _DEFAULT_PREFLIGHT = bool(enabled)
    return previous


def preflight_enabled() -> bool:
    """The current process-wide pre-flight default."""
    return _DEFAULT_PREFLIGHT


class Session:
    """Engine-agnostic, strategy-pluggable execution over one system."""

    #: Bound on memoized reference fix-points kept per session (LRU evicted).
    _CACHE_LIMIT = 32

    def __init__(
        self,
        system: P2PSystem,
        *,
        spec: ScenarioSpec | None = None,
        engine: ExecutionEngine | None = None,
        strategy: str | None = None,
        capture_deltas: bool = True,
        cache_strategies: bool = True,
        preflight: AnalysisReport | None = None,
        trace: bool = False,
        tracer: Tracer | None = None,
        faults: "FaultPlan | None" = None,
    ):
        self.system = system
        self.spec = spec
        # The static pre-flight report of the spec this session was opened
        # on (None for sessions built around an existing system or with
        # check=False); its warning codes ride along on every RunResult.
        self.preflight = preflight
        self.engine = engine if engine is not None else engine_for(system.transport)
        self.default_strategy = (
            strategy
            if strategy is not None
            else (spec.strategy if spec is not None else "distributed")
        )
        # Live runs snapshot every database before and after to report the
        # per-node deltas; timing-sensitive callers that only read the clock
        # and the statistics can opt out of that copy work.
        self.capture_deltas = capture_deltas
        # Reference strategies (everything but "distributed") are pure
        # functions of (rules, data, options): their results are memoized so
        # repeated comparisons — E9, parity sweeps — stop recomputing the
        # same fix-point.  The key embeds a fingerprint of the rule set and
        # every relation's contents, so dynamic changes (addLink/deleteLink,
        # any insertion, a distributed run) invalidate stale entries by
        # construction.
        self.cache_strategies = cache_strategies
        self._strategy_cache: OrderedDict[tuple, RunResult] = OrderedDict()
        self._cache_hits = 0
        self._cache_misses = 0
        # Tracing: off (the default) leaves every run bit-identical — no
        # tracer object is created and no span ever opens.  ``trace=True``
        # (or a spec with trace=True) builds a fresh coordinator tracer;
        # passing ``tracer=`` shares one across sessions (the experiment
        # drivers trace a whole sweep into a single timeline).
        if tracer is None and (trace or (spec is not None and spec.trace)):
            tracer = Tracer(process="coordinator")
        self.tracer = tracer
        if tracer is not None:
            system.tracer = tracer
            # The A6 chase profile rides on the databases so the projection
            # check can bump counters without knowing about sessions.
            for node in system.nodes.values():
                node.database.profile = tracer.chase
        # Fault injection: a plan (passed directly or carried by the spec)
        # attaches a coordinator-side injector to the system; the engines
        # discover it via repro.faults.injector_of, exactly like the tracer.
        if faults is None and spec is not None:
            faults = spec.faults
        self.fault_injector = None
        if faults is not None:
            from repro.faults.injector import FaultInjector

            injector = FaultInjector(faults, registry=system.stats.registry)
            system.fault_injector = injector
            self.fault_injector = injector

    # ------------------------------------------------------------ construction

    @classmethod
    def from_spec(
        cls, spec: ScenarioSpec, *, check: bool | None = None, **settings: object
    ) -> "Session":
        """Assemble the spec's system and open a session on it.

        Before anything is built the spec goes through the static pre-flight
        analyzer (:func:`repro.analysis.analyze`): error-level diagnostics —
        a non-terminating rule set, schema mismatches — raise
        :class:`~repro.errors.ReproError` with the full report instead of
        letting the run discover them the hard way; warnings are kept on
        :attr:`Session.preflight` and tagged onto every
        :class:`~repro.api.result.RunResult` as
        ``extras["preflight_warnings"]``.  ``check=False`` skips the gate
        (``check=None`` follows the process default, see
        :func:`set_default_preflight`); ``settings`` (e.g.
        ``capture_deltas=False``) are forwarded to the :class:`Session`
        constructor.
        """
        if check is None:
            check = _DEFAULT_PREFLIGHT
        report: AnalysisReport | None = None
        if check:
            report = analyze(spec)
            if not report.ok:
                raise ReproError(
                    "pre-flight analysis found error(s); fix the scenario or "
                    f"pass check=False to run anyway\n{report.render()}"
                )
        return cls(spec.build_system(), spec=spec, preflight=report, **settings)

    #: Session.build settings consumed by the Session constructor; everything
    #: else goes to the ScenarioSpec.
    _SESSION_SETTINGS = (
        "engine",
        "capture_deltas",
        "cache_strategies",
        "check",
        "trace",
        "tracer",
        "faults",
    )

    @classmethod
    def build(
        cls,
        schemas: Mapping[NodeId, object],
        rules: Iterable[CoordinationRule | str] = (),
        data: Mapping[NodeId, Mapping[str, Iterable[Row]]] | None = None,
        **settings: object,
    ) -> "Session":
        """Build a session from loose parts (see :meth:`ScenarioSpec.of`).

        ``settings`` may mix spec fields (``transport=``, ``super_peer=``,
        ``strategy=``, ...) with session options (``engine=``,
        ``capture_deltas=``); each goes to the right constructor.
        """
        session_settings = {
            key: settings.pop(key) for key in cls._SESSION_SETTINGS if key in settings
        }
        return cls.from_spec(
            ScenarioSpec.of(schemas, rules, data, **settings), **session_settings
        )

    @classmethod
    def of(cls, system: P2PSystem, **kwargs: object) -> "Session":
        """Open a session around an already-assembled system."""
        return cls(system, **kwargs)

    # -------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Release engine-held resources (idempotent).

        Most engines hold none and this is a no-op; the pooled multiproc
        engine keeps worker OS processes warm between runs and stops them
        here.  A closed session can keep running — the next pooled run just
        respawns its workers cold.
        """
        close_engine = getattr(self.engine, "close", None)
        if callable(close_engine):
            close_engine()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ state

    def schemas(self) -> dict[NodeId, DatabaseSchema]:
        """Per-node schemas of the live system."""
        return {
            node_id: node.database.schema
            for node_id, node in self.system.nodes.items()
        }

    def rules(self) -> list[CoordinationRule]:
        """The currently installed coordination rules."""
        return list(self.system.registry)

    def databases(self) -> dict[NodeId, dict[str, frozenset[Row]]]:
        """A snapshot of every node's relation contents."""
        return self.system.databases()

    def snapshot_stats(self) -> StatsSnapshot:
        """The current statistics snapshot."""
        return self.system.snapshot_stats()

    def reset_statistics(self) -> None:
        """Reset all counters (the super-peer's reset command)."""
        self.system.reset_statistics()

    def export_metrics(self, format: str = "json") -> str:
        """The session's metrics in ``"json"`` or ``"prometheus"`` text form.

        The export merges the statistics collector's registry (message and
        per-node counters), the tracer's span-duration histograms when the
        session is traced, and two run-level gauges (simulated clock,
        cumulative wall seconds) into one registry before rendering.
        """
        # Imported lazily: the exporters pull in the report formatter, which
        # sessions otherwise never need.
        from repro.obs.export import metrics_to_json, metrics_to_prometheus
        from repro.obs.metrics import MetricsRegistry

        collector = self.system.stats
        registry = MetricsRegistry()
        registry.merge(collector.registry.dump())
        for name in collector.registry._help:
            registry.describe(name, collector.registry.help_for(name))
        if self.tracer is not None:
            registry.merge(self.tracer.metrics.dump())
        registry.describe(
            "repro_simulated_time_seconds", "Simulated clock at the last snapshot."
        )
        registry.gauge("repro_simulated_time_seconds").set(collector.simulated_time)
        registry.describe(
            "repro_wall_seconds_total", "Cumulative wall-clock time of all runs."
        )
        registry.gauge("repro_wall_seconds_total").set(
            collector.elapsed_wall_seconds
        )
        if format == "json":
            return json.dumps(metrics_to_json(registry), indent=2)
        if format == "prometheus":
            return metrics_to_prometheus(registry)
        raise ReproError(
            f"unknown metrics format {format!r}; expected 'json' or 'prometheus'"
        )

    @property
    def super_peer(self) -> NodeId:
        """The system's designated super-peer."""
        return self.system.super_peer

    # ------------------------------------------------------------------- runs

    def _package(
        self,
        phase: str,
        before: Mapping | None,
        completion: float,
        snapshot: StatsSnapshot,
        started: float,
    ) -> RunResult:
        if before is None:
            after: Mapping = {}
            deltas: Mapping = {}
        else:
            after = self.system.databases()
            deltas = diff_snapshots(before, after)
        return self._attach_preflight(
            RunResult(
                phase=phase,
                strategy=None,
                engine=self.engine.name,
                completion_time=completion,
                wall_seconds=time.perf_counter() - started,
                stats=snapshot,
                databases=after,
                deltas=deltas,
            )
        )

    def _attach_preflight(self, result: RunResult) -> RunResult:
        """Tag the pre-flight warning codes onto a result (no-op when clean).

        A clean pre-flight adds nothing, so results are bit-identical with
        ``check=True`` and ``check=False`` — the parity the test-suite pins.
        """
        if self.preflight is None or not self.preflight.warnings:
            return result
        if "preflight_warnings" in result.extras:
            return result
        codes = tuple(d.code for d in self.preflight.warnings)
        return replace(
            result, extras={**result.extras, "preflight_warnings": codes}
        )

    def run(
        self, phase: str, *, origins: Iterable[NodeId] | None = None
    ) -> RunResult:
        """Run one protocol phase to quiescence, whatever the transport.

        ``phase`` is ``"discovery"`` or ``"update"``; ``origins`` are the
        initiating nodes (defaults: the super-peer for discovery, every node
        for the update).  On a traced session the run is wrapped in a ``run``
        span and the merged timeline lands on ``result.extras["trace"]``.
        """
        started = time.perf_counter()
        before = self.system.databases() if self.capture_deltas else None
        tracer = self.tracer
        if tracer is None:
            completion, snapshot = self.engine.run(self.system, phase, origins)
            return self._package(phase, before, completion, snapshot, started)
        mark = tracer.mark()
        chase_before = tracer.chase.snapshot()
        with tracer.span("run", phase=phase, engine=self.engine.name) as span:
            completion, snapshot = self.engine.run(self.system, phase, origins)
            span.set(
                completion_time=completion,
                messages=sum(snapshot.messages.by_type.values()),
                **tracer.chase.delta_attributes(chase_before),
            )
        result = self._package(phase, before, completion, snapshot, started)
        return replace(
            result, extras={**result.extras, "trace": tracer.trace(since=mark)}
        )

    async def run_async(
        self, phase: str, *, origins: Iterable[NodeId] | None = None
    ) -> RunResult:
        """Awaitable variant of :meth:`run` for callers inside an event loop."""
        started = time.perf_counter()
        before = self.system.databases() if self.capture_deltas else None
        tracer = self.tracer
        if tracer is None:
            completion, snapshot = await self.engine.run_async(
                self.system, phase, origins
            )
            return self._package(phase, before, completion, snapshot, started)
        mark = tracer.mark()
        chase_before = tracer.chase.snapshot()
        with tracer.span("run", phase=phase, engine=self.engine.name) as span:
            completion, snapshot = await self.engine.run_async(
                self.system, phase, origins
            )
            span.set(
                completion_time=completion,
                messages=sum(snapshot.messages.by_type.values()),
                **tracer.chase.delta_attributes(chase_before),
            )
        result = self._package(phase, before, completion, snapshot, started)
        return replace(
            result, extras={**result.extras, "trace": tracer.trace(since=mark)}
        )

    def discover(self, *, origins: Iterable[NodeId] | None = None) -> RunResult:
        """Shorthand for ``run("discovery")``."""
        return self.run("discovery", origins=origins)

    def update(
        self,
        strategy: str | None = None,
        *,
        origins: Iterable[NodeId] | None = None,
        **options: object,
    ) -> RunResult:
        """Bring the network's data to a fix-point with the chosen strategy.

        ``strategy`` names a registered :class:`UpdateStrategy` (default: the
        session's — usually ``"distributed"``); ``options`` are forwarded to
        it (e.g. ``force=True`` for ``"acyclic"``, ``node=``/``query=`` for
        ``"querytime"``).  The result's fields mean the same thing whichever
        strategy ran; a :class:`RunResult` with ``strategy`` set is returned.

        Reference strategies are memoized per session (see
        :meth:`cache_info`); a served entry carries ``extras["cache_hit"]``.
        """
        name = strategy if strategy is not None else self.default_strategy
        # Materialise one-shot iterables first: the cache key and the
        # strategy must both see the same origins.
        origins = tuple(origins) if origins is not None else None
        key = self._strategy_cache_key(name, origins, options)
        if key is not None:
            cached = self._strategy_cache.get(key)
            if cached is not None:
                self._cache_hits += 1
                self._strategy_cache.move_to_end(key)
                return replace(cached, extras={**cached.extras, "cache_hit": True})
        result = get_strategy(name).run(self, origins=origins, **options)
        if result.strategy is None:
            # The distributed strategy delegates to run(); tag its origin.
            result = replace(result, strategy=name)
        result = self._attach_preflight(result)
        if key is not None:
            self._cache_misses += 1
            self._strategy_cache[key] = result
            while len(self._strategy_cache) > self._CACHE_LIMIT:
                self._strategy_cache.popitem(last=False)
        return result

    # ------------------------------------------------------- strategy caching

    def _strategy_cache_key(
        self,
        name: str,
        origins: Iterable[NodeId] | None,
        options: Mapping[str, object],
    ) -> tuple | None:
        """The memoization key, or None when the call must not be cached.

        Only reference strategies cache (the distributed strategy mutates the
        live system, so rerunning it is the point); unhashable options (rare
        — e.g. a callable) simply bypass the cache.
        """
        if not self.cache_strategies or name == "distributed":
            return None
        try:
            key = (
                name,
                origins,
                tuple(sorted(options.items())),
                self._state_fingerprint(),
            )
            hash(key)
        except TypeError:
            return None
        return key

    def _state_fingerprint(self) -> "StructuralDigest":
        """A hashable digest of the rule set and every relation's contents.

        This is what makes cache invalidation structural: ``addLink`` /
        ``deleteLink`` changes the rule part, and any insertion — a chase, a
        distributed run, a bulk load — changes the data part, so stale
        entries can never be served.  The digest is the shared
        :class:`~repro.coordination.changeset.StructuralDigest` — the same
        fingerprint the warm pools' :class:`~repro.sharding.pool.WorldMirror`
        computes over its mirrored worker state, so "has anything changed?"
        has exactly one definition across the codebase.
        """
        return self.system.structural_digest()

    def cache_info(self) -> dict[str, int]:
        """Hit/miss counters and current size of the strategy cache."""
        return {
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "size": len(self._strategy_cache),
            "limit": self._CACHE_LIMIT,
        }

    def clear_strategy_cache(self) -> None:
        """Drop every memoized reference fix-point (counters stay)."""
        self._strategy_cache.clear()

    # ---------------------------------------------------------------- queries

    def query(
        self, node_id: NodeId, query: ConjunctiveQuery | str
    ) -> set[tuple]:
        """Answer a query at ``node_id`` from its local data only."""
        if isinstance(query, str):
            query = parse_query(query)
        return self.system.local_query(node_id, query)

    def __repr__(self) -> str:
        return (
            f"Session({self.system!r}, engine={self.engine.name!r}, "
            f"strategy={self.default_strategy!r})"
        )
