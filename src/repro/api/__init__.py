"""The library's front door: sessions, engines, strategies, specs.

This package is the unified execution façade over the substrate in
:mod:`repro.core`:

* :class:`~repro.api.session.Session` — engine-agnostic runs
  (``session.run("discovery")``) and strategy-pluggable updates
  (``session.update(strategy="centralized")``),
* :class:`~repro.api.engine.ExecutionEngine` with
  :class:`~repro.api.engine.SyncEngine` / :class:`~repro.api.engine.AsyncEngine`,
* :class:`~repro.api.strategies.UpdateStrategy` and its string-keyed registry
  (``"distributed"``, ``"centralized"``, ``"acyclic"``, ``"querytime"``),
* :class:`~repro.api.spec.ScenarioSpec` / :class:`~repro.api.spec.NetworkBuilder`
  — declarative and fluent network construction (JSON format in
  ``docs/scenarios.md``),
* :class:`~repro.api.result.RunResult` — the uniform result of every run.

The scaling engines (sharded, multiproc, pooled) live in
:mod:`repro.sharding` and plug into the same protocol; ``Session`` selects
them from the spec's ``transport``/``shards``/``pool`` knobs
(``docs/engines.md`` is the guide).

Every spec goes through the static pre-flight analyzer
(:mod:`repro.analysis`) before :meth:`Session.from_spec
<repro.api.session.Session.from_spec>` builds anything: error-level
diagnostics raise, warnings ride along on the results (``check=False``
opts out; ``docs/analysis.md`` lists the diagnostic codes).
"""

from repro.api.engine import (
    PHASES,
    AsyncEngine,
    ExecutionEngine,
    SyncEngine,
    engine_for,
)
from repro.api.result import RunResult, diff_snapshots
from repro.api.session import Session, preflight_enabled, set_default_preflight
from repro.api.spec import NetworkBuilder, ScenarioSpec
from repro.api.strategies import (
    UpdateStrategy,
    available_strategies,
    get_strategy,
    register_strategy,
)

__all__ = [
    "PHASES",
    "AsyncEngine",
    "ExecutionEngine",
    "SyncEngine",
    "engine_for",
    "RunResult",
    "diff_snapshots",
    "Session",
    "preflight_enabled",
    "set_default_preflight",
    "NetworkBuilder",
    "ScenarioSpec",
    "UpdateStrategy",
    "available_strategies",
    "get_strategy",
    "register_strategy",
]
