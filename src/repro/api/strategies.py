"""Pluggable update strategies behind a string-keyed registry.

The paper positions one algorithm — the distributed materialised update —
against three alternatives: a centralized global algorithm (Calvanese et al.),
a single-pass algorithm for acyclic networks (Halevy et al.) and query-time
answering without materialisation.  The seed exposed each through a different
function with a different result type; here all four implement the
:class:`UpdateStrategy` protocol and are reached uniformly through
``session.update(strategy="...")``:

* ``"distributed"`` — the paper's algorithm, executed on the session's live
  system through its transport engine (messages, simulated time),
* ``"centralized"`` — the global fix-point computed at one site from the
  session's current contents (no messages),
* ``"acyclic"`` — one propagation pass in dependency order; refuses cyclic
  networks unless ``force=True``,
* ``"querytime"`` — fetches one node's dependency closure at query time and
  optionally answers a query on it.

The reference strategies (everything but ``"distributed"``) are *simulations
on the side*: they read the session's schemas, rules and current data but do
not mutate its live databases, so a session can compare all four from the
same starting state.  :func:`register_strategy` admits new strategies; the
registry is what the CLI's ``--strategy`` flag is wired through.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Iterable, Protocol, runtime_checkable

from repro.api.result import RunResult, Snapshot, diff_snapshots
from repro.baselines.acyclic import acyclic_update
from repro.baselines.centralized import centralized_update
from repro.baselines.querytime import fetch_closure
from repro.coordination.rule import NodeId
from repro.database.parser import parse_query
from repro.database.query import ConjunctiveQuery
from repro.errors import ReproError
from repro.stats.collector import StatisticsCollector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (session imports us)
    from repro.api.session import Session


@runtime_checkable
class UpdateStrategy(Protocol):
    """One way of bringing a network's data to its fix-point."""

    name: str

    def run(
        self,
        session: Session,
        *,
        origins: Iterable[NodeId] | None = None,
        **options: object,
    ) -> RunResult:
        """Execute the strategy for ``session`` and report a uniform result."""
        ...


class DistributedStrategy:
    """The paper's algorithm, run on the live system through its engine."""

    name = "distributed"

    def run(
        self,
        session: Session,
        *,
        origins: Iterable[NodeId] | None = None,
        **options: object,
    ) -> RunResult:
        if options:
            raise ReproError(
                f"the distributed strategy takes no options, got {sorted(options)}"
            )
        return session.run("update", origins=origins)


def _reference_result(
    before: Snapshot,
    strategy_name: str,
    after: Snapshot,
    started: float,
    extras: dict[str, object],
) -> RunResult:
    """Package a reference computation's databases as a RunResult.

    ``before`` is the live system's snapshot the strategy started from; the
    synthesised per-node statistics record the rows the reference computation
    added on top of it (no messages — reference strategies pay none).
    """
    deltas = diff_snapshots(before, after)
    stats = StatisticsCollector()
    for node_id, relations in deltas.items():
        inserted = sum(len(rows) for rows in relations.values())
        stats.record_update(node_id, received=inserted, inserted=inserted)
    return RunResult(
        phase="update",
        strategy=strategy_name,
        engine="reference",
        completion_time=0.0,
        wall_seconds=time.perf_counter() - started,
        stats=stats.snapshot(),
        databases=after,
        deltas=deltas,
        extras=extras,
    )


class CentralizedStrategy:
    """Global fix-point with all data available at one site (no messages)."""

    name = "centralized"

    def run(
        self,
        session: Session,
        *,
        origins: Iterable[NodeId] | None = None,
        max_rounds: int = 10_000,
        node: NodeId | None = None,
        query: ConjunctiveQuery | str | None = None,
        **options: object,
    ) -> RunResult:
        if options:
            raise ReproError(
                "the centralized strategy understands max_rounds, node and "
                f"query only, got {sorted(options)}"
            )
        if origins is not None:
            raise ReproError(
                "the centralized strategy computes the full-network fix-point; "
                "origins is not supported"
            )
        started = time.perf_counter()
        before = session.system.databases()
        result = centralized_update(
            session.schemas(), session.rules(), before, max_rounds=max_rounds
        )
        extras: dict[str, object] = {
            "rounds": result.rounds,
            "rule_applications": result.rule_applications,
            "tuples_inserted": result.tuples_inserted,
        }
        if query is not None:
            if isinstance(query, str):
                query = parse_query(query)
            target = node if node is not None else session.system.super_peer
            extras["node"] = target
            extras["answers"] = frozenset(result.databases[target].query(query))
        return _reference_result(
            before, self.name, result.snapshot(), started, extras
        )


class AcyclicStrategy:
    """Single propagation pass in dependency order (Halevy et al. baseline)."""

    name = "acyclic"

    def run(
        self,
        session: Session,
        *,
        origins: Iterable[NodeId] | None = None,
        force: bool = False,
        **options: object,
    ) -> RunResult:
        if options:
            raise ReproError(
                f"the acyclic strategy understands force only, got {sorted(options)}"
            )
        if origins is not None:
            raise ReproError(
                "the acyclic strategy is a whole-network single pass; "
                "origins is not supported"
            )
        started = time.perf_counter()
        before = session.system.databases()
        result = acyclic_update(
            session.schemas(), session.rules(), before, force=force
        )
        return _reference_result(
            before,
            self.name,
            result.snapshot(),
            started,
            {
                "rule_applications": result.rule_applications,
                "tuples_inserted": result.tuples_inserted,
            },
        )


class QueryTimeStrategy:
    """Fetch one node's dependency closure at query time (no materialisation)."""

    name = "querytime"

    def run(
        self,
        session: Session,
        *,
        origins: Iterable[NodeId] | None = None,
        node: NodeId | None = None,
        query: ConjunctiveQuery | str | None = None,
        max_rounds: int = 10_000,
        **options: object,
    ) -> RunResult:
        if options:
            raise ReproError(
                "the querytime strategy understands node, query and max_rounds "
                f"only, got {sorted(options)}"
            )
        started = time.perf_counter()
        if origins is not None:
            origin_list = list(origins)
            if len(origin_list) != 1 or (node is not None and node != origin_list[0]):
                raise ReproError(
                    "the querytime strategy fetches one node's dependency "
                    "closure; pass exactly one origin (or node=...)"
                )
            node = origin_list[0]
        if node is None:
            node = session.system.super_peer
        before = session.system.databases()
        fetch = fetch_closure(
            session.schemas(),
            session.rules(),
            before,
            node,
            max_rounds=max_rounds,
        )
        after = {nid: db.facts() for nid, db in fetch.databases.items()}
        answers: frozenset[tuple] | None = None
        if query is not None:
            if isinstance(query, str):
                query = parse_query(query)
            answers = frozenset(fetch.databases[node].query(query))
        return _reference_result(
            before,
            self.name,
            after,
            started,
            {
                "node": node,
                "messages": fetch.messages,
                "rounds": fetch.rounds,
                "nodes_contacted": len(fetch.closure) - 1,
                "answers": answers,
            },
        )


# ------------------------------------------------------------------ registry

_REGISTRY: dict[str, UpdateStrategy] = {}


def register_strategy(
    strategy: UpdateStrategy, *, replace: bool = False
) -> UpdateStrategy:
    """Add ``strategy`` to the registry under its ``name``.

    Re-registering an existing name needs ``replace=True``; the function
    returns the strategy so it can be used as a decorator-like one-liner.
    """
    name = getattr(strategy, "name", None)
    if not name or not isinstance(name, str):
        raise ReproError("an update strategy must have a non-empty string name")
    if name in _REGISTRY and not replace:
        raise ReproError(
            f"strategy {name!r} is already registered; pass replace=True to override"
        )
    _REGISTRY[name] = strategy
    return strategy


def get_strategy(name: str) -> UpdateStrategy:
    """Look up a strategy by name (raising with the available names)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown update strategy {name!r}; "
            f"available: {', '.join(available_strategies())}"
        ) from None


def available_strategies() -> tuple[str, ...]:
    """The registered strategy names, sorted."""
    return tuple(sorted(_REGISTRY))


for _strategy in (
    DistributedStrategy(),
    CentralizedStrategy(),
    AcyclicStrategy(),
    QueryTimeStrategy(),
):
    register_strategy(_strategy)
