"""The uniform result type every façade run returns.

Whatever executes — the distributed protocol on a synchronous or asyncio
transport, or one of the reference strategies (centralized, acyclic,
query-time) — a :class:`RunResult` reports the same quantities: the simulated
completion time, a :class:`~repro.stats.collector.StatsSnapshot`, the final
per-node relation contents and the per-node relation *deltas* (rows the run
added).  Experiments, benchmarks and tests can therefore compare strategies
without knowing how each one executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.coordination.rule import NodeId
from repro.core.fixpoint import ground_part
from repro.database.relation import Row
from repro.stats.collector import StatsSnapshot

Snapshot = Mapping[NodeId, Mapping[str, frozenset[Row]]]


def diff_snapshots(
    before: Snapshot, after: Snapshot
) -> dict[NodeId, dict[str, frozenset[Row]]]:
    """Per-node, per-relation rows present in ``after`` but not in ``before``."""
    deltas: dict[NodeId, dict[str, frozenset[Row]]] = {}
    for node_id, relations in after.items():
        node_before = before.get(node_id, {})
        node_delta: dict[str, frozenset[Row]] = {}
        for relation, rows in relations.items():
            added = rows - node_before.get(relation, frozenset())
            if added:
                node_delta[relation] = added
        if node_delta:
            deltas[node_id] = node_delta
    return deltas


@dataclass(frozen=True)
class RunResult:
    """Outcome of one façade run (a protocol phase or a strategy update).

    ``completion_time`` is the simulated clock at quiescence for transport
    runs and ``0.0`` for the reference strategies, which do not exchange
    messages; ``wall_seconds`` is always the measured wall-clock duration.
    ``extras`` carries strategy-specific metrics (rounds, rule applications,
    query-time messages, ...).
    """

    phase: str
    strategy: str | None
    engine: str
    completion_time: float
    wall_seconds: float
    stats: StatsSnapshot
    databases: Snapshot
    deltas: Snapshot
    extras: Mapping[str, object] = field(default_factory=dict)

    @property
    def label(self) -> str:
        """A short human-readable tag, e.g. ``update/centralized``."""
        return f"{self.phase}/{self.strategy}" if self.strategy else self.phase

    @property
    def tuples_added(self) -> int:
        """Total number of rows the run added across all nodes."""
        return sum(
            len(rows)
            for relations in self.deltas.values()
            for rows in relations.values()
        )

    @property
    def nodes_changed(self) -> tuple[NodeId, ...]:
        """The nodes whose databases grew during the run, sorted."""
        return tuple(sorted(self.deltas))

    def ground_databases(self) -> dict[NodeId, dict[str, frozenset[Row]]]:
        """The final databases restricted to their null-free rows.

        Two strategies that reach the same fix-point agree on this part even
        when they invent differently-labelled nulls, so parity checks compare
        it (the same :func:`repro.core.fixpoint.ground_part` the soundness
        checks use).
        """
        return ground_part(self.databases)

    def __repr__(self) -> str:
        return (
            f"RunResult({self.label!r}, engine={self.engine!r}, "
            f"time={self.completion_time:.1f}, +{self.tuples_added} tuples, "
            f"{self.stats.total_messages} messages)"
        )
